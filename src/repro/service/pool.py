"""Parallel execution of compression jobs.

:func:`run_batch` is the service's front door: it takes a list of
:class:`~repro.service.jobs.CompressionJob`, consults the artifact
cache, fans the misses out across worker processes, folds per-worker
metrics back into one registry, and stores fresh artifacts.

Worker-pool semantics:

* each job runs in its **own process** (at most ``processes`` at a
  time), so one pathological job can neither corrupt nor stall its
  neighbours;
* a job that exceeds ``timeout`` seconds is terminated and reported
  failed (``error="timed out..."``) — the rest of the batch continues;
* a worker that **crashes** (killed, segfault, unpicklable result) is
  retried up to ``retries`` times before the job is reported failed;
* exceptions *inside* a job (compile errors, bad parameters) are
  deterministic, so they are reported immediately and never retried;
* ``processes=0`` degrades gracefully to plain in-process execution —
  no subprocesses, same results, same metrics — which is also the
  automatic fallback when the platform refuses to fork;
* a ``stop`` predicate (polled between job launches) supports
  graceful drain: once it returns true no *new* job starts, jobs
  already running finish normally, and jobs never started come back
  with ``cancelled=True`` — the SIGTERM path of ``repro-serve``.

Results come back in input order, one :class:`JobResult` per job,
never raising for individual job failures.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from repro import observe
from repro.chaos.process import pool_kill_point
from repro.core.image import CompressedImage
from repro.service.cache import ArtifactCache
from repro.service.jobs import CompressionJob
from repro.service.metrics import MetricsRegistry

_POLL_SECONDS = 0.01


@dataclass
class JobResult:
    """Outcome of one job in a batch."""

    job: CompressionJob
    key: str
    blob: bytes | None = None
    meta: dict = field(default_factory=dict)
    cache_hit: bool = False
    wall_seconds: float = 0.0
    attempts: int = 0
    error: str | None = None
    #: True when the job never started because a drain was requested —
    #: not a failure, the work was deliberately left undone.
    cancelled: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.blob is not None

    def image(self) -> CompressedImage:
        if self.blob is None:
            raise ValueError(f"job {self.job.label} produced no artifact")
        return CompressedImage.from_bytes(self.blob)


# ----------------------------------------------------------------------
# Job execution (runs in the worker process, or inline).
# ----------------------------------------------------------------------
def execute_job(job: CompressionJob) -> tuple[bytes, dict, dict]:
    """Run one job; returns (image blob, metadata, metrics snapshot)."""
    registry = MetricsRegistry()
    with registry.installed():
        with registry.timer("job.build").time():
            compressed, image = job.run()
    blob = image.to_bytes()
    meta = {
        "label": job.label,
        "encoding": job.encoding,
        "verify": job.verify_level,
        "max_codewords": job.max_codewords,
        "instructions": len(compressed.program.text),
        "original_bytes": compressed.original_bytes,
        "stream_bytes": compressed.stream_bytes,
        "dictionary_bytes": compressed.dictionary_bytes,
        "compressed_bytes": compressed.compressed_bytes,
        "relaxations": compressed.relaxations,
    }
    return blob, meta, registry.as_dict()


def _worker(conn, job: CompressionJob, traceparent: str | None = None) -> None:
    # Chaos kill points (no-ops without an installed schedule): a real
    # SIGKILL either before any work or with the result computed but
    # unsent — both must be recovered by the pool's crash-retry path.
    key = job.content_key()
    pool_kill_point("start", key)
    try:
        # The parent's traceparent crosses the process boundary as a
        # plain argument; spans recorded in this worker parent under it,
        # so one trace id covers dispatcher and worker lanes.
        with observe.remote_context(traceparent):
            blob, meta, snapshot = execute_job(job)
        pool_kill_point("before_result", key)
        conn.send(("ok", blob, meta, snapshot))
    except Exception as exc:  # job failure, shipped to the parent
        conn.send(
            ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
        )
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Batch driver.
# ----------------------------------------------------------------------
def run_batch(
    jobs: list[CompressionJob],
    *,
    cache: ArtifactCache | None = None,
    processes: int = 0,
    timeout: float | None = None,
    retries: int = 1,
    metrics: MetricsRegistry | None = None,
    stop=None,
) -> list[JobResult]:
    """Run ``jobs`` through the cache and (optionally parallel) pool.

    ``stop`` is an optional zero-argument predicate polled between job
    launches; once it returns true the batch drains — running jobs
    finish, unstarted jobs return ``cancelled=True``.
    """
    registry = metrics if metrics is not None else MetricsRegistry()
    results: list[JobResult | None] = [None] * len(jobs)

    pending: list[int] = []
    for index, job in enumerate(jobs):
        key = job.content_key()
        entry = cache.get(key) if cache is not None else None
        if entry is not None:
            registry.counter("cache.hits").inc()
            # One (tiny) span tree per job even when served from cache,
            # so traces show every job with its cache_hit attribute.
            with observe.span(
                "job", label=job.label, encoding=job.encoding,
                verify=job.verify_level, cache_hit=True,
            ):
                pass
            results[index] = JobResult(
                job=job, key=key, blob=entry.blob, meta=entry.meta,
                cache_hit=True, attempts=0,
            )
        else:
            if cache is not None:
                registry.counter("cache.misses").inc()
            pending.append(index)

    if pending:
        if processes <= 0:
            _run_inline(jobs, pending, results, registry, stop=stop)
        else:
            _run_pool(
                jobs, pending, results, registry,
                processes=processes, timeout=timeout, retries=retries,
                stop=stop,
            )

    for index in pending:
        result = results[index]
        assert result is not None
        if result.cancelled:
            registry.counter("jobs.cancelled").inc()
            continue
        registry.timer("job.wall").observe(result.wall_seconds)
        registry.histogram("job.seconds").observe(result.wall_seconds)
        if result.ok:
            registry.counter("jobs.completed").inc()
            saved = result.meta.get("original_bytes", 0) - result.meta.get(
                "compressed_bytes", 0
            )
            if saved > 0:
                registry.counter("bytes.saved").inc(saved)
            if cache is not None:
                cache.put(result.key, result.blob, result.meta)
        else:
            registry.counter("jobs.failed").inc()
            if result.error and result.error.startswith("VerificationError"):
                registry.counter("verify.failures").inc()
    return [result for result in results if result is not None]


def _cancel(jobs, index: int, results) -> None:
    results[index] = JobResult(
        job=jobs[index], key=jobs[index].content_key(), cancelled=True,
        error="cancelled: drain requested before the job started",
    )


def _run_inline(
    jobs: list[CompressionJob],
    pending: list[int],
    results: list[JobResult | None],
    registry: MetricsRegistry,
    stop=None,
) -> None:
    for index in pending:
        if stop is not None and stop():
            _cancel(jobs, index, results)
            continue
        job = jobs[index]
        start = time.perf_counter()
        try:
            blob, meta, snapshot = execute_job(job)
            registry.merge(snapshot)
            results[index] = JobResult(
                job=job, key=job.content_key(), blob=blob, meta=meta,
                attempts=1, wall_seconds=time.perf_counter() - start,
            )
        except Exception as exc:
            results[index] = JobResult(
                job=job, key=job.content_key(), attempts=1,
                wall_seconds=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
            )


def _run_pool(
    jobs: list[CompressionJob],
    pending: list[int],
    results: list[JobResult | None],
    registry: MetricsRegistry,
    *,
    processes: int,
    timeout: float | None,
    retries: int,
    stop=None,
) -> None:
    context = multiprocessing.get_context()
    queue: deque[tuple[int, int]] = deque((index, 0) for index in pending)
    running: dict[int, tuple] = {}  # index -> (proc, conn, started, attempt)

    def finish(index: int, attempt: int, started: float, **kwargs) -> None:
        results[index] = JobResult(
            job=jobs[index], key=jobs[index].content_key(), attempts=attempt,
            wall_seconds=time.monotonic() - started, **kwargs,
        )

    while queue or running:
        if stop is not None and queue and stop():
            # Drain: everything not yet launched is cancelled; the
            # workers already running finish normally below.
            while queue:
                index, _ = queue.popleft()
                _cancel(jobs, index, results)
        while queue and len(running) < processes:
            index, prior_attempts = queue.popleft()
            try:
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_worker,
                    args=(
                        child_conn, jobs[index], observe.current_traceparent()
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
            except OSError:
                # Platform refused a subprocess; degrade to inline.
                _run_inline(jobs, [index], results, registry)
                continue
            running[index] = (
                process, parent_conn, time.monotonic(), prior_attempts + 1
            )

        now = time.monotonic()
        for index in list(running):
            process, conn, started, attempt = running[index]
            if conn.poll():
                try:
                    payload = conn.recv()
                except EOFError:
                    payload = None
                process.join()
                conn.close()
                del running[index]
                if payload is None:
                    _retry_or_fail(
                        index, attempt, started, retries, queue, finish,
                        registry, "worker crashed (no result before exit)",
                    )
                elif payload[0] == "ok":
                    _, blob, meta, snapshot = payload
                    registry.merge(snapshot)
                    finish(index, attempt, started, blob=blob, meta=meta)
                else:
                    # Deterministic job failure: never retried.
                    finish(index, attempt, started, error=payload[1])
            elif timeout is not None and now - started > timeout:
                process.terminate()
                process.join()
                conn.close()
                del running[index]
                finish(
                    index, attempt, started,
                    error=f"timed out after {timeout:g}s",
                )
            elif not process.is_alive():
                process.join()
                exitcode = process.exitcode
                conn.close()
                del running[index]
                _retry_or_fail(
                    index, attempt, started, retries, queue, finish, registry,
                    f"worker crashed (exit code {exitcode})",
                )
        if running:
            time.sleep(_POLL_SECONDS)


def _retry_or_fail(
    index: int,
    attempt: int,
    started: float,
    retries: int,
    queue: deque,
    finish,
    registry: MetricsRegistry,
    reason: str,
) -> None:
    if attempt <= retries:
        registry.counter("jobs.retries").inc()
        queue.append((index, attempt))
    else:
        finish(index, attempt, started, error=reason)
