"""Background integrity scrubbing for the artifact store.

Disk corruption that only ever surfaces at read time is corruption
discovered at the worst possible moment — while a client is waiting.
The :class:`CacheScrubber` walks the store *incrementally* (a bounded
batch of files per step, resuming where the last step left off), CRC-
checks each ``RCC1`` envelope, and quarantines anything that fails —
the same quarantine-and-miss path reads use, so a scrubbed-out entry
is simply re-derived on the next request.

The server runs one scrubber as a low-duty asyncio task (see
``scrub_interval`` on :class:`repro.server.app.ServerConfig`); batches
are small so a scrub step never monopolises an executor slot.  The
scrubber holds no locks of its own — it goes through each owning
cache's quarantine path, and tolerates files vanishing mid-scan
(concurrent eviction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.service.cache import ArtifactCache, CacheCorruptionError, decode_entry


@dataclass
class ScrubReport:
    """Cumulative results of a scrubber's passes so far."""

    scanned: int = 0
    ok: int = 0
    quarantined: int = 0
    errors: int = 0
    passes: int = 0
    quarantined_keys: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "ok": self.ok,
            "quarantined": self.quarantined,
            "errors": self.errors,
            "passes": self.passes,
        }


class CacheScrubber:
    """Incremental CRC scan over an artifact cache (plain or sharded).

    ``step(batch)`` verifies up to ``batch`` files and returns how many
    it looked at; when the cursor wraps past the end of the store, a
    pass is complete and the next step starts over with a fresh file
    listing.
    """

    def __init__(self, cache) -> None:
        # Accept either an ArtifactCache or anything exposing
        # ``iter_shards()`` (the sharded server cache).
        if hasattr(cache, "iter_shards"):
            self._caches = list(cache.iter_shards())
        else:
            self._caches = [cache]
        self.report = ScrubReport()
        self._pending: list[tuple[ArtifactCache, Path]] = []

    def _refill(self) -> None:
        self._pending = [
            (cache, path)
            for cache in self._caches
            for path in sorted(cache._files())
        ]
        self.report.passes += 1

    def step(self, batch: int = 16) -> int:
        """Verify up to ``batch`` files; returns the number scanned."""
        if not self._pending:
            self._refill()
        scanned = 0
        while self._pending and scanned < batch:
            cache, path = self._pending.pop(0)
            scanned += 1
            self.report.scanned += 1
            try:
                raw = cache.fs.read_bytes(path)
            except OSError:
                # Vanished (concurrent eviction) or transiently
                # unreadable — neither is corruption.
                self.report.errors += 1
                continue
            try:
                decode_entry(path.stem, raw)
            except CacheCorruptionError:
                cache.stats.corruptions += 1
                cache._quarantine(path)
                cache._memory.pop(path.stem, None)
                self.report.quarantined += 1
                self.report.quarantined_keys.append(path.stem)
                continue
            self.report.ok += 1
        return scanned

    def full_pass(self, batch: int = 64) -> ScrubReport:
        """Scrub the whole store once (test/CLI convenience)."""
        self._refill()
        while self._pending:
            self.step(batch)
        return self.report
