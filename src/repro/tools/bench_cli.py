"""``repro-bench``: the performance measurement CLI.

Times the compression pipeline over the workload suite — dictionary
construction fast-path vs :func:`~repro.core.greedy.greedy_reference`,
the full compress with per-stage breakdown, stream decode cold vs
decode-cache warm, and bounded simulation with the translation-cache
fast path vs the reference interpreters (steps/sec, cold predecode vs
warm, per-encoding compressed throughput, ``profile_program``
end-to-end) — and writes the results into ``BENCH_compression.json``
keyed by configuration.  ``--no-fastpath`` is the escape hatch that
times only the reference interpreters.

``--load`` additionally drives a self-hosted :mod:`repro.server` over
real HTTP (closed- or open-loop, multiple tenants, hog-tenant 429
probe) and stores the measured submit-to-terminal-SSE latency
percentiles as the run's ``service`` block, guarded by the same
``--baseline`` comparison (p50/p99 latency and job throughput).

Examples::

    repro-bench --suite                        # full suite, scale 1.0
    repro-bench -b compress -b li --scale 0.3  # CI smoke configuration
    repro-bench --suite --workers 4            # add a pool-throughput sweep
    repro-bench -b compress -b li --scale 0.3 --baseline BENCH_compression.json
    repro-bench -b compress -b li --scale 0.3 --load --load-jobs 200

With ``--baseline`` the fresh run is compared against the same-key run
in the given file; any (program, encoding) whose compress wall time
exceeds ``--guard-factor`` (default 2.0) times the baseline — or whose
simulation throughput (steps/sec or insn/sec) drops below baseline
divided by the same factor — makes the command exit with status 3.
``--decode-guard FACTOR`` is an absolute (baseline-free) floor on the
bulk decoder's speedup over the reference walk, also exiting 3;
``--fusion-guard COVERAGE`` is the same kind of floor on measured
control-fusion coverage (dynamically executed cmp+branch pairs that
ran fused).
A fast-vs-reference architectural-state mismatch exits with status 4,
like a greedy/image identity failure or a bulk-vs-reference decode
item mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.observe import RunLedger
from repro.perf.bench import (
    BENCH_FILENAME,
    DEFAULT_ENCODINGS,
    check_regression,
    load_baseline,
    merge_baseline,
    run_bench,
    run_key,
)
from repro.workloads import BENCHMARK_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the compression pipeline and guard against regressions.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--suite",
        action="store_true",
        help="benchmark every program in the suite",
    )
    group.add_argument(
        "-b",
        "--benchmark",
        action="append",
        choices=BENCHMARK_NAMES,
        metavar="NAME",
        help=f"benchmark to measure (repeatable; one of {', '.join(BENCHMARK_NAMES)})",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="workload scale factor (default 1.0)"
    )
    parser.add_argument(
        "--encodings",
        default=",".join(DEFAULT_ENCODINGS),
        help="comma-separated encodings to measure (default %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions per timing (best-of, default 3)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also run the configuration through the service pool with N workers",
    )
    parser.add_argument(
        "--simulate-steps",
        type=int,
        default=200_000,
        help="control-flow step bound for the simulation probe (default 200000)",
    )
    parser.add_argument(
        "--no-simulate",
        action="store_true",
        help="skip the simulation probe",
    )
    parser.add_argument(
        "--no-fastpath",
        action="store_true",
        help=(
            "time only the reference interpreters (escape hatch; skips "
            "the translation-cache fast-path measurements)"
        ),
    )
    parser.add_argument(
        "-o",
        "--output",
        default=BENCH_FILENAME,
        help="JSON trajectory file to update (default %(default)s)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and report only; do not update the output file "
        "or the run ledger (an explicit --ledger-dir still writes)",
    )
    parser.add_argument(
        "--ledger-dir",
        default=None,
        help="directory for the observe run ledger (default: "
        "$REPRO_OBSERVE_DIR or .repro-observe); one bench.compress "
        "record per (program, encoding), for repro-observe diff",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip writing ledger records",
    )
    load = parser.add_argument_group(
        "load harness",
        "drive a self-hosted repro.server over HTTP and record the "
        "'service' latency block (submit-to-terminal-SSE p50/p90/p99)",
    )
    load.add_argument(
        "--load",
        action="store_true",
        help="run the service load harness over this configuration",
    )
    load.add_argument(
        "--load-jobs",
        type=int,
        default=200,
        help="measured-phase submissions (default %(default)s)",
    )
    load.add_argument(
        "--load-mode",
        choices=("closed", "open"),
        default="closed",
        help="closed-loop (submit/wait/repeat) or open-loop (fixed "
        "arrival rate; default %(default)s)",
    )
    load.add_argument(
        "--load-clients",
        type=int,
        default=4,
        help="closed-loop client threads (default %(default)s)",
    )
    load.add_argument(
        "--load-rate",
        type=float,
        default=50.0,
        help="open-loop submissions per second (default %(default)s)",
    )
    load.add_argument(
        "--load-tenants",
        default="alpha,beta",
        help="comma list of measured tenants (default %(default)s)",
    )
    load.add_argument(
        "--load-verify",
        choices=("none", "stream", "full"),
        default="full",
        help="verification level for load jobs (default %(default)s; "
        "'full' adds the lockstep differential divergence gate)",
    )
    load.add_argument(
        "--load-shards",
        type=int,
        default=4,
        help="cache shards for the self-hosted server (default %(default)s)",
    )
    load.add_argument(
        "--load-concurrency",
        type=int,
        default=2,
        help="server-side job concurrency (default %(default)s)",
    )
    load.add_argument(
        "--load-hog-burst",
        type=int,
        default=8,
        help="over-quota burst size from the throttled 'hog' tenant "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        help="existing bench JSON to compare against (regression guard)",
    )
    parser.add_argument(
        "--guard-factor",
        type=float,
        default=2.0,
        help="fail if compress time exceeds FACTOR x baseline (default 2.0)",
    )
    parser.add_argument(
        "--decode-guard",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail (exit 3) if the bulk decode speedup over the "
        "reference walk drops below FACTOR on any program x encoding",
    )
    parser.add_argument(
        "--fusion-guard",
        type=float,
        default=None,
        metavar="COVERAGE",
        help="fail (exit 3) if measured control-fusion coverage (the "
        "fraction of dynamically executed adjacent cmp+branch pairs "
        "that ran fused) drops below COVERAGE on any program",
    )
    return parser


def _print_run(key: str, run_doc: dict) -> None:
    print(f"run: {key}")
    header = (
        f"{'program':<10} {'encoding':<9} {'insns':>7} {'dict fast':>10} "
        f"{'dict ref':>10} {'speedup':>8} {'compress':>9} {'decode warm':>11} "
        f"{'ratio':>6} {'identical':>9}"
    )
    print(header)
    print("-" * len(header))
    for name, doc in run_doc["programs"].items():
        for encoding_name, enc in doc["encodings"].items():
            identical = enc["identical_greedy"] and enc["identical_image"]
            print(
                f"{name:<10} {encoding_name:<9} {doc['instructions']:>7} "
                f"{enc['dict_fast_seconds'] * 1e3:>8.2f}ms "
                f"{enc['dict_reference_seconds'] * 1e3:>8.2f}ms "
                f"{enc['dict_speedup']:>7.2f}x "
                f"{enc['compress_seconds'] * 1e3:>7.1f}ms "
                f"{enc['decode_warm_seconds'] * 1e6:>9.1f}us "
                f"{enc['compression_ratio']:>6.3f} "
                f"{'yes' if identical else 'NO':>9}"
            )
    _print_simulation(run_doc)
    _print_decode(run_doc)
    aggregate = run_doc["aggregate"]
    print(
        f"largest program: {aggregate['largest_program']} "
        f"(dictionary speedup {aggregate['dict_speedup_largest']:.2f}x); "
        f"suite speedup range {aggregate['dict_speedup_min']:.2f}x"
        f"-{aggregate['dict_speedup_max']:.2f}x; "
        f"byte-identical everywhere: "
        f"{'yes' if aggregate['identical_everywhere'] else 'NO'}"
    )
    workers_doc = run_doc.get("workers")
    if workers_doc:
        print(
            f"pool: {workers_doc['jobs']} jobs / {workers_doc['workers']} workers "
            f"in {workers_doc['wall_seconds']:.2f}s "
            f"({workers_doc['failed']} failed)"
        )
    service = run_doc.get("service")
    if service:
        _print_service(service)


def _print_service(service: dict) -> None:
    latency = service["latency"]
    jobs = service["jobs"]
    cache = service["cache"]
    hog = service["hog"]
    shape = (
        f"{service['clients']} clients"
        if service["mode"] == "closed"
        else f"{service['rate_per_second']:g}/s arrivals"
    )
    print(
        f"service ({service['mode']}-loop, {shape}, "
        f"tenants {','.join(service['tenants'])}): "
        f"{jobs['completed']}/{jobs['requested']} jobs in "
        f"{service['measured_wall_seconds']:.2f}s "
        f"({service['throughput_jobs_per_second']:.1f} jobs/s)"
    )
    print(
        f"  latency p50/p90/p99: {latency['p50'] * 1e3:.2f}/"
        f"{latency['p90'] * 1e3:.2f}/{latency['p99'] * 1e3:.2f}ms "
        f"over {latency['count']} jobs; warm hit rate "
        f"{cache['measured_hit_rate']:.0%}; "
        f"divergences {service['divergences']}; "
        f"{jobs['failed']} failed"
    )
    print(
        f"  admission: hog burst {hog['burst']} -> {hog['accepted']} "
        f"accepted, {hog['rejected']} throttled with 429 "
        f"(Retry-After {hog['retry_after_seconds']}s); "
        f"{jobs['rejected_quota']} quota + "
        f"{jobs['rejected_queue']} queue rejections total"
    )


def _print_simulation(run_doc: dict) -> None:
    """Per-program fast-vs-reference simulation lines.

    Every speedup is attributable from the JSON alone; this mirrors the
    ``simulation`` / ``simulate_*`` keys so a regression shows up in the
    console output too.
    """
    lines = []
    for name, doc in run_doc["programs"].items():
        sim = doc.get("simulation")
        if sim and "speedup" in sim:
            lines.append(
                f"{name:<10} uncompressed: "
                f"{sim['fast_steps_per_second']:>12,.0f} steps/s fast vs "
                f"{sim['reference_steps_per_second']:>12,.0f} reference "
                f"({sim['speedup']:.2f}x, "
                f"identical {'yes' if sim['identical_state'] else 'NO'})"
            )
        for encoding_name, enc in doc["encodings"].items():
            if "simulate_speedup" not in enc:
                continue
            lines.append(
                f"{name:<10} {encoding_name:<9}: "
                f"{enc['simulate_fast_insn_per_second']:>12,.0f} insn/s fast vs "
                f"{enc['simulate_reference_insn_per_second']:>12,.0f} reference "
                f"({enc['simulate_speedup']:.2f}x, identical "
                f"{'yes' if enc['simulate_identical_state'] else 'NO'})"
            )
    if lines:
        print("simulation fast path:")
        for line in lines:
            print(f"  {line}")


def _print_decode(run_doc: dict) -> None:
    """Bulk-vs-reference decode lines plus the fusion footprint."""
    lines = []
    for name, doc in run_doc["programs"].items():
        for encoding_name, enc in doc["encodings"].items():
            if "decode_bulk_speedup" not in enc:
                continue
            lines.append(
                f"{name:<10} {encoding_name:<9}: "
                f"{enc['decode_items_per_second']:>12,.0f} items/s bulk "
                f"({enc['decode_backend']}) vs reference walk "
                f"({enc['decode_bulk_speedup']:.2f}x, identical "
                f"{'yes' if enc['decode_identical_items'] else 'NO'})"
            )
    if lines:
        print("bulk decode:")
        for line in lines:
            print(f"  {line}")
    for name, doc in run_doc["programs"].items():
        fusion = doc.get("simulation", {}).get("fusion")
        if fusion and fusion["enabled"]:
            print(
                f"fusion: {name}: {fusion['trace_instructions']} trace "
                f"insns -> {fusion['trace_thunks']} thunks "
                f"({fusion['body_shrink']:.1%} body shrink, "
                f"{fusion['compiled_thunks']} compiled over "
                f"{fusion['planned_pairs']} pairs)"
            )
        control = doc.get("simulation", {}).get("fusion_control")
        if control:
            print(
                f"control fusion: {name}: {control['fused_sites']}/"
                f"{control['sites']} cmp+branch sites fused; dynamic "
                f"coverage {control['coverage']:.1%} "
                f"({control['dynamic_fused']:,}/"
                f"{control['dynamic_pairs']:,} executed pairs)"
            )
    bulk = run_doc.get("bulk_decode")
    if bulk:
        reasons = bulk.get("fallback_reasons") or {}
        detail = (
            "; ".join(
                f"{reason}={count}"
                for reason, count in sorted(reasons.items())
            )
            or "none"
        )
        print(
            f"bulk decode fallbacks: {bulk.get('fallbacks', 0)}/"
            f"{bulk.get('decodes', 0)} decodes ({detail})"
        )


def _decode_guard_violations(run_doc: dict, factor: float) -> list[str]:
    """Absolute floor on the bulk decoder's speedup, no baseline needed."""
    violations = []
    for name, doc in run_doc["programs"].items():
        for encoding_name, enc in doc["encodings"].items():
            speedup = enc.get("decode_bulk_speedup")
            if speedup is not None and speedup < factor:
                violations.append(
                    f"{name}/{encoding_name}: bulk decode speedup "
                    f"{speedup:.2f}x < required {factor:g}x"
                )
    return violations


def _fusion_guard_violations(run_doc: dict, floor: float) -> list[str]:
    """Absolute floor on measured control-fusion coverage."""
    violations = []
    for name, doc in run_doc["programs"].items():
        control = doc.get("simulation", {}).get("fusion_control")
        if control is None:
            continue
        if control["coverage"] < floor:
            violations.append(
                f"{name}: control fusion coverage {control['coverage']:.1%} "
                f"< required {floor:.1%} "
                f"({control['dynamic_fused']:,}/"
                f"{control['dynamic_pairs']:,} executed pairs)"
            )
    return violations


def _simulation_identical(run_doc: dict) -> bool:
    """All fast-vs-reference identity gates (missing keys pass)."""
    return run_doc["aggregate"].get("sim_identical_everywhere", True)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    programs = list(BENCHMARK_NAMES) if args.suite else list(args.benchmark)
    encodings = [name.strip() for name in args.encodings.split(",") if name.strip()]

    try:
        # --no-write implies no ledger unless one was asked for by path.
        ledger = None
        if not args.no_ledger and (args.ledger_dir or not args.no_write):
            ledger = RunLedger(args.ledger_dir)
        run_doc = run_bench(
            programs,
            args.scale,
            encodings,
            repeats=args.repeats,
            workers=args.workers,
            simulate=not args.no_simulate,
            simulate_steps=args.simulate_steps,
            fastpath_enabled=not args.no_fastpath,
            ledger=ledger,
        )
        if args.load:
            from repro.perf.loadgen import LoadConfig, run_load

            tenants = [
                name.strip() for name in args.load_tenants.split(",")
                if name.strip()
            ]
            run_doc["service"] = run_load(LoadConfig(
                benchmarks=programs,
                encodings=encodings,
                scale=args.scale,
                verify=args.load_verify,
                mode=args.load_mode,
                jobs=args.load_jobs,
                clients=args.load_clients,
                rate=args.load_rate,
                tenants=tenants,
                hog_burst=args.load_hog_burst,
                shards=args.load_shards,
                concurrency=args.load_concurrency,
            ))
        key = run_key(programs, args.scale, encodings)
        _print_run(key, run_doc)

        status = 0
        if args.baseline:
            baseline_doc = load_baseline(args.baseline)
            baseline_run = baseline_doc.get("runs", {}).get(key)
            if baseline_run is None:
                print(f"baseline: no run under key {key!r}; guard skipped")
            else:
                violations = check_regression(
                    run_doc, baseline_run, factor=args.guard_factor
                )
                if violations:
                    for violation in violations:
                        print(f"REGRESSION: {violation}", file=sys.stderr)
                    status = 3
                else:
                    print(
                        f"guard: within {args.guard_factor:g}x of baseline "
                        f"({args.baseline})"
                    )
        if args.decode_guard is not None:
            violations = _decode_guard_violations(run_doc, args.decode_guard)
            if violations:
                for violation in violations:
                    print(f"DECODE GUARD: {violation}", file=sys.stderr)
                status = status or 3
            else:
                print(f"decode guard: bulk >= {args.decode_guard:g}x everywhere")
        if args.fusion_guard is not None:
            violations = _fusion_guard_violations(run_doc, args.fusion_guard)
            if violations:
                for violation in violations:
                    print(f"FUSION GUARD: {violation}", file=sys.stderr)
                status = status or 3
            else:
                print(
                    f"fusion guard: control coverage >= "
                    f"{args.fusion_guard:.0%} everywhere"
                )
        if not run_doc["aggregate"]["identical_everywhere"]:
            print(
                "ERROR: fast greedy output differs from greedy_reference",
                file=sys.stderr,
            )
            status = status or 4
        if not _simulation_identical(run_doc):
            print(
                "ERROR: fast-path simulation state differs from reference",
                file=sys.stderr,
            )
            status = status or 4
        if not run_doc["aggregate"].get("decode_identical_everywhere", True):
            print(
                "ERROR: bulk decode items differ from the reference walk",
                file=sys.stderr,
            )
            status = status or 4
        service = run_doc.get("service")
        if service and service.get("divergences", 0):
            print(
                f"ERROR: load harness observed {service['divergences']} "
                f"differential divergences",
                file=sys.stderr,
            )
            status = status or 4

        if not args.no_write:
            output = Path(args.output)
            document = merge_baseline(load_baseline(output), key, run_doc)
            output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
            print(f"wrote {output}")
        if ledger is not None:
            print(f"ledger: {ledger.path}")
        return status
    except ReproError as exc:
        print(f"repro-bench: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-bench: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
