"""``repro-chaos``: deterministic fault-injection campaigns.

Subcommands:

* ``run``  — host a real server under a seeded
  :class:`~repro.chaos.schedule.ChaosSchedule`, drive ``--jobs``
  submissions through the resilient client, classify every job into
  the shared outcome taxonomy, and **gate on zero lost-acknowledged
  jobs and zero silent divergences**.  ``--runs N`` repeats the whole
  campaign and asserts the outcome fingerprint is identical — the
  determinism check CI runs on every push.
* ``show`` — pretty-print a saved campaign report.

Exit status: 0 campaign(s) passed the gate, 2 operational error,
3 gate violated (lost or silently-diverged jobs), 4 determinism
violated (same seed, different fingerprint).

Examples::

    repro-chaos run --seed 1997 --jobs 200 --runs 2 -o CHAOS_campaign.json
    repro-chaos run --jobs 50 --fault disk:torn_write:0.2 \\
        --fault worker:kill:0.1
    repro-chaos show CHAOS_campaign.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.chaos.campaign import (
    DEFAULT_RULES,
    ChaosCampaignConfig,
    run_chaos_campaign,
)
from repro.chaos.schedule import parse_rule
from repro.errors import ReproError
from repro.experiments.common import render_table


def _render(report) -> str:
    lines = [
        f"chaos campaign: seed {report.seed}, {report.jobs} jobs, "
        f"planes {', '.join(report.planes) or 'none'}",
        "",
        render_table(
            ["outcome", "jobs"],
            [[name, count] for name, count in report.counts.items()],
        ),
        "",
        "injected faults: " + (
            ", ".join(
                f"{label}×{count}"
                for label, count in sorted(report.injected.items())
            ) or "none"
        ),
        f"client: {report.client.get('retries', 0)} retries, "
        f"{report.client.get('throttles', 0)} throttles, "
        f"{report.client.get('deduplicated', 0)} deduplicated resubmits",
        f"fingerprint: {report.fingerprint[:16]}…",
    ]
    if report.ok:
        lines.append("gate: PASS (0 lost, 0 silently-diverged)")
    else:
        lines.append("gate: FAIL — " + "; ".join(report.gate_violations))
        for failure in report.failures[:10]:
            lines.append(f"  job #{failure['index']} "
                         f"[{failure['outcome']}]: {failure['error']}")
    return "\n".join(lines)


def cmd_run(args) -> int:
    rules = (
        tuple(parse_rule(text) for text in args.fault)
        if args.fault else DEFAULT_RULES
    )
    config = ChaosCampaignConfig(
        seed=args.seed,
        jobs=args.jobs,
        benchmarks=[b.strip() for b in args.benchmarks.split(",") if b.strip()],
        encodings=[e.strip() for e in args.encodings.split(",") if e.strip()],
        scale=args.scale,
        verify=args.verify,
        rules=rules,
        job_timeout=args.job_timeout,
        job_attempts=args.job_attempts,
        hang_seconds=max(args.job_timeout * 1.2, 1.0),
        variants=args.variants,
    )
    reports = []
    for run in range(max(1, args.runs)):
        report = run_chaos_campaign(config)
        reports.append(report)
        print(f"--- run {run + 1}/{max(1, args.runs)} ---")
        print(_render(report))
        print()
    fingerprints = {report.fingerprint for report in reports}
    deterministic = len(fingerprints) == 1
    document = {
        **reports[0].as_dict(),
        "runs": len(reports),
        "determinism": {
            "checked": len(reports) > 1,
            "identical": deterministic,
            "fingerprints": sorted(fingerprints),
        },
        "rules": [rule.describe() for rule in rules],
        "config": {
            "benchmarks": config.benchmarks,
            "encodings": config.encodings,
            "scale": config.scale,
            "verify": config.verify,
            "job_timeout": config.job_timeout,
            "job_attempts": config.job_attempts,
        },
    }
    if args.output:
        Path(args.output).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.output}")
    if not deterministic:
        print("repro-chaos: DETERMINISM VIOLATION — same seed produced "
              f"{len(fingerprints)} distinct outcome sequences",
              file=sys.stderr)
        return 4
    if any(not report.ok for report in reports):
        return 3
    return 0


def cmd_show(args) -> int:
    document = json.loads(Path(args.report).read_text())
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-chaos", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a seeded chaos campaign")
    run.add_argument("--seed", type=int, default=1997)
    run.add_argument("--jobs", type=int, default=200)
    run.add_argument("--benchmarks", default="compress,li")
    run.add_argument("--encodings", default="nibble")
    run.add_argument("--scale", type=float, default=0.25)
    run.add_argument("--verify", default="stream",
                     choices=("none", "stream", "full"))
    run.add_argument("--fault", action="append", default=[],
                     metavar="PLANE:FAULT:RATE[:MATCH]",
                     help="add a fault rule (repeatable); default mix "
                     "covers disk, worker, and connection planes")
    run.add_argument("--job-timeout", type=float, default=10.0,
                     help="server-side per-attempt wall limit (seconds)")
    run.add_argument("--job-attempts", type=int, default=3)
    run.add_argument("--variants", type=int, default=25,
                     help="distinct scale variants per benchmark "
                     "(distinct content keys keep every plane busy)")
    run.add_argument("--runs", type=int, default=1,
                     help="repeat the campaign N times and require "
                     "identical outcome fingerprints")
    run.add_argument("-o", "--output", help="write the JSON report here")
    run.set_defaults(func=cmd_run)

    show = sub.add_parser("show", help="print a saved campaign report")
    show.add_argument("report")
    show.set_defaults(func=cmd_show)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro-chaos: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-chaos: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
