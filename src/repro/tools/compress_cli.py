"""``repro-compress``: compile, compress, inspect, and run images.

Subcommands:

* ``build``  — compile a MiniC source file (or a named synthetic
  benchmark) and write a compressed ``.rcim`` image;
* ``info``   — print an image's encoding, sizes, and dictionary summary;
* ``run``    — execute an image on the compressed-program processor;
* ``ratio``  — quick one-line compression report without writing a file.

Examples::

    repro-compress build firmware.mc -o firmware.rcim --encoding nibble
    repro-compress info firmware.rcim
    repro-compress run firmware.rcim
    repro-compress ratio --benchmark ijpeg --encoding baseline
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler import compile_and_link
from repro.core import compress
from repro.errors import ReproError
from repro.core.encodings import make_encoding
from repro.core.image import CompressedImage
from repro.isa.disassembler import format_instruction
from repro.isa.instruction import decode
from repro.machine.compressed_sim import CompressedSimulator
from repro.workloads import BENCHMARK_NAMES, build_benchmark


def _load_program(args):
    if args.benchmark:
        return build_benchmark(args.benchmark, args.scale)
    if not args.source:
        raise SystemExit("pass a source file or --benchmark")
    text = Path(args.source).read_text()
    return compile_and_link(text, name=Path(args.source).stem)


def _compress(args):
    program = _load_program(args)
    encoding = make_encoding(args.encoding, args.max_codewords)
    return program, compress(
        program, encoding, max_entry_len=args.max_entry_len
    )


def cmd_build(args) -> int:
    program, compressed = _compress(args)
    compressed.verify_stream()
    image = CompressedImage.from_compressed(compressed)
    out = Path(args.output or (program.name + ".rcim"))
    out.write_bytes(image.to_bytes())
    print(
        f"{program.name}: {program.text_size}B -> "
        f"{compressed.compressed_bytes}B "
        f"({compressed.compression_ratio:.1%}), wrote {out}"
    )
    return 0


def cmd_info(args) -> int:
    image = CompressedImage.from_bytes(Path(args.image).read_bytes())
    print(f"name:        {image.name}")
    print(f"encoding:    {image.encoding_name} "
          f"(max {image.max_codewords} codewords)")
    print(f"stream:      {image.stream_bytes} bytes, {image.total_units} units")
    print(f"dictionary:  {len(image.dictionary)} entries, "
          f"{image.dictionary_bytes} bytes")
    print(f"data image:  {len(image.data_image)} bytes")
    print(f"entry unit:  {image.entry_unit}")
    histogram = image.dictionary.length_histogram()
    print("entry lengths: " + ", ".join(
        f"{length}-insn x{count}" for length, count in sorted(histogram.items())
    ))
    if args.dictionary:
        print("\ndictionary (rank: uses, instructions):")
        for rank, entry in enumerate(image.dictionary.entries):
            body = "; ".join(
                format_instruction(decode(word)) for word in entry.words
            )
            print(f"  #{rank:4d}: {entry.uses:4d}  {body}")
    return 0


def cmd_run(args) -> int:
    image = CompressedImage.from_bytes(Path(args.image).read_bytes())
    simulator = CompressedSimulator.from_image(image, max_steps=args.max_steps)
    result = simulator.run()
    sys.stdout.write(result.output_text)
    if args.stats:
        print(
            f"\n[{image.name}: {result.steps} instructions, "
            f"{simulator.stats.codeword_expansions} codeword expansions, "
            f"exit={result.exit_code}]"
        )
    return result.exit_code & 0xFF


def cmd_ratio(args) -> int:
    program, compressed = _compress(args)
    print(
        f"{program.name}: {len(program.text)} insns, "
        f"{program.text_size}B -> stream {compressed.stream_bytes}B "
        f"+ dict {compressed.dictionary_bytes}B = "
        f"{compressed.compression_ratio:.1%} "
        f"({len(compressed.dictionary)} codewords)"
    )
    return 0


def cmd_disasm(args) -> int:
    path = Path(args.target)
    if path.suffix == ".rcim" and path.exists():
        return _disasm_image(path, args)
    # Otherwise treat as MiniC source (or use --benchmark).
    args.source = None if args.benchmark else args.target
    program = _load_program(args)
    ranges = program.function_ranges()
    for index, ti in enumerate(program.text):
        for fname, (start, _) in ranges.items():
            if start == index:
                print(f"\n{fname}:")
        marker = "*" if ti.is_relative_branch else " "
        print(
            f"  {program.address_of(index):#08x}  {ti.word:08x} {marker} "
            f"{format_instruction(ti.instruction, index, program.text_base)}"
        )
    return 0


def _disasm_image(path: Path, args) -> int:
    from repro.machine.decompressor import StreamDecoder

    image = CompressedImage.from_bytes(path.read_bytes())
    decoder = StreamDecoder(
        image.stream, image.dictionary, image.encoding(), image.total_units
    )
    print(f"{image.name} ({image.encoding_name}, "
          f"{len(image.dictionary)} codewords):")
    for item in decoder.decode_all():
        if item.is_codeword:
            body = "; ".join(format_instruction(ins) for ins in item.instructions)
            print(f"  unit {item.address:6d}  CW#{item.rank:<5d} -> {body}")
        else:
            print(
                f"  unit {item.address:6d}  "
                f"{format_instruction(item.instructions[0])}"
            )
    return 0


def _add_compress_options(parser) -> None:
    parser.add_argument("source", nargs="?", help="MiniC source file")
    parser.add_argument("--benchmark", choices=BENCHMARK_NAMES,
                        help="use a synthetic benchmark instead of a file")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--encoding", default="nibble",
                        choices=("baseline", "onebyte", "nibble"))
    parser.add_argument("--max-codewords", type=int, default=None)
    parser.add_argument("--max-entry-len", type=int, default=4)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-compress", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="compile + compress to an image")
    _add_compress_options(build)
    build.add_argument("-o", "--output", help="output .rcim path")
    build.set_defaults(func=cmd_build)

    info = sub.add_parser("info", help="describe an image")
    info.add_argument("image")
    info.add_argument("--dictionary", action="store_true",
                      help="also dump the full dictionary")
    info.set_defaults(func=cmd_info)

    run = sub.add_parser("run", help="execute an image")
    run.add_argument("image")
    run.add_argument("--max-steps", type=int, default=50_000_000)
    run.add_argument("--stats", action="store_true")
    run.set_defaults(func=cmd_run)

    ratio = sub.add_parser("ratio", help="one-line compression report")
    _add_compress_options(ratio)
    ratio.set_defaults(func=cmd_ratio)

    disasm = sub.add_parser(
        "disasm", help="disassemble a source/benchmark or an .rcim image"
    )
    disasm.add_argument("target", nargs="?", default="",
                        help="MiniC source file or .rcim image")
    disasm.add_argument("--benchmark", choices=BENCHMARK_NAMES)
    disasm.add_argument("--scale", type=float, default=1.0)
    disasm.set_defaults(func=cmd_disasm)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Library failures (corrupt image, compile error, bad encoding)
        # become a one-line diagnostic, not a traceback.
        print(f"repro-compress: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-compress: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
