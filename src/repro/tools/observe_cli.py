"""``repro-observe``: trace pipeline runs, report them, diff ledgers.

Six subcommands over the :mod:`repro.observe` subsystem:

``trace``
    Run one pipeline step (``compress``, ``simulate``, or ``verify``)
    on a workload-suite program with a recorder installed, write the
    span tree as Chrome ``trace_event`` JSON (open it in Perfetto or
    ``chrome://tracing``), append one record to the run ledger, and
    print the self/total time tree.

``report``
    Render ledger records: a per-run span tree with self/total wall
    times plus the top-N point metrics across the selected records.

``diff``
    Compare two ledgers (or a ledger against a committed
    ``BENCH_compression.json``) run-by-run and flag stage-time
    regressions; exits 3 when any stage exceeds ``--factor`` times its
    baseline.

``flame``
    Run a pipeline step with the sampling profiler attached and write
    a speedscope JSON profile (open it at https://www.speedscope.app)
    with samples attributed to named spans and fastpath trace bodies.

``blackbox``
    List or dump the flight-recorder crash files under
    ``$REPRO_OBSERVE_DIR/blackbox/`` — merged chronologically, with
    ``--json`` for machine consumption.

``stitch``
    Merge ledger records that share one ``trace_id`` (e.g. a client
    record and a server record) into a single multi-process Chrome
    trace with cross-lane flow arrows.

Examples::

    repro-observe trace --step compress -b gcc --scale 0.5
    repro-observe trace --step simulate -b li --encoding baseline
    repro-observe report --last 2
    repro-observe report --kind bench.compress --program gcc
    repro-observe diff .repro-observe/ledger.jsonl BENCH_compression.json
    repro-observe flame --step simulate -b gcc -o flame.speedscope.json
    repro-observe blackbox --json
    repro-observe stitch --trace-id <32-hex> -o stitched.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import observe
from repro.core.compressor import Compressor
from repro.core.encodings import make_encoding
from repro.errors import ReproError, SimulationError
from repro.machine.compressed_sim import CompressedSimulator
from repro.observe import (
    Recorder,
    RunLedger,
    SamplingProfiler,
    chrome_trace_from_records,
    make_record,
    read_dumps,
    read_ledger,
    validate_chrome_trace,
    write_chrome_trace,
    write_speedscope,
)
from repro.observe.report import (
    diff_ledgers,
    records_from_bench,
    render_report,
    render_tree,
)
from repro.workloads import BENCHMARK_NAMES, build_benchmark

TRACE_STEPS = ("compress", "simulate", "verify")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-observe",
        description="Trace, report, and diff pipeline observability data.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    trace = commands.add_parser(
        "trace", help="run one pipeline step with tracing"
    )
    trace.add_argument(
        "--step", choices=TRACE_STEPS, default="compress",
        help="pipeline step to trace (default %(default)s)",
    )
    trace.add_argument(
        "-b", "--benchmark", required=True, choices=BENCHMARK_NAMES,
        metavar="NAME",
        help=f"workload program (one of {', '.join(BENCHMARK_NAMES)})",
    )
    trace.add_argument("--scale", type=float, default=1.0)
    trace.add_argument("--encoding", default="nibble")
    trace.add_argument(
        "--simulate-steps", type=int, default=200_000,
        help="step bound for --step simulate (default %(default)s)",
    )
    trace.add_argument(
        "-o", "--output", default=None,
        help="trace JSON path (default trace-<step>-<program>.json)",
    )
    trace.add_argument(
        "--ledger-dir", default=None,
        help="ledger directory (default $REPRO_OBSERVE_DIR or .repro-observe)",
    )
    trace.add_argument(
        "--no-ledger", action="store_true", help="skip the ledger record"
    )

    report = commands.add_parser(
        "report", help="render span trees and metrics from a ledger"
    )
    report.add_argument(
        "--ledger", default=None,
        help="ledger file or directory (default $REPRO_OBSERVE_DIR "
        "or .repro-observe)",
    )
    report.add_argument("--kind", default=None, help="filter by record kind")
    report.add_argument("--program", default=None, help="filter by program")
    report.add_argument("--encoding", default=None, help="filter by encoding")
    report.add_argument(
        "--last", type=int, default=1,
        help="render the last N matching records (0 = all, default 1)",
    )
    report.add_argument(
        "--top", type=int, default=10,
        help="top-N metrics across the selected records (default 10)",
    )
    report.add_argument(
        "--min-ms", type=float, default=0.0,
        help="hide child spans shorter than this many milliseconds",
    )

    diff = commands.add_parser(
        "diff", help="compare two ledgers and flag stage-time regressions"
    )
    diff.add_argument("baseline", help="ledger file/dir or bench JSON")
    diff.add_argument("current", help="ledger file/dir or bench JSON")
    diff.add_argument(
        "--factor", type=float, default=1.5,
        help="flag stages slower than FACTOR x baseline (default 1.5)",
    )
    diff.add_argument(
        "--min-ms", type=float, default=2.0,
        help="ignore regressions smaller than this absolute growth "
        "in milliseconds (default 2.0)",
    )

    flame = commands.add_parser(
        "flame", help="profile one pipeline step into speedscope JSON"
    )
    flame.add_argument(
        "--step", choices=TRACE_STEPS, default="simulate",
        help="pipeline step to profile (default %(default)s)",
    )
    flame.add_argument(
        "-b", "--benchmark", required=True, choices=BENCHMARK_NAMES,
        metavar="NAME",
        help=f"workload program (one of {', '.join(BENCHMARK_NAMES)})",
    )
    flame.add_argument("--scale", type=float, default=1.0)
    flame.add_argument("--encoding", default="nibble")
    flame.add_argument(
        "--simulate-steps", type=int, default=200_000,
        help="step bound for --step simulate (default %(default)s)",
    )
    flame.add_argument(
        "--hz", type=int, default=SamplingProfiler().hz,
        help="sampling rate (default %(default)s)",
    )
    flame.add_argument(
        "--repeats", type=int, default=1,
        help="run the step N times under one profile (default 1)",
    )
    flame.add_argument(
        "-o", "--output", default=None,
        help="profile path (default flame-<step>-<program>.speedscope.json)",
    )

    blackbox_cmd = commands.add_parser(
        "blackbox", help="list/dump flight-recorder crash files"
    )
    blackbox_cmd.add_argument(
        "--dir", default=None,
        help="blackbox directory (default "
        "$REPRO_OBSERVE_DIR/blackbox or .repro-observe/blackbox)",
    )
    blackbox_cmd.add_argument(
        "--json", action="store_true",
        help="emit the merged dumps as one JSON document",
    )
    blackbox_cmd.add_argument(
        "--last", type=int, default=0,
        help="only the last N dumps (0 = all, default 0)",
    )

    stitch = commands.add_parser(
        "stitch", help="merge ledger records into one multi-process trace"
    )
    stitch.add_argument(
        "--ledger", action="append", default=None,
        help="ledger file or directory (repeatable; default "
        "$REPRO_OBSERVE_DIR or .repro-observe)",
    )
    stitch.add_argument(
        "--trace-id", default=None,
        help="stitch only records with this trace id (default: the "
        "trace id of the newest record that has one)",
    )
    stitch.add_argument(
        "-o", "--output", default="stitched-trace.json",
        help="Chrome trace output path (default %(default)s)",
    )
    return parser


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
def _run_traced_step(args, recorder: Recorder) -> None:
    """Execute the selected pipeline step inside the recorder.

    Everything runs under one ``step.<name>`` root span, so profiler
    samples landing anywhere in the step (benchmark build included)
    attribute to a named span.
    """
    with recorder, observe.span(
        f"step.{args.step}", program=args.benchmark, encoding=args.encoding
    ):
        if args.step == "compress":
            program = build_benchmark(args.benchmark, args.scale)
            Compressor(encoding=make_encoding(args.encoding)).compress(program)
            return
        program = build_benchmark(args.benchmark, args.scale)
        compressed = Compressor(
            encoding=make_encoding(args.encoding)
        ).compress(program)
        if args.step == "simulate":
            with observe.span(
                "simulate",
                program=args.benchmark,
                encoding=args.encoding,
                max_steps=args.simulate_steps,
            ):
                simulator = CompressedSimulator(
                    compressed, max_steps=args.simulate_steps
                )
                try:
                    simulator.run()
                except SimulationError:
                    pass  # hit the step bound — expected for a trace probe
        else:  # verify
            from repro.verify import run_differential

            result = run_differential(program, compressed)
            if not result.ok:
                raise ReproError(
                    f"differential verification failed:\n{result.render()}"
                )


def _cmd_trace(args) -> int:
    recorder = Recorder()
    started = time.perf_counter()
    outcome, error = "ok", None
    try:
        _run_traced_step(args, recorder)
    except ReproError as exc:
        outcome, error = "error", f"{type(exc).__name__}: {exc}"
    wall_seconds = time.perf_counter() - started

    output = Path(
        args.output or f"trace-{args.step}-{args.benchmark}.json"
    )
    write_chrome_trace(output, recorder.spans, metrics=recorder.metrics)
    print(f"trace: {output} ({len(recorder.spans)} root span(s))")

    record = make_record(
        args.step,
        program=args.benchmark,
        encoding=args.encoding,
        spans=recorder.spans,
        metrics=recorder.metrics,
        outcome=outcome,
        error=error,
        wall_seconds=wall_seconds,
        meta={"scale": args.scale},
    )
    if not args.no_ledger:
        ledger = RunLedger(args.ledger_dir)
        ledger.append(record)
        print(f"ledger: {ledger.path} (run {record['run_id']})")

    print(render_tree(recorder.spans))
    if error is not None:
        print(f"repro-observe: error: {error}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# flame
# ----------------------------------------------------------------------
def _cmd_flame(args) -> int:
    profiler = SamplingProfiler(args.hz)
    profiler.start()
    error = None
    try:
        for _ in range(max(1, args.repeats)):
            _run_traced_step(args, Recorder())
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    finally:
        profiler.stop()
    output = Path(
        args.output
        or f"flame-{args.step}-{args.benchmark}.speedscope.json"
    )
    write_speedscope(
        output, profiler,
        name=f"{args.step} {args.benchmark} ({args.encoding})",
    )
    attribution = profiler.attribution()
    print(
        f"flame: {output} ({attribution['samples']} samples, "
        f"{attribution['fraction']:.0%} attributed to named spans)"
    )
    if error is not None:
        print(f"repro-observe: error: {error}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# blackbox
# ----------------------------------------------------------------------
def _cmd_blackbox(args) -> int:
    dumps = read_dumps(args.dir)
    if args.last > 0:
        dumps = dumps[-args.last:]
    if args.json:
        print(json.dumps({"dumps": dumps, "count": len(dumps)}, indent=1))
        return 0
    if not dumps:
        print("no blackbox dumps found")
        return 1
    for dump in dumps:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(dump["unix_time"])
        )
        print(
            f"{stamp}  {dump['process']} (pid {dump['pid']})  "
            f"reason={dump['reason']}  events={len(dump['events'])}"
            + (f"  dropped={dump['dropped']}" if dump.get("dropped") else "")
        )
        if dump.get("error"):
            print(f"    error: {dump['error']}")
        for event in dump["events"][-5:]:
            if event["type"] == "span":
                span = event["span"]
                print(
                    f"    span   {span['name']}  "
                    f"{(span.get('duration_us') or 0) / 1e3:.3f}ms"
                    + (f"  trace={span['trace_id']}"
                       if span.get("trace_id") else "")
                )
            elif event["type"] == "metric":
                print(f"    metric {event['name']} +{event['value']}")
            else:
                print(f"    note   {event['message']}")
    return 0


# ----------------------------------------------------------------------
# stitch
# ----------------------------------------------------------------------
def _cmd_stitch(args) -> int:
    sources = args.ledger or [None]
    records: list[dict] = []
    for source in sources:
        records.extend(read_ledger(_resolve_ledger_path(source)))
    trace_id = args.trace_id
    if trace_id is None:
        for record in reversed(records):
            if record.get("trace_id"):
                trace_id = record["trace_id"]
                break
    if trace_id is None:
        print("no record with a trace id found", file=sys.stderr)
        return 1
    matching = [r for r in records if r.get("trace_id") == trace_id]
    if not matching:
        print(f"no records with trace id {trace_id}", file=sys.stderr)
        return 1
    document = chrome_trace_from_records(matching)
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems:
            print(f"repro-observe: invalid trace: {problem}",
                  file=sys.stderr)
        return 2
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=1) + "\n")
    flows = sum(1 for e in document["traceEvents"] if e.get("ph") == "s")
    print(
        f"stitch: {output} (trace {trace_id}, {len(matching)} record(s), "
        f"{flows} cross-lane flow arrow(s))"
    )
    return 0


# ----------------------------------------------------------------------
# report / diff
# ----------------------------------------------------------------------
def _resolve_ledger_path(argument: str | None) -> Path:
    path = Path(argument) if argument else observe.RunLedger().directory
    if path.is_dir():
        path = path / "ledger.jsonl"
    return path


def _cmd_report(args) -> int:
    path = _resolve_ledger_path(args.ledger)
    records = read_ledger(path)
    for key in ("kind", "program", "encoding"):
        wanted = getattr(args, key)
        if wanted is not None:
            records = [r for r in records if r.get(key) == wanted]
    if not records:
        print(f"no matching records in {path}")
        return 1
    if args.last > 0:
        records = records[-args.last:]
    print(render_report(records, top=args.top, min_ms=args.min_ms))
    return 0


def _load_side(argument: str) -> list[dict]:
    """A diff side: ledger JSONL, ledger dir, or bench trajectory JSON."""
    path = Path(argument)
    if path.is_dir():
        return read_ledger(path / "ledger.jsonl")
    if path.suffix == ".json":
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read {path}: {exc}") from exc
        return records_from_bench(document)
    return read_ledger(path)


def _cmd_diff(args) -> int:
    baseline = _load_side(args.baseline)
    current = _load_side(args.current)
    lines, regressions = diff_ledgers(
        baseline, current,
        factor=args.factor, min_seconds=args.min_ms / 1e3,
    )
    for line in lines:
        print(line)
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        return 3
    print(f"diff: no stage regressions at {args.factor:g}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "flame":
            return _cmd_flame(args)
        if args.command == "blackbox":
            return _cmd_blackbox(args)
        if args.command == "stitch":
            return _cmd_stitch(args)
        return _cmd_diff(args)
    except ReproError as exc:
        print(f"repro-observe: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-observe: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
