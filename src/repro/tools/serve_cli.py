"""``repro-serve``: batch compression through the service layer.

Takes a *manifest* of jobs (JSON) and/or the built-in workload suite,
runs everything through the artifact cache and worker pool, and prints
a summary table plus cache and per-stage pipeline metrics.

Manifest format (JSON)::

    {
      "defaults": {"encoding": "nibble", "scale": 1.0},
      "jobs": [
        {"benchmark": "ijpeg"},
        {"benchmark": "gcc", "encoding": "baseline", "max_codewords": 1024},
        {"source": "firmware.mc", "encoding": "onebyte", "name": "firmware"}
      ]
    }

``source`` paths are resolved relative to the manifest file.  Every
job accepts the :class:`~repro.service.jobs.CompressionJob` fields:
``benchmark``/``source``, ``scale``, ``encoding``, ``max_codewords``,
``max_entry_len``, ``verify``, ``name``.

Examples::

    repro-serve --suite --scale 0.5 --processes 4
    repro-serve manifest.json --cache-dir .repro-cache
    repro-serve --suite --encodings baseline,nibble --repeat 2 --metrics
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

from repro.errors import ReproError, ServiceError
from repro.experiments.common import render_table
from repro.service import (
    ArtifactCache,
    CompressionJob,
    JobResult,
    MetricsRegistry,
    run_batch,
)
from repro.service.jobs import ENCODING_NAMES, VERIFY_LEVELS
from repro.workloads import BENCHMARK_NAMES

DEFAULT_CACHE_DIR = ".repro-cache"

_JOB_FIELDS = {
    "benchmark", "source", "scale", "encoding", "max_codewords",
    "max_entry_len", "verify", "name",
}


def load_manifest(path: Path) -> list[CompressionJob]:
    """Parse a JSON manifest into job specs."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ServiceError(f"cannot read manifest {path}: {exc}") from exc
    if not isinstance(document, dict) or "jobs" not in document:
        raise ServiceError(f"manifest {path} has no 'jobs' list")
    defaults = document.get("defaults", {})
    jobs = []
    for position, spec in enumerate(document["jobs"]):
        merged = {**defaults, **spec}
        unknown = set(merged) - _JOB_FIELDS
        if unknown:
            raise ServiceError(
                f"manifest job #{position}: unknown fields {sorted(unknown)}"
            )
        if "source" in merged:
            source_path = (path.parent / merged["source"]).resolve()
            try:
                text = source_path.read_text()
            except OSError as exc:
                raise ServiceError(
                    f"manifest job #{position}: cannot read {source_path}: {exc}"
                ) from exc
            merged["source"] = text
            merged.setdefault("name", source_path.stem)
        jobs.append(CompressionJob(**merged))
    return jobs


def suite_jobs(
    benchmarks: list[str],
    encodings: list[str],
    scale: float,
    verify: bool | str = True,
) -> list[CompressionJob]:
    """The workload-suite × encodings job matrix."""
    return [
        CompressionJob(
            benchmark=benchmark, scale=scale, encoding=encoding, verify=verify
        )
        for benchmark in benchmarks
        for encoding in encodings
    ]


#: Set by SIGTERM/SIGINT: the current batch drains (in-flight jobs
#: finish, unstarted jobs are cancelled) and the process exits 0.
_drain_requested = threading.Event()


def _install_signal_handlers() -> None:
    def handler(signum, frame):
        if _drain_requested.is_set():
            raise KeyboardInterrupt  # second signal: stop insisting
        _drain_requested.set()
        print(
            f"repro-serve: received {signal.Signals(signum).name}; "
            "draining in-flight jobs...",
            file=sys.stderr, flush=True,
        )

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):
            pass  # not the main thread / unsupported platform


def summarize(results: list[JobResult], elapsed: float) -> str:
    rows = []
    for result in results:
        meta = result.meta
        if result.cancelled:
            rows.append((
                result.job.label, result.job.encoding, "cancelled",
                "-", "-", "-", "-",
            ))
        elif result.ok:
            original = meta.get("original_bytes", 0)
            total = meta.get("compressed_bytes", 0)
            ratio = f"{total / original:.1%}" if original else "-"
            status = "hit" if result.cache_hit else "built"
            rows.append((
                meta.get("label", result.job.label),
                meta.get("encoding", result.job.encoding),
                status,
                original,
                total,
                ratio,
                f"{result.wall_seconds:.2f}s",
            ))
        else:
            rows.append((
                result.job.label, result.job.encoding,
                f"FAILED({result.attempts})", "-", "-", "-",
                result.error or "?",
            ))
    table = render_table(
        ("job", "encoding", "status", "orig B", "comp B", "ratio", "time"),
        rows,
    )
    completed = sum(1 for r in results if r.ok)
    hits = sum(1 for r in results if r.cache_hit)
    cancelled = sum(1 for r in results if r.cancelled)
    footer = (
        f"\n{completed}/{len(results)} jobs ok, {hits} cache hits, "
        f"{elapsed:.2f}s wall"
    )
    if cancelled:
        footer += f", {cancelled} cancelled by drain"
    return table + footer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-serve", description=__doc__)
    parser.add_argument("manifest", nargs="?", help="JSON job manifest")
    parser.add_argument("--suite", action="store_true",
                        help="add the full workload-suite x encodings matrix")
    parser.add_argument("--benchmarks", default=",".join(BENCHMARK_NAMES),
                        help="comma list for --suite (default: all eight)")
    parser.add_argument("--encodings", default=",".join(ENCODING_NAMES),
                        help="comma list for --suite (default: all three)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--processes", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="worker processes (0 = in-process)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries after a worker crash")
    parser.add_argument("--cache-dir",
                        default=os.environ.get("REPRO_CACHE_DIR",
                                               DEFAULT_CACHE_DIR))
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--cache-budget-mb", type=float, default=None,
                        help="evict least-recently-used artifacts over this")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip bit-level stream verification")
    parser.add_argument("--verify-level", choices=VERIFY_LEVELS, default=None,
                        help="verification depth for suite jobs: 'stream' "
                        "(default), 'none', or 'full' (invariants + "
                        "lockstep differential execution)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run the batch N times (warm passes hit cache)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the full metrics report")
    args = parser.parse_args(argv)
    _drain_requested.clear()
    _install_signal_handlers()

    try:
        jobs: list[CompressionJob] = []
        if args.manifest:
            jobs.extend(load_manifest(Path(args.manifest)))
        if args.suite or not jobs:
            if args.verify_level is not None:
                verify: bool | str = args.verify_level
            else:
                verify = not args.no_verify
            jobs.extend(suite_jobs(
                [b.strip() for b in args.benchmarks.split(",") if b.strip()],
                [e.strip() for e in args.encodings.split(",") if e.strip()],
                args.scale,
                verify=verify,
            ))

        cache = None
        if not args.no_cache:
            budget = (
                int(args.cache_budget_mb * 1024 * 1024)
                if args.cache_budget_mb else None
            )
            cache = ArtifactCache(args.cache_dir, max_disk_bytes=budget)

        registry = MetricsRegistry()
        failures = 0
        for round_number in range(1, args.repeat + 1):
            if args.repeat > 1:
                print(f"=== pass {round_number}/{args.repeat} ===")
            start = time.perf_counter()
            results = run_batch(
                jobs,
                cache=cache,
                processes=args.processes,
                timeout=args.timeout,
                retries=args.retries,
                metrics=registry,
                stop=_drain_requested.is_set,
            )
            print(summarize(results, time.perf_counter() - start))
            failures = sum(
                1 for result in results
                if not result.ok and not result.cancelled
            )
            if cache is not None:
                stats = cache.stats
                print(
                    f"cache: {stats.hits} hits / {stats.lookups} lookups "
                    f"({stats.hit_rate:.0%}), {stats.stores} stores, "
                    f"{stats.evictions} evictions, "
                    f"{stats.corruptions} corruptions, "
                    f"{cache.disk_bytes() / 1024:.0f} KiB on disk"
                )
            print()
            if _drain_requested.is_set():
                remaining = args.repeat - round_number
                if remaining:
                    print(f"drain: skipping {remaining} remaining passes")
                break
        print(registry.report() if args.metrics else _stage_summary(registry))
        if _drain_requested.is_set():
            print("repro-serve: drained gracefully (in-flight jobs "
                  "completed, queued jobs cancelled)", flush=True)
            return 0
        return 1 if failures else 0
    except ReproError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2


def _stage_summary(registry: MetricsRegistry) -> str:
    """One-line-per-stage wall-time summary (always printed).

    Each line carries the labeled latency percentiles (p50/p90/p99 over
    the timer's sample reservoir) next to the total, so tail latency is
    visible without ``--metrics``.
    """
    stages = {
        name: timer for name, timer in sorted(registry.timers().items())
        if name.startswith("stage.")
    }
    if not stages:
        return "(no per-stage timings recorded — all jobs were cache hits)"
    lines = ["per-stage wall time (total, runs, p50/p90/p99):"]
    for name, timer in stages.items():
        quantiles = timer.percentiles()
        lines.append(
            f"  {name.removeprefix('stage.'):<14s} "
            f"{timer.total_seconds:8.3f}s over {timer.count:3d} runs  "
            f"{quantiles['p50'] * 1e3:.1f}/{quantiles['p90'] * 1e3:.1f}/"
            f"{quantiles['p99'] * 1e3:.1f}ms"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    raise SystemExit(main())
