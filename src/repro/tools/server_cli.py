"""``repro-server``: the asyncio compression service front end.

Binds an HTTP/1.1 listener, accepts compile+compress job submissions,
executes them on a bounded worker executor against the sharded
artifact cache, journals every transition in the persistent job
ledger, and streams per-job progress as server-sent events.

Endpoints (see ``docs/service.md`` for schemas)::

    POST /v1/jobs               submit   (X-Repro-Tenant header)
    GET  /v1/jobs/{id}          status
    GET  /v1/jobs/{id}/events   SSE progress (span-derived stages)
    GET  /v1/jobs/{id}/artifact the .rcim blob
    GET  /v1/stats              queue/cache/latency snapshot
    GET  /metrics               Prometheus text
    GET  /healthz               liveness

Examples::

    repro-server --port 8137 --shards 8 --concurrency 4
    repro-server --port 0                       # ephemeral; port is printed
    repro-server --quota 10:20 --tenant-quota hog=1:2
    repro-server --cache-dir .repro-cache       # migrates the unsharded store

Shutdown: SIGTERM or SIGINT triggers a graceful drain — no new
submissions (503), every accepted job finishes, the ledger is
compacted and flushed — then the process exits 0.  A restarted server
re-queues any job the previous process accepted but never finished.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.errors import ReproError
from repro.server.app import ServerConfig, serve
from repro.server.quotas import parse_quota, parse_tenant_quota
from repro.service.jobs import VERIFY_LEVELS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve compile+compress jobs over HTTP with a sharded "
        "artifact cache, per-tenant quotas, and SSE progress streams.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8137,
                        help="listen port (0 = ephemeral, printed on start)")
    parser.add_argument("--cache-dir", default=".repro-server-cache",
                        help="artifact cache root (an unsharded repro-serve "
                        "cache here is migrated in place)")
    parser.add_argument("--state-dir", default=None,
                        help="job-ledger directory (default: CACHE_DIR/state)")
    parser.add_argument("--shards", type=int, default=4,
                        help="cache shard count (default %(default)s)")
    parser.add_argument("--concurrency", type=int, default=2,
                        help="concurrent job executions (default %(default)s)")
    parser.add_argument("--max-queue-depth", type=int, default=64,
                        help="pending-job cap before 429 queue_full")
    parser.add_argument("--quota", default="20:40", metavar="RATE[:BURST]",
                        help="default per-tenant token-bucket quota "
                        "(default %(default)s)")
    parser.add_argument("--tenant-quota", action="append", default=[],
                        metavar="TENANT=RATE[:BURST]",
                        help="override one tenant's quota (repeatable)")
    parser.add_argument("--cache-budget-mb", type=float, default=None,
                        help="evict least-recently-used artifacts over this")
    parser.add_argument("--verify-level", choices=VERIFY_LEVELS,
                        default="stream",
                        help="verification depth for jobs that do not set "
                        "one (default %(default)s)")
    parser.add_argument("--read-timeout", type=float, default=10.0,
                        help="per-connection request read deadline in "
                        "seconds; exceeded → 408 (default %(default)s)")
    parser.add_argument("--job-attempts", type=int, default=2,
                        help="execution attempts per job before it fails "
                        "terminally (default %(default)s)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="per-attempt wall-clock limit in seconds; a "
                        "timed-out attempt is retried (default: none)")
    parser.add_argument("--scrub-interval", type=float, default=None,
                        help="seconds between background cache integrity "
                        "scrub steps (default: scrubber off)")
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    try:
        quota = parse_quota(args.quota)
        tenant_quotas = dict(
            parse_tenant_quota(text) for text in args.tenant_quota
        )
    except ValueError as exc:
        raise ReproError(str(exc))
    return ServerConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        state_dir=args.state_dir,
        shards=args.shards,
        concurrency=args.concurrency,
        max_queue_depth=args.max_queue_depth,
        quota=quota,
        tenant_quotas=tenant_quotas,
        max_disk_bytes=(
            int(args.cache_budget_mb * 1024 * 1024)
            if args.cache_budget_mb else None
        ),
        default_verify=args.verify_level,
        read_timeout=args.read_timeout,
        job_attempts=args.job_attempts,
        job_timeout=args.job_timeout,
        scrub_interval=args.scrub_interval,
    )


def _announce(server) -> None:
    migration = server.cache.migration
    if migration.moved:
        origin = (
            "unsharded layout" if migration.from_shards is None
            else f"{migration.from_shards}-shard layout"
        )
        print(f"migrated {migration.moved} cached artifacts from {origin} "
              f"into {migration.to_shards} shards", flush=True)
    if server.resumed_jobs:
        print(f"resumed {server.resumed_jobs} interrupted jobs from the "
              f"ledger", flush=True)
    print(f"repro-server listening on {server.url} "
          f"({server.config.shards} cache shards, "
          f"concurrency {server.config.concurrency})", flush=True)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = config_from_args(args)
        server = asyncio.run(
            serve(config, ready=_announce, install_signal_handlers=True)
        )
    except ReproError as exc:
        print(f"repro-server: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-server: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0
    stats = server.stats_document()
    print(f"drained: {stats['jobs'].get('completed', 0)} completed, "
          f"{stats['jobs'].get('failed', 0)} failed, "
          f"{stats['jobs'].get('cancelled', 0)} cancelled; "
          f"ledger compacted at {server.ledger.state_path}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
