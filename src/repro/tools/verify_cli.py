"""``repro-verify``: differential verification & fault injection.

Subcommands:

* ``diff``       — lockstep differential execution of the uncompressed
  and compressed simulators over one or more programs × encodings
  (``--implementation fast`` steps both lanes through the
  translation-cache fast path instead of the reference interpreters);
* ``fastpath``   — lockstep of the fast path against the reference
  interpreter, on both engines, for every encoding, at instruction
  and trace granularity (the latter exercises superinstruction
  fusion; plan selection via ``--fusion on|off|profile``);
* ``invariants`` — static structural checks (branch boundaries, jump
  tables, dictionary ranks, escape discipline) without executing;
* ``campaign``   — seeded fault-injection campaign through
  load → decode → execute with a detection-coverage table.

Exit status: 0 when everything verified clean, 1 when a divergence,
finding, or silent divergence was reported, 2 on operational error.

Examples::

    repro-verify diff --suite --scale 0.3 --encodings baseline,nibble
    repro-verify invariants --benchmark li --encoding nibble
    repro-verify campaign --benchmark compress --seed 1997 \\
        --injections 50 --sections dictionary,jump_tables --reseal-crc
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler import compile_and_link
from repro.core import compress
from repro.core.encodings import make_encoding
from repro.errors import ReproError
from repro.verify import (
    check_compressed,
    run_campaign,
    run_differential,
    verify_fastpath,
)
from repro.verify.faults import JUMP_TABLE_SECTION, SECTIONS
from repro.workloads import BENCHMARK_NAMES, build_benchmark

ALL_SECTIONS = SECTIONS + (JUMP_TABLE_SECTION,)


def _programs(args):
    if args.suite:
        return [build_benchmark(name, args.scale) for name in BENCHMARK_NAMES]
    if args.benchmark:
        return [build_benchmark(name, args.scale) for name in args.benchmark]
    if not args.source:
        raise SystemExit("pass a source file, --benchmark, or --suite")
    text = Path(args.source).read_text()
    return [compile_and_link(text, name=Path(args.source).stem)]


def _encodings(spec: str, max_codewords: int | None):
    return [
        make_encoding(name.strip(), max_codewords)
        for name in spec.split(",")
        if name.strip()
    ]


def cmd_diff(args) -> int:
    failures = 0
    for program in _programs(args):
        for encoding in _encodings(args.encodings, args.max_codewords):
            result = run_differential(
                program,
                encoding=encoding,
                max_steps=args.max_steps,
                control_watchdog=args.control_watchdog,
                implementation=args.implementation,
            )
            print(result.render())
            if not result.ok:
                failures += 1
    if failures:
        print(f"\nrepro-verify: {failures} divergent pair(s)")
    return 1 if failures else 0


def cmd_fastpath(args) -> int:
    from repro.machine import fusion
    from repro.machine.simulator import profile_program

    failures = 0
    encodings = tuple(
        name.strip() for name in args.encodings.split(",") if name.strip()
    )
    if args.fusion == "off":
        fusion.configure(enabled=False)
    elif args.fusion == "control":
        # Isolate the control axis: no data pairs, so every divergence
        # is attributable to the fused compare+branch closures.
        fusion.configure(enabled=True, pairs=(), control_enabled=True)
    else:
        fusion.configure(enabled=True)
    for program in _programs(args):
        if args.fusion == "profile":
            # Per-program plan: the hottest adjacent pairs of *this*
            # program, not the suite-wide defaults.
            counts = profile_program(program, max_steps=args.max_steps)
            plan = fusion.plan_from_profile(program, counts)
            fusion.configure(pairs=plan or fusion.DEFAULT_PAIRS)
        elif args.fusion == "control":
            counts = profile_program(program, max_steps=args.max_steps)
            plan = fusion.control_plan_from_profile(program, counts)
            fusion.configure(
                control_pairs=plan or fusion.DEFAULT_CONTROL_PAIRS
            )
        for result in verify_fastpath(
            program, encodings=encodings, max_steps=args.max_steps
        ):
            print(result.render())
            if not result.ok:
                failures += 1
    if args.fusion != "off":
        stats = fusion.fusion_stats()
        print(
            f"fusion: {stats['compiled']} fused thunk(s) compiled over "
            f"{len(stats['pairs'])} planned pair(s)"
        )
        if stats["control_enabled"]:
            print(
                f"control fusion: {stats['compare_feeds']} compare feed(s) "
                f"compiled over {len(stats['control_pairs'])} control pair(s)"
            )
    if failures:
        print(f"\nrepro-verify: {failures} fast-path divergence(s)")
    return 1 if failures else 0


def cmd_invariants(args) -> int:
    failures = 0
    for program in _programs(args):
        for encoding in _encodings(args.encodings, args.max_codewords):
            compressed = compress(program, encoding)
            report = check_compressed(compressed)
            print(f"[{encoding.name}] {report.render()}")
            if not report.ok:
                failures += 1
    return 1 if failures else 0


def cmd_campaign(args) -> int:
    sections = tuple(s.strip() for s in args.sections.split(",") if s.strip())
    failures = 0
    for program in _programs(args):
        for encoding in _encodings(args.encodings, args.max_codewords):
            report = run_campaign(
                program,
                encoding,
                seed=args.seed,
                injections=args.injections,
                sections=sections,
                reseal_crc=args.reseal_crc,
                max_steps=args.max_steps,
            )
            print(report.render())
            print()
            if not report.ok:
                failures += 1
    if failures:
        print(f"repro-verify: {failures} campaign(s) with silent divergences")
    return 1 if failures else 0


def _add_common_options(parser, *, default_encodings: str) -> None:
    parser.add_argument("source", nargs="?", help="MiniC source file")
    parser.add_argument("--benchmark", action="append",
                        choices=BENCHMARK_NAMES,
                        help="verify a synthetic benchmark (repeatable)")
    parser.add_argument("--suite", action="store_true",
                        help="verify every suite benchmark")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--encodings", default=default_encodings,
                        help="comma-separated encoding names")
    parser.add_argument("--max-codewords", type=int, default=None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-verify", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser(
        "diff", help="lockstep differential execution"
    )
    _add_common_options(diff, default_encodings="baseline,nibble")
    diff.add_argument("--max-steps", type=int, default=10_000_000)
    diff.add_argument("--control-watchdog", type=int, default=64,
                      help="max free-running control steps per commit")
    diff.add_argument("--implementation", choices=("reference", "fast"),
                      default="reference",
                      help="engine implementation stepping both lanes")
    diff.set_defaults(func=cmd_diff)

    fastpath = sub.add_parser(
        "fastpath", help="fast path vs reference interpreter lockstep"
    )
    _add_common_options(fastpath, default_encodings="baseline,nibble,onebyte")
    fastpath.add_argument("--max-steps", type=int, default=1_000_000)
    fastpath.add_argument("--fusion",
                          choices=("on", "off", "profile", "control"),
                          default="on",
                          help="superinstruction fusion during the trace "
                          "lockstep: suite-wide plan (on), disabled (off), "
                          "a per-program profile-mined plan (profile), or "
                          "control fusion alone with a profile-mined "
                          "cmp+branch plan and data pairs off (control)")
    fastpath.set_defaults(func=cmd_fastpath)

    invariants = sub.add_parser(
        "invariants", help="static structural checks"
    )
    _add_common_options(invariants, default_encodings="baseline,nibble")
    invariants.set_defaults(func=cmd_invariants)

    campaign = sub.add_parser(
        "campaign", help="seeded fault-injection campaign"
    )
    _add_common_options(campaign, default_encodings="nibble")
    campaign.add_argument("--seed", type=int, default=1997)
    campaign.add_argument("--injections", type=int, default=50)
    campaign.add_argument("--sections", default=",".join(ALL_SECTIONS),
                          help="comma-separated sections to target "
                          f"(from {', '.join(ALL_SECTIONS)})")
    campaign.add_argument("--reseal-crc", action="store_true",
                          help="recompute the container CRC after "
                          "corruption (models pre-seal logic bugs)")
    campaign.add_argument("--max-steps", type=int, default=2_000_000)
    campaign.set_defaults(func=cmd_campaign)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro-verify: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-verify: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
