"""Differential verification & fault injection for compressed programs.

Three pillars (see ``docs/verification.md``):

* :mod:`repro.verify.differential` — lockstep execution of the
  uncompressed and compressed simulators, comparing architectural state
  at every committed instruction.
* :mod:`repro.verify.invariants` — static structural checks over a
  compressed program or standalone image, each violation a typed
  finding.
* :mod:`repro.verify.faults` / :mod:`repro.verify.campaign` — seeded
  fault injection through load → decode → execute, with a
  detection-coverage report.
* :mod:`repro.verify.fastpath` — lockstep equivalence of the
  predecoded translation-cache engines against the reference
  interpreters, per instruction, with no address-map forgiveness.
"""

from repro.verify.campaign import (
    OUTCOMES,
    CampaignReport,
    InjectionOutcome,
    classify_injection,
    run_campaign,
)
from repro.verify.differential import (
    DifferentialResult,
    DivergenceReport,
    run_differential,
)
from repro.verify.fastpath import (
    lockstep_compressed_traces,
    lockstep_program_traces,
    FastpathDivergence,
    FastpathResult,
    lockstep_compressed,
    lockstep_program,
    verify_fastpath,
)
from repro.verify.faults import (
    FAULT_KINDS,
    SECTIONS,
    FaultSpec,
    apply_fault,
    generate_faults,
    reseal_crc,
    section_ranges,
)
from repro.verify.invariants import (
    RULES,
    Finding,
    InvariantReport,
    check_compressed,
    check_image,
)

__all__ = [
    "OUTCOMES",
    "FAULT_KINDS",
    "RULES",
    "SECTIONS",
    "CampaignReport",
    "DifferentialResult",
    "DivergenceReport",
    "FastpathDivergence",
    "FastpathResult",
    "FaultSpec",
    "Finding",
    "InjectionOutcome",
    "InvariantReport",
    "apply_fault",
    "check_compressed",
    "check_image",
    "classify_injection",
    "generate_faults",
    "lockstep_compressed",
    "lockstep_compressed_traces",
    "lockstep_program",
    "lockstep_program_traces",
    "reseal_crc",
    "run_campaign",
    "run_differential",
    "section_ranges",
    "verify_fastpath",
]
