"""Fault-injection campaigns over the load → decode → execute path.

Each injection corrupts one serialized image blob (see
:mod:`repro.verify.faults`), pushes it through the full consumer
pipeline, and classifies where — if anywhere — the corruption was
caught:

``detected-at-load``
    :meth:`CompressedImage.from_bytes` rejected the blob (bad magic,
    truncated field, CRC mismatch, unknown encoding, over-capacity
    dictionary).
``detected-at-decode``
    The image parsed but the stream decoder or simulator constructor
    refused it (corrupt codeword, dangling rank, entry off-boundary).
``detected-at-run``
    Decode succeeded but execution died with a typed error (branch into
    an encoded item, bad syscall, watchdog).
``silent-divergence``
    The corrupted image ran to completion but produced different
    output, exit code, or stores than the pristine program — the
    dangerous quadrant a verification subsystem exists to measure.
``silent-identical``
    The corruption was behaviourally inert (flipped a bit in padding,
    zeroed an already-zero byte, duplicated unreachable bytes).

By default the container CRC is left as-is, so flash-style corruption
is expected to land in ``detected-at-load``.  With ``reseal_crc=True``
the CRC is recomputed over the corrupted payload, modelling a
compressor logic bug and exercising the decode- and run-time detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observe
from repro.core.compressor import compress
from repro.core.encodings import Encoding
from repro.core.image import CompressedImage, ImageError
from repro.errors import ReproError, SimulationError
from repro.experiments.common import render_table
from repro.linker.program import Program
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import run_program
from repro.verify import faults as faultlib
from repro.verify.faults import FaultSpec

# The image-level outcome taxonomy lives in repro.verify.outcomes,
# shared with the service-level chaos campaigns; re-exported here under
# the historical names.
from repro.verify.outcomes import (  # noqa: E402  (re-export)
    DETECTED_IMAGE_OUTCOMES as DETECTED_OUTCOMES,
    IMAGE_OUTCOMES as OUTCOMES,
)


@dataclass(frozen=True)
class InjectionOutcome:
    """One fault, where it was (or wasn't) detected."""

    spec: FaultSpec
    outcome: str
    detail: str

    def render(self) -> str:
        return f"{self.outcome:<20} {self.spec.describe()}: {self.detail}"


@dataclass
class CampaignReport:
    """Aggregate results of one seeded campaign."""

    name: str
    encoding: str
    seed: int
    reseal_crc: bool
    outcomes: list[InjectionOutcome] = field(default_factory=list)

    @property
    def injections(self) -> int:
        return len(self.outcomes)

    @property
    def silent_divergences(self) -> list[InjectionOutcome]:
        return [o for o in self.outcomes if o.outcome == "silent-divergence"]

    @property
    def ok(self) -> bool:
        return not self.silent_divergences

    def count(self, outcome: str) -> int:
        return sum(1 for o in self.outcomes if o.outcome == outcome)

    def detection_rate(self) -> float:
        """Fraction of behaviour-affecting faults that were detected.

        ``silent-identical`` faults are excluded from the denominator:
        a corruption nothing can observe is not a detection failure.
        """
        relevant = [
            o for o in self.outcomes if o.outcome != "silent-identical"
        ]
        if not relevant:
            return 1.0
        detected = sum(
            1 for o in relevant if o.outcome in DETECTED_OUTCOMES
        )
        return detected / len(relevant)

    def by_section(self) -> dict[str, dict[str, int]]:
        table: dict[str, dict[str, int]] = {}
        for o in self.outcomes:
            row = table.setdefault(
                o.spec.section, {outcome: 0 for outcome in OUTCOMES}
            )
            row[o.outcome] += 1
        return table

    def render(self) -> str:
        crc = "resealed" if self.reseal_crc else "intact"
        rows = [
            [section] + [counts[outcome] for outcome in OUTCOMES]
            for section, counts in sorted(self.by_section().items())
        ]
        lines = [
            render_table(
                ["section", *OUTCOMES],
                rows,
                title=(
                    f"{self.name} [{self.encoding}] — {self.injections} "
                    f"injections, seed {self.seed}, CRC {crc}"
                ),
            ),
            f"detection rate: {self.detection_rate():.1%}"
            f" ({len(self.silent_divergences)} silent divergence(s))",
        ]
        for o in self.silent_divergences:
            lines.append(f"  SILENT {o.spec.describe()}: {o.detail}")
        return "\n".join(lines)


def classify_injection(
    blob: bytes,
    spec: FaultSpec,
    reference,
    *,
    reseal_crc: bool = False,
    max_steps: int = 2_000_000,
) -> InjectionOutcome:
    """Corrupt ``blob`` per ``spec``, run it, and classify the outcome.

    ``reference`` is the pristine program's :class:`RunResult`; the
    corrupted run is compared against its output and exit code.
    """
    corrupted = faultlib.apply_fault(blob, spec)
    if reseal_crc:
        corrupted = faultlib.reseal_crc(corrupted)
    try:
        image = CompressedImage.from_bytes(corrupted)
    except ImageError as exc:
        return InjectionOutcome(spec, "detected-at-load", str(exc))
    try:
        simulator = CompressedSimulator.from_image(image, max_steps=max_steps)
    except ReproError as exc:
        return InjectionOutcome(spec, "detected-at-decode", str(exc))
    try:
        result = simulator.run()
    except SimulationError as exc:
        return InjectionOutcome(spec, "detected-at-run", str(exc))
    except ReproError as exc:  # e.g. executor-level decode failures
        return InjectionOutcome(spec, "detected-at-run", str(exc))
    if (
        result.exit_code == reference.exit_code
        and result.state.output == reference.state.output
    ):
        return InjectionOutcome(
            spec, "silent-identical", "run matches pristine behaviour"
        )
    detail = (
        f"exit {result.exit_code} vs {reference.exit_code}, "
        f"{len(result.state.output)} output item(s) vs "
        f"{len(reference.state.output)}"
    )
    return InjectionOutcome(spec, "silent-divergence", detail)


def run_campaign(
    program: Program,
    encoding: Encoding,
    *,
    seed: int,
    injections: int,
    sections: tuple[str, ...] = faultlib.SECTIONS,
    reseal_crc: bool = False,
    max_steps: int = 2_000_000,
) -> CampaignReport:
    """Compress ``program``, then run a seeded fault campaign on it."""
    with observe.span(
        "verify.campaign",
        program=program.name,
        encoding=encoding.name,
        seed=seed,
        injections=injections,
        reseal_crc=reseal_crc,
    ):
        compressed = compress(program, encoding)
        image = CompressedImage.from_compressed(compressed)
        blob = image.to_bytes()
        reference = run_program(program, max_steps=max_steps)
        specs = faultlib.generate_faults(
            image,
            seed=seed,
            count=injections,
            sections=sections,
            jump_table_slots=list(program.jump_table_slots),
        )
        report = CampaignReport(
            name=program.name,
            encoding=encoding.name,
            seed=seed,
            reseal_crc=reseal_crc,
        )
        for spec in specs:
            with observe.span(
                "verify.injection", section=spec.section, offset=spec.offset
            ):
                outcome = classify_injection(
                    blob, spec, reference,
                    reseal_crc=reseal_crc, max_steps=max_steps,
                )
            report.outcomes.append(outcome)
        return report
