"""Lockstep differential execution of original vs. compressed programs.

The paper's correctness claim is total: a compressed program must be
*semantically identical* to the original (sections 3.2–3.3).  This
module proves it one committed instruction at a time, running
:class:`~repro.machine.simulator.Simulator` and
:class:`~repro.machine.compressed_sim.CompressedSimulator` side by side
and comparing architectural state — registers, condition register,
counter, link register, memory writes, and syscall output — after every
committed instruction.

Two representation differences are *expected* and handled, not papered
over:

* **Code addresses live in different spaces.**  The uncompressed
  machine keeps byte addresses in LR/CTR/jump-table slots; the
  compressed machine keeps ``text_base + unit_address``.  Register and
  store values are therefore compared *modulo the address map*: a
  mismatch is forgiven exactly when the original value is a text
  address and the compressed value is its image under
  ``index_to_unit``.
* **Branch relaxation rewrites control flow.**  An out-of-range
  conditional branch becomes an inverted branch over an unconditional
  ``b``, so the two instruction streams interleave *different control
  instructions* around an identical sequence of data instructions and
  syscalls.  The lockstep therefore commits (and compares) at data
  instructions and ``sc``, letting each side run through its own
  control instructions under a bounded watchdog.

On first divergence a structured :class:`DivergenceReport` is produced
that maps the compressed position back to the original address, names
the dictionary entry/codeword rank involved, and dumps the last N
instructions committed on both sides.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro import observe
from repro.core.compressor import CompressedProgram, compress
from repro.core.encodings import Encoding
from repro.errors import SimulationError
from repro.isa.disassembler import format_instruction
from repro.isa.instruction import Instruction
from repro.linker.program import Program
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.executor import CONTROL_MNEMONICS
from repro.machine.simulator import HALT_ADDRESS, Simulator

# How many control instructions either side may execute between two
# committed data instructions before the lockstep declares a runaway.
DEFAULT_CONTROL_WATCHDOG = 64


class _AddressMap:
    """Equality-modulo-compression for code-address values."""

    def __init__(self, compressed: CompressedProgram) -> None:
        program = compressed.program
        self.text_base = program.text_base
        self.text_size = program.text_size
        self.index_to_unit = compressed.index_to_unit
        self.mapped_compares = 0

    def equal(self, orig_value: int, comp_value: int) -> bool:
        if orig_value == comp_value:
            return True
        offset = orig_value - self.text_base
        if offset % 4 or not 0 <= offset < self.text_size:
            return False
        unit = self.index_to_unit.get(offset // 4)
        if unit is None or comp_value != self.text_base + unit:
            return False
        self.mapped_compares += 1
        return True


@dataclass
class DivergenceReport:
    """Structured description of the first observed divergence."""

    kind: str  # instruction | register | cr | ctr | lr | memory | output
    #          # | halt | exit | exception | watchdog
    detail: str
    step: int  # committed instructions successfully compared
    orig_location: str | None = None
    orig_pc: int | None = None  # compressed position mapped back
    unit_address: int | None = None
    micro: int | None = None
    rank: int | None = None  # dictionary rank if inside an expansion
    entry: str | None = None  # disassembled dictionary entry
    orig_tail: list[str] = field(default_factory=list)
    comp_tail: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"DIVERGENCE[{self.kind}] after {self.step} committed "
                 f"instructions: {self.detail}"]
        place = []
        if self.orig_location is not None:
            place.append(f"original at {self.orig_location}")
        if self.unit_address is not None:
            micro = f".{self.micro}" if self.micro else ""
            place.append(f"compressed at unit {self.unit_address}{micro}")
        if self.orig_pc is not None:
            place.append(f"(maps to orig PC {self.orig_pc:#x})")
        if place:
            lines.append("  " + " ".join(place))
        if self.rank is not None:
            lines.append(f"  inside dictionary entry #{self.rank}: {self.entry}")
        if self.orig_tail:
            lines.append("  last original instructions:")
            lines.extend(f"    {entry}" for entry in self.orig_tail)
        if self.comp_tail:
            lines.append("  last compressed instructions:")
            lines.extend(f"    {entry}" for entry in self.comp_tail)
        return "\n".join(lines)


@dataclass
class DifferentialResult:
    """Outcome of one lockstep run."""

    name: str
    encoding: str
    instructions_compared: int
    mapped_address_compares: int
    divergence: DivergenceReport | None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        if self.ok:
            return (
                f"{self.name}/{self.encoding}: OK — "
                f"{self.instructions_compared} instructions compared "
                f"({self.mapped_address_compares} address-mapped values)"
            )
        return f"{self.name}/{self.encoding}:\n{self.divergence.render()}"


# ----------------------------------------------------------------------
# Lane adapters: one stepping interface over both fetch engines.
# ----------------------------------------------------------------------
class _Lane:
    def __init__(self, tail_length: int) -> None:
        self.tail: deque[str] = deque(maxlen=tail_length)
        self.stores: list[tuple[int, int, int]] = []
        self.output_cursor = 0

    def _hook_memory(self, memory) -> None:
        inner = memory.store

        def store(address: int, size: int, value: int) -> None:
            self.stores.append((address, size, value))
            inner(address, size, value)

        memory.store = store

    def commit(self, watchdog: int) -> Instruction | None:
        """Run to the next committed (data or ``sc``) instruction.

        Returns the committed instruction, or None once halted.  Raises
        SimulationError from the underlying engine, or on a control-flow
        runaway (more than ``watchdog`` consecutive control transfers).
        """
        control_run = 0
        while True:
            if self.halted():
                return None
            ins = self.peek()
            self.step()
            self.tail.append(f"{self.location()}  {format_instruction(ins)}")
            if ins.mnemonic not in CONTROL_MNEMONICS or ins.mnemonic == "sc":
                return ins
            control_run += 1
            if control_run > watchdog:
                raise SimulationError(
                    f"{control_run} consecutive control transfers without "
                    "committing an instruction"
                )

    # Implemented per engine:
    def peek(self) -> Instruction:
        raise NotImplementedError

    def step(self) -> None:
        raise NotImplementedError

    def halted(self) -> bool:
        raise NotImplementedError

    def location(self) -> str:
        raise NotImplementedError


class _OriginalLane(_Lane):
    def __init__(
        self,
        program: Program,
        tail_length: int,
        implementation: str = "reference",
    ) -> None:
        super().__init__(tail_length)
        self.sim = Simulator(program, implementation=implementation)
        self._step = (
            self.sim.step_fast if implementation == "fast" else self.sim.step
        )
        self._hook_memory(self.sim.memory)

    def peek(self) -> Instruction:
        sim = self.sim
        if not 0 <= sim.pc < len(sim.program.text):
            raise SimulationError(
                f"PC index {sim.pc} out of .text", step=sim.state.steps
            )
        return sim.program.text[sim.pc].instruction

    def step(self) -> None:
        self._step()

    def halted(self) -> bool:
        return self.sim.state.halted

    def location(self) -> str:
        return f"{self.sim.program.address_of(self.sim.pc):#08x}"


class _CompressedLane(_Lane):
    def __init__(
        self,
        compressed: CompressedProgram,
        tail_length: int,
        implementation: str = "reference",
    ) -> None:
        super().__init__(tail_length)
        self.sim = CompressedSimulator(compressed, implementation=implementation)
        self._step = (
            self.sim.step_fast if implementation == "fast" else self.sim.step
        )
        self._hook_memory(self.sim.memory)

    def peek(self) -> Instruction:
        return self.sim._item().instructions[self.sim.micro]

    def step(self) -> None:
        self._step()

    def halted(self) -> bool:
        return self.sim.state.halted

    def location(self) -> str:
        item = self.sim._item()
        tag = f"cw#{item.rank}" if item.is_codeword else "esc"
        return f"unit {item.address}.{self.sim.micro} ({tag})"


# ----------------------------------------------------------------------
# The lockstep driver.
# ----------------------------------------------------------------------
class DifferentialRunner:
    """Runs one program through both engines, comparing as it goes."""

    def __init__(
        self,
        program: Program,
        compressed: CompressedProgram,
        *,
        max_steps: int = 10_000_000,
        tail_length: int = 8,
        control_watchdog: int = DEFAULT_CONTROL_WATCHDOG,
        implementation: str = "reference",
    ) -> None:
        self.program = program
        self.compressed = compressed
        self.max_steps = max_steps
        self.control_watchdog = control_watchdog
        self.address_map = _AddressMap(compressed)
        self.original = _OriginalLane(program, tail_length, implementation)
        self.mirror = _CompressedLane(compressed, tail_length, implementation)
        self.committed = 0

    # -- reporting ------------------------------------------------------
    def _report(self, kind: str, detail: str) -> DivergenceReport:
        comp_sim = self.mirror.sim
        item = comp_sim._item()
        entry = None
        if item.is_codeword:
            entry = "; ".join(format_instruction(i) for i in item.instructions)
        return DivergenceReport(
            kind=kind,
            detail=detail,
            step=self.committed,
            orig_location=self.original.location(),
            orig_pc=comp_sim.origin_pc(),
            unit_address=item.address,
            micro=comp_sim.micro,
            rank=item.rank,
            entry=entry,
            orig_tail=list(self.original.tail),
            comp_tail=list(self.mirror.tail),
        )

    # -- state comparison ----------------------------------------------
    def _compare_state(self) -> DivergenceReport | None:
        ostate = self.original.sim.state
        cstate = self.mirror.sim.state
        equal = self.address_map.equal
        for register in range(32):
            if not equal(ostate.gpr[register], cstate.gpr[register]):
                return self._report(
                    "register",
                    f"r{register}: original {ostate.gpr[register]:#x}, "
                    f"compressed {cstate.gpr[register]:#x}",
                )
        if ostate.cr != cstate.cr:
            return self._report(
                "cr", f"CR: original {ostate.cr:#010x}, "
                      f"compressed {cstate.cr:#010x}"
            )
        if not equal(ostate.ctr, cstate.ctr):
            return self._report(
                "ctr", f"CTR: original {ostate.ctr:#x}, "
                       f"compressed {cstate.ctr:#x}"
            )
        if ostate.lr != HALT_ADDRESS or cstate.lr != HALT_ADDRESS:
            if not equal(ostate.lr, cstate.lr):
                return self._report(
                    "lr", f"LR: original {ostate.lr:#x}, "
                          f"compressed {cstate.lr:#x}"
                )
        return self._compare_stores() or self._compare_output()

    def _compare_stores(self) -> DivergenceReport | None:
        orig, comp = self.original.stores, self.mirror.stores
        if len(orig) != len(comp):
            return self._report(
                "memory",
                f"store count differs: original {len(orig)}, "
                f"compressed {len(comp)}",
            )
        for (oa, osz, ov), (ca, csz, cv) in zip(orig, comp):
            if oa != ca or osz != csz or not self.address_map.equal(ov, cv):
                return self._report(
                    "memory",
                    f"store mismatch: original *{oa:#x}<-{ov:#x} ({osz}B), "
                    f"compressed *{ca:#x}<-{cv:#x} ({csz}B)",
                )
        orig.clear()
        comp.clear()
        return None

    def _compare_output(self) -> DivergenceReport | None:
        oout = self.original.sim.state.output
        cout = self.mirror.sim.state.output
        cursor = self.original.output_cursor
        if len(oout) != len(cout) or oout[cursor:] != cout[cursor:]:
            return self._report(
                "output",
                f"syscall output differs: original {oout[cursor:]!r}, "
                f"compressed {cout[cursor:]!r}",
            )
        self.original.output_cursor = len(oout)
        return None

    # -- the run --------------------------------------------------------
    def run(self) -> DifferentialResult:
        divergence = self._run_lockstep()
        return DifferentialResult(
            name=self.program.name,
            encoding=self.compressed.encoding.name,
            instructions_compared=self.committed,
            mapped_address_compares=self.address_map.mapped_compares,
            divergence=divergence,
        )

    def _run_lockstep(self) -> DivergenceReport | None:
        while True:
            if self.committed >= self.max_steps:
                return self._report(
                    "watchdog",
                    f"exceeded {self.max_steps} committed instructions "
                    "without halting",
                )
            try:
                orig_ins = self.original.commit(self.control_watchdog)
            except SimulationError as exc:
                return self._report(
                    "exception", f"original engine raised: {exc}"
                )
            try:
                comp_ins = self.mirror.commit(self.control_watchdog)
            except SimulationError as exc:
                return self._report(
                    "exception", f"compressed engine raised: {exc}"
                )
            if (orig_ins is None) != (comp_ins is None):
                side = "original" if orig_ins is None else "compressed"
                return self._report(
                    "halt", f"only the {side} engine halted"
                )
            if orig_ins is None:
                return self._final_check()
            if orig_ins.encode() != comp_ins.encode():
                return self._report(
                    "instruction",
                    f"committed different instructions: original "
                    f"{format_instruction(orig_ins)}, compressed "
                    f"{format_instruction(comp_ins)}",
                )
            report = self._compare_state()
            if report is not None:
                return report
            self.committed += 1

    def _final_check(self) -> DivergenceReport | None:
        ostate = self.original.sim.state
        cstate = self.mirror.sim.state
        if ostate.exit_code != cstate.exit_code:
            return self._report(
                "exit",
                f"exit codes differ: original {ostate.exit_code}, "
                f"compressed {cstate.exit_code}",
            )
        if ostate.output != cstate.output:
            return self._report(
                "output",
                "final syscall output differs "
                f"({len(ostate.output)} vs {len(cstate.output)} events)",
            )
        return self._compare_stores()


def run_differential(
    program: Program,
    compressed: CompressedProgram | None = None,
    *,
    encoding: Encoding | None = None,
    max_steps: int = 10_000_000,
    tail_length: int = 8,
    control_watchdog: int = DEFAULT_CONTROL_WATCHDOG,
    implementation: str = "reference",
) -> DifferentialResult:
    """Differentially verify ``program`` against its compressed form.

    Pass an existing ``compressed`` result, or an ``encoding`` to
    compress with (default: the compressor's baseline encoding).
    ``implementation`` selects the stepping engine for *both* lanes, so
    the compression-correctness lockstep can also be driven through the
    predecoded fast path.
    """
    if compressed is None:
        compressed = compress(program, encoding)
    with observe.span(
        "verify.differential",
        program=program.name,
        encoding=compressed.encoding.name,
        implementation=implementation,
    ):
        return DifferentialRunner(
            program,
            compressed,
            max_steps=max_steps,
            tail_length=tail_length,
            control_watchdog=control_watchdog,
            implementation=implementation,
        ).run()
