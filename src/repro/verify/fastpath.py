"""Lockstep equivalence of the predecoded fast path vs the reference.

:mod:`repro.verify.differential` proves *compression* correctness —
original vs compressed program, stepped by one engine implementation.
This module proves *engine* correctness: the same image stepped by the
translation-cache fast path (:mod:`repro.machine.fastpath`) and by the
reference interpreter must agree on the full architectural state after
**every** instruction, not just at halt.  Unlike the differential
lockstep, nothing here is compared modulo an address map: the two
implementations run the same fetch engine, so every register, CR bit,
LR/CTR value, memory store, output event, step count, and program
counter must match exactly — and so must any raised error.

Together with ``run_differential(..., implementation="fast")`` this
closes the triangle: fast==reference per engine (here), and
original==compressed across engines (differential) under either
implementation.

Two lockstep granularities run per engine.  The *instruction* lockstep
(:func:`lockstep_program` / :func:`lockstep_compressed`) compares after
every single instruction but steps the fast path through its
single-step entry points, which dispatch per-instruction thunks — it
can never execute a superinstruction.  The *trace* lockstep
(:func:`lockstep_program_traces` / :func:`lockstep_compressed_traces`)
executes whole traces through the exact bodies the fast run loops use
— fused thunks included — and the reference interpreter catches up by
``state.steps`` before every boundary comparison, so fusion is audited
against the reference with the same zero-forgiveness contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compressor import CompressedProgram, compress
from repro.core.encodings import make_encoding
from repro.errors import ReproError, SimulationError
from repro.linker.program import Program
from repro.machine import fastpath
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import Simulator

DEFAULT_ENCODINGS = ("baseline", "nibble", "onebyte")


@dataclass(frozen=True)
class FastpathDivergence:
    """First observed disagreement between the two implementations."""

    kind: str  # pc | register | cr | lr | ctr | steps | memory | output
    #          # | halt | exit | exception
    detail: str
    step: int  # instructions executed in lockstep before the divergence

    def render(self) -> str:
        return (
            f"FASTPATH-DIVERGENCE[{self.kind}] after {self.step} "
            f"instructions: {self.detail}"
        )


@dataclass
class FastpathResult:
    """Outcome of one fast-vs-reference lockstep run."""

    name: str
    engine: str  # "simulator" or "compressed/<encoding>"
    instructions_compared: int
    divergence: FastpathDivergence | None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        if self.ok:
            return (
                f"{self.name}/{self.engine}: OK — "
                f"{self.instructions_compared} instructions in lockstep"
            )
        return f"{self.name}/{self.engine}:\n{self.divergence.render()}"


class _StoreLog:
    """Record memory stores without disturbing them."""

    def __init__(self, memory) -> None:
        self.events: list[tuple[int, int, int]] = []
        inner = memory.store

        def store(address: int, size: int, value: int) -> None:
            self.events.append((address, size, value))
            inner(address, size, value)

        memory.store = store


def _compare_states(fast, reference, position_of) -> tuple[str, str] | None:
    """(kind, detail) for the first state mismatch, or None."""
    fs, rs = fast.state, reference.state
    if position_of(fast) != position_of(reference):
        return (
            "pc",
            f"fast at {position_of(fast)}, reference at "
            f"{position_of(reference)}",
        )
    if fs.steps != rs.steps:
        return ("steps", f"fast {fs.steps}, reference {rs.steps}")
    if fs.gpr != rs.gpr:
        register = next(i for i in range(32) if fs.gpr[i] != rs.gpr[i])
        return (
            "register",
            f"r{register}: fast {fs.gpr[register]:#x}, "
            f"reference {rs.gpr[register]:#x}",
        )
    if fs.cr != rs.cr:
        return ("cr", f"fast {fs.cr:#010x}, reference {rs.cr:#010x}")
    if fs.lr != rs.lr:
        return ("lr", f"fast {fs.lr:#x}, reference {rs.lr:#x}")
    if fs.ctr != rs.ctr:
        return ("ctr", f"fast {fs.ctr:#x}, reference {rs.ctr:#x}")
    if fs.halted != rs.halted:
        return ("halt", f"fast halted={fs.halted}, reference={rs.halted}")
    if fs.exit_code != rs.exit_code:
        return ("exit", f"fast {fs.exit_code}, reference {rs.exit_code}")
    if fs.output != rs.output:
        return (
            "output",
            f"fast tail {fs.output[-3:]!r}, reference tail {rs.output[-3:]!r}",
        )
    return None


def _same_error(fast_error, ref_error) -> bool:
    """Zero-forgiveness error equality: type, message, AND location.

    ``SimulationError`` embeds its structured location in the message,
    but the fields are compared explicitly anyway — a fused control
    closure that mis-stepped a fault would otherwise only be caught if
    the formatting happened to differ.
    """
    if fast_error is None or ref_error is None:
        return False
    if type(fast_error) is not type(ref_error):
        return False
    if str(fast_error) != str(ref_error):
        return False
    if isinstance(fast_error, SimulationError):
        return (
            fast_error.unit_address == ref_error.unit_address
            and fast_error.orig_pc == ref_error.orig_pc
            and fast_error.step == ref_error.step
        )
    return True


def _error_divergence(fast_error, ref_error, executed) -> FastpathDivergence:
    def describe(error):
        if error is None:
            return "None"
        if isinstance(error, SimulationError):
            return (
                f"{error!r} (unit_address={error.unit_address}, "
                f"orig_pc={error.orig_pc}, step={error.step})"
            )
        return repr(error)

    return FastpathDivergence(
        kind="exception",
        detail=(
            f"fast raised {describe(fast_error)}, "
            f"reference raised {describe(ref_error)}"
        ),
        step=executed,
    )


def _lockstep(name, engine, fast, reference, step_fast, step_ref,
              position_of, max_steps) -> FastpathResult:
    fast_stores = _StoreLog(fast.memory)
    ref_stores = _StoreLog(reference.memory)
    executed = 0

    def result(divergence):
        return FastpathResult(
            name=name,
            engine=engine,
            instructions_compared=executed,
            divergence=divergence,
        )

    while executed < max_steps:
        if fast.state.halted and reference.state.halted:
            return result(None)
        fast_error = ref_error = None
        try:
            step_fast()
        except ReproError as exc:
            fast_error = exc
        try:
            step_ref()
        except ReproError as exc:
            ref_error = exc
        if fast_error is not None or ref_error is not None:
            if _same_error(fast_error, ref_error):
                return result(None)
            return result(_error_divergence(fast_error, ref_error, executed))
        executed += 1
        mismatch = _compare_states(fast, reference, position_of)
        if mismatch is None and fast_stores.events != ref_stores.events:
            mismatch = (
                "memory",
                f"fast stores {fast_stores.events[-3:]!r}, "
                f"reference {ref_stores.events[-3:]!r}",
            )
        if mismatch is not None:
            kind, detail = mismatch
            return result(FastpathDivergence(kind, detail, executed))
        fast_stores.events.clear()
        ref_stores.events.clear()
    return result(
        FastpathDivergence(
            kind="watchdog",
            detail=f"no halt within {max_steps} lockstep instructions",
            step=executed,
        )
    )


def _lockstep_traces(name, engine, fast, reference, step_trace, step_ref,
                     position_of, max_steps) -> FastpathResult:
    """Whole-trace fast execution vs instruction-stepped reference.

    The fast side advances one trace at a time; the reference side then
    single-steps until its ``state.steps`` reaches the fast side's, so
    states are compared at every trace boundary.  An error raised
    mid-trace leaves the fast step counter at the faulting instruction;
    the reference is stepped once more and must raise the identical
    error (same type, same message).
    """
    fast_stores = _StoreLog(fast.memory)
    ref_stores = _StoreLog(reference.memory)
    executed = 0

    def result(divergence):
        return FastpathResult(
            name=name,
            engine=engine,
            instructions_compared=executed,
            divergence=divergence,
        )

    while executed < max_steps:
        if fast.state.halted and reference.state.halted:
            return result(None)
        fast_error = ref_error = None
        try:
            step_trace()
        except ReproError as exc:
            fast_error = exc
        while (
            reference.state.steps < fast.state.steps
            and not reference.state.halted
            and ref_error is None
        ):
            try:
                step_ref()
                executed += 1
            except ReproError as exc:
                ref_error = exc
        if fast_error is not None and ref_error is None:
            # The faulting instruction never advanced ``steps`` (memory
            # errors raise before the increment; control errors raise
            # in the transfer) — the reference raises on its next step.
            try:
                step_ref()
            except ReproError as exc:
                ref_error = exc
        if fast_error is not None or ref_error is not None:
            if _same_error(fast_error, ref_error):
                return result(None)
            return result(_error_divergence(fast_error, ref_error, executed))
        mismatch = _compare_states(fast, reference, position_of)
        if mismatch is None and fast_stores.events != ref_stores.events:
            mismatch = (
                "memory",
                f"fast stores {fast_stores.events[-3:]!r}, "
                f"reference {ref_stores.events[-3:]!r}",
            )
        if mismatch is not None:
            kind, detail = mismatch
            return result(FastpathDivergence(kind, detail, executed))
        fast_stores.events.clear()
        ref_stores.events.clear()
    return result(
        FastpathDivergence(
            kind="watchdog",
            detail=f"no halt within {max_steps} lockstep instructions",
            step=executed,
        )
    )


def lockstep_program(
    program: Program, *, max_steps: int = 1_000_000
) -> FastpathResult:
    """Step the uncompressed simulator fast-vs-reference in lockstep."""
    fast = Simulator(program, implementation="fast")
    reference = Simulator(program, implementation="reference")
    return _lockstep(
        program.name,
        "simulator",
        fast,
        reference,
        fast.step_fast,
        reference.step,
        lambda sim: sim.pc,
        max_steps,
    )


def lockstep_compressed(
    compressed: CompressedProgram, *, max_steps: int = 1_000_000
) -> FastpathResult:
    """Step the compressed simulator fast-vs-reference in lockstep."""
    fast = CompressedSimulator(compressed, implementation="fast")
    reference = CompressedSimulator(compressed, implementation="reference")
    result = _lockstep(
        fast.name,
        f"compressed/{compressed.encoding.name}",
        fast,
        reference,
        fast.step_fast,
        reference.step,
        lambda sim: (sim.item_index, sim.micro),
        max_steps,
    )
    if result.ok and fast.stats != reference.stats:
        result.divergence = FastpathDivergence(
            kind="stats",
            detail=f"fast {fast.stats}, reference {reference.stats}",
            step=result.instructions_compared,
        )
    return result


def lockstep_program_traces(
    program: Program, *, max_steps: int = 1_000_000
) -> FastpathResult:
    """Trace-at-a-time uncompressed lockstep (exercises fused bodies)."""
    fast = Simulator(program, implementation="fast")
    reference = Simulator(program, implementation="reference")
    cache = fastpath.program_cache(program)
    return _lockstep_traces(
        program.name,
        "simulator-traces",
        fast,
        reference,
        lambda: fastpath.step_program_trace(fast, cache),
        reference.step,
        lambda sim: sim.pc,
        max_steps,
    )


def lockstep_compressed_traces(
    compressed: CompressedProgram, *, max_steps: int = 1_000_000
) -> FastpathResult:
    """Trace-at-a-time compressed lockstep (exercises fused bodies)."""
    fast = CompressedSimulator(compressed, implementation="fast")
    reference = CompressedSimulator(compressed, implementation="reference")
    result = _lockstep_traces(
        fast.name,
        f"compressed-traces/{compressed.encoding.name}",
        fast,
        reference,
        lambda: fastpath.step_stream_trace(fast),
        reference.step,
        lambda sim: (sim.item_index, sim.micro),
        max_steps,
    )
    # Fetch statistics are credited at trace entry, so they are exact
    # only for runs that complete — matched-error endings tolerate the
    # documented whole-trace skew.
    if result.ok and fast.state.halted and fast.stats != reference.stats:
        result.divergence = FastpathDivergence(
            kind="stats",
            detail=f"fast {fast.stats}, reference {reference.stats}",
            step=result.instructions_compared,
        )
    return result


def verify_fastpath(
    program: Program,
    *,
    encodings: tuple[str, ...] = DEFAULT_ENCODINGS,
    max_steps: int = 1_000_000,
    trace_lockstep: bool = True,
) -> list[FastpathResult]:
    """Full fast-path audit for one program.

    Runs the uncompressed lockstep at both granularities, then for
    every encoding compresses the program and runs the compressed
    lockstep at both granularities.  Returns one
    :class:`FastpathResult` per check; all must be ``ok``.
    """
    results = [lockstep_program(program, max_steps=max_steps)]
    if trace_lockstep:
        results.append(lockstep_program_traces(program, max_steps=max_steps))
    for name in encodings:
        compressed = compress(program, make_encoding(name))
        results.append(lockstep_compressed(compressed, max_steps=max_steps))
        if trace_lockstep:
            results.append(
                lockstep_compressed_traces(compressed, max_steps=max_steps)
            )
    return results
