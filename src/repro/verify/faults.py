"""Deterministic fault injectors for ``.rcim`` images.

Each :class:`FaultSpec` names one corruption — a bit flip, a byte
zeroed, a truncation, or a byte-range duplication — at an absolute
offset inside a serialized :class:`~repro.core.image.CompressedImage`
blob, targeted at a specific container section (header, dictionary,
codeword stream, data image, or individual jump-table slots).

Specs are generated from a seeded :class:`random.Random`, so a campaign
is reproducible byte-for-byte from ``(image, seed, count, sections)``.

``section_ranges`` mirrors the RCIM v2 container layout in
:meth:`CompressedImage.to_bytes`; a consistency test asserts the two
never drift apart.
"""

from __future__ import annotations

import random
import struct
import zlib
from dataclasses import dataclass

from repro.core.image import MAGIC, CompressedImage
from repro.errors import VerificationError
from repro.linker.program import JumpTableSlot

FAULT_KINDS = ("bitflip", "zero", "truncate", "duplicate")
SECTIONS = ("header", "dictionary", "stream", "data")
JUMP_TABLE_SECTION = "jump_tables"

_HEADER_FIXED = len(MAGIC) + 1 + 4  # magic, version u8, crc u32


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic corruption of an image blob."""

    kind: str
    section: str
    offset: int  # absolute byte offset in the serialized blob
    bit: int = 0  # bit index for 'bitflip'
    length: int = 1  # bytes for 'zero'/'duplicate'

    def describe(self) -> str:
        if self.kind == "bitflip":
            return f"flip bit {self.bit} of byte {self.offset} ({self.section})"
        if self.kind == "zero":
            return (f"zero {self.length} byte(s) at {self.offset} "
                    f"({self.section})")
        if self.kind == "truncate":
            return f"truncate blob at byte {self.offset} ({self.section})"
        return (f"duplicate {self.length} byte(s) at {self.offset} "
                f"({self.section})")


def section_ranges(image: CompressedImage) -> dict[str, tuple[int, int]]:
    """Byte ranges ``[start, end)`` of each container section.

    Length prefixes belong to the section they describe, so corrupting
    a section can also corrupt its framing — exactly what a real flash
    fault does.
    """
    name = image.name.encode("utf-8")
    encoding_name = image.encoding_name.encode("utf-8")
    header_end = _HEADER_FIXED + 1 + len(name) + 1 + len(encoding_name) + 16
    dict_end = header_end + 2 + sum(
        1 + 4 + 4 * len(entry.words) for entry in image.dictionary.entries
    )
    stream_end = dict_end + 4 + len(image.stream)
    data_end = stream_end + 4 + len(image.data_image)
    return {
        "header": (0, header_end),
        "dictionary": (header_end, dict_end),
        "stream": (dict_end, stream_end),
        "data": (stream_end, data_end),
    }


def jump_table_ranges(
    image: CompressedImage, slots: list[JumpTableSlot]
) -> list[tuple[int, int]]:
    """Absolute byte ranges of each jump-table slot inside the blob."""
    data_start, _ = section_ranges(image)["data"]
    payload = data_start + 4  # skip the length prefix
    return [
        (payload + slot.data_offset, payload + slot.data_offset + 4)
        for slot in slots
        if slot.data_offset + 4 <= len(image.data_image)
    ]


def apply_fault(blob: bytes, spec: FaultSpec) -> bytes:
    """Return a corrupted copy of ``blob`` (the original is untouched)."""
    if not 0 <= spec.offset < len(blob):
        raise VerificationError(
            f"fault offset {spec.offset} outside blob of {len(blob)} bytes"
        )
    mutated = bytearray(blob)
    if spec.kind == "bitflip":
        mutated[spec.offset] ^= 1 << (spec.bit & 7)
    elif spec.kind == "zero":
        end = min(spec.offset + spec.length, len(mutated))
        mutated[spec.offset : end] = bytes(end - spec.offset)
    elif spec.kind == "truncate":
        del mutated[spec.offset :]
    elif spec.kind == "duplicate":
        end = min(spec.offset + spec.length, len(mutated))
        mutated[spec.offset : spec.offset] = mutated[spec.offset : end]
    else:
        raise VerificationError(f"unknown fault kind {spec.kind!r}")
    return bytes(mutated)


def reseal_crc(blob: bytes) -> bytes:
    """Recompute the container CRC over the (possibly corrupt) payload.

    Models corruption that happens *before* the image is sealed — a
    compressor logic bug rather than a flash fault — which is exactly
    the class of failure the CRC cannot catch and the decode/run
    detectors must.
    """
    if len(blob) < _HEADER_FIXED or blob[: len(MAGIC)] != MAGIC:
        return blob
    payload_start = len(MAGIC) + 1 + 4
    crc = zlib.crc32(blob[payload_start:])
    return (
        blob[: len(MAGIC) + 1] + struct.pack(">I", crc) + blob[payload_start:]
    )


def generate_faults(
    image: CompressedImage,
    *,
    seed: int,
    count: int,
    sections: tuple[str, ...] = SECTIONS,
    jump_table_slots: list[JumpTableSlot] | None = None,
) -> list[FaultSpec]:
    """Deterministically derive ``count`` fault specs for ``image``.

    Sections are cycled round-robin so small campaigns still cover all
    of them; ``jump_tables`` (if requested) targets the 4-byte slots
    inside the data section and requires ``jump_table_slots``.  A
    requested section with no bytes to corrupt (an empty data image, a
    program without jump tables) is skipped.
    """
    ranges = section_ranges(image)
    targets: list[tuple[str, list[tuple[int, int]]]] = []
    for section in sections:
        if section == JUMP_TABLE_SECTION:
            slot_ranges = jump_table_ranges(image, jump_table_slots or [])
            if slot_ranges:
                targets.append((section, slot_ranges))
            continue
        if section not in ranges:
            raise VerificationError(
                f"unknown section {section!r}; choose from "
                f"{SECTIONS + (JUMP_TABLE_SECTION,)}"
            )
        start, end = ranges[section]
        if end > start:
            targets.append((section, [(start, end)]))
    if not targets:
        raise VerificationError("no non-empty sections to inject into")

    rng = random.Random(seed)
    specs: list[FaultSpec] = []
    for position in range(count):
        section, spans = targets[position % len(targets)]
        start, end = spans[rng.randrange(len(spans))]
        kind = FAULT_KINDS[rng.randrange(len(FAULT_KINDS))]
        offset = rng.randrange(start, end)
        specs.append(
            FaultSpec(
                kind=kind,
                section=section,
                offset=offset,
                bit=rng.randrange(8),
                length=rng.randrange(1, 5),
            )
        )
    return specs
