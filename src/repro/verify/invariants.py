"""Static invariant checking over compressed programs and images.

A compressed program is only executable if a web of structural
invariants holds (paper sections 3.1–3.3): branches may land only on
fetch-item boundaries, jump-table slots must name valid unit addresses,
patched offsets must fit their instruction fields, codeword ranks must
be dense and within the encoding's capacity, and escape units must be
drawn from the 8 illegal primary opcodes so the stream stays
unambiguous.

This pass checks all of that *without executing anything*.  Every
violation is a typed :class:`Finding` — never an assert — so a
fault-injection campaign or a CI job can collect the full list and
classify, and so one broken branch doesn't hide a broken jump table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import bitutils
from repro.core.branch_patch import _target_field_width
from repro.core.compressor import CompressedProgram
from repro.core.image import CompressedImage
from repro.errors import BranchRangeError, CompressionError, DecompressionError
from repro.isa.opcodes import ILLEGAL_PRIMARY_OPCODES
from repro.machine.decompressor import FetchItem, StreamDecoder

#: Rules emitted by this pass (stable identifiers for classification).
RULES = (
    "stream-decode",
    "stream-length",
    "layout-mismatch",
    "branch-boundary",
    "branch-width",
    "jump-table",
    "entry-boundary",
    "dict-capacity",
    "dict-rank",
    "dict-entry",
    "escape-discipline",
)


@dataclass(frozen=True)
class Finding:
    """One invariant violation."""

    rule: str
    message: str
    unit: int | None = None
    severity: str = "error"  # "error" | "warning"

    def render(self) -> str:
        where = f" @ unit {self.unit}" if self.unit is not None else ""
        return f"[{self.rule}]{where}: {self.message}"


@dataclass
class InvariantReport:
    """All findings from one checking pass."""

    name: str
    checks: int
    findings: list[Finding]

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.findings)} finding(s)"
        lines = [f"{self.name}: {self.checks} checks, {status}"]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        return "\n".join(lines)


class _Checker:
    def __init__(self, name: str) -> None:
        self.name = name
        self.checks = 0
        self.findings: list[Finding] = []

    def check(self, ok: bool, rule: str, message: str, unit: int | None = None,
              severity: str = "error") -> None:
        self.checks += 1
        if not ok:
            self.findings.append(Finding(rule, message, unit, severity))

    def fail(self, rule: str, message: str, unit: int | None = None) -> None:
        self.check(False, rule, message, unit)

    def report(self) -> InvariantReport:
        return InvariantReport(self.name, self.checks, self.findings)


# ----------------------------------------------------------------------
# Shared stream-level checks
# ----------------------------------------------------------------------
def _decode_items(
    checker: _Checker, stream, dictionary, encoding, total_units
) -> list[FetchItem]:
    """Strict-decode the stream; a failure becomes a finding."""
    try:
        decoder = StreamDecoder(stream, dictionary, encoding, total_units)
        items = decoder.decode_all()
    except (DecompressionError, CompressionError) as exc:
        checker.fail(
            "stream-decode", str(exc),
            getattr(exc, "unit_address", None),
        )
        return []
    checker.check(
        sum(item.size_units for item in items) == total_units,
        "stream-length",
        f"items cover {sum(i.size_units for i in items)} units, "
        f"header declares {total_units}",
    )
    return items


def _check_escape_discipline(
    checker: _Checker, items: list[FetchItem], stream: bytes, encoding
) -> None:
    """Escape units must come from the 8 illegal primary opcodes.

    For byte-aligned encodings a codeword's first byte must be an
    escape byte (top 6 bits illegal) and an uncompressed instruction
    must *not* start with one — otherwise the stream is ambiguous.  For
    the nibble family the reserved escape nibble (15) plays that role.
    """
    reader = bitutils.BitReader(stream)
    for item in items:
        bits = item.size_units * encoding.alignment_bits
        if reader.bit_position + bits > len(stream) * 8:
            return  # already reported as a decode/length finding
        if encoding.alignment_bits == 4:
            first = reader.peek(4)
            if item.is_codeword:
                checker.check(
                    first != 15, "escape-discipline",
                    f"codeword #{item.rank} begins with the escape nibble",
                    item.address,
                )
            else:
                checker.check(
                    first == 15, "escape-discipline",
                    f"escaped instruction lacks the escape nibble "
                    f"(got {first})",
                    item.address,
                )
        else:
            first = reader.peek(8)
            illegal = (first >> 2) in ILLEGAL_PRIMARY_OPCODES
            if item.is_codeword:
                checker.check(
                    illegal, "escape-discipline",
                    f"codeword #{item.rank} escape byte {first:#04x} is not "
                    "built from an illegal primary opcode",
                    item.address,
                )
            else:
                checker.check(
                    not illegal, "escape-discipline",
                    f"uncompressed instruction starts with escape byte "
                    f"{first:#04x} — stream is ambiguous",
                    item.address,
                )
        reader.seek_bit(reader.bit_position + bits)


def _check_dictionary(checker: _Checker, dictionary, encoding) -> None:
    checker.check(
        len(dictionary) <= encoding.capacity,
        "dict-capacity",
        f"dictionary holds {len(dictionary)} entries; encoding "
        f"{encoding.name!r} addresses at most {encoding.capacity}",
    )
    for rank, entry in enumerate(dictionary.entries):
        checker.check(
            entry.length >= 1, "dict-entry",
            f"entry #{rank} is empty",
        )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def check_compressed(compressed: CompressedProgram) -> InvariantReport:
    """Full invariant pass over an in-memory compressor result.

    Uses token provenance for the branch/jump-table checks, and the
    serialized stream for the decode-level checks — so a bug in either
    representation (or a mismatch between them) is caught.
    """
    program = compressed.program
    encoding = compressed.encoding
    checker = _Checker(program.name)

    items = _decode_items(
        checker, compressed.stream, compressed.dictionary, encoding,
        compressed.total_units(),
    )
    boundaries = {item.address for item in items}
    token_starts = {token.address for token in compressed.tokens}
    if items:
        checker.check(
            boundaries == token_starts,
            "layout-mismatch",
            "decoded item boundaries differ from token layout "
            f"({len(boundaries)} items vs {len(token_starts)} tokens)",
        )
        _check_escape_discipline(checker, items, compressed.stream, encoding)
    _check_dictionary(checker, compressed.dictionary, encoding)

    # Branch targets and field widths, at token granularity.
    for token in compressed.tokens:
        if token.kind == "cw":
            checker.check(
                token.rank is not None
                and token.rank < len(compressed.dictionary),
                "dict-rank",
                f"token at unit {token.address} references rank "
                f"{token.rank} of a {len(compressed.dictionary)}-entry "
                "dictionary",
                token.address,
            )
            continue
        if not token.is_branch_token:
            continue
        try:
            width = _target_field_width(token.instruction)
        except BranchRangeError as exc:
            checker.fail("branch-width", str(exc), token.address)
            continue
        offset = token.instruction.operand("target")
        checker.check(
            bitutils.fits_signed(offset, width),
            "branch-width",
            f"offset {offset} does not fit the {width}-bit field",
            token.address,
        )
        checker.check(
            token.address + offset in boundaries,
            "branch-boundary",
            f"branch from unit {token.address} targets unit "
            f"{token.address + offset}, which is inside an encoded item",
            token.address,
        )

    # Jump-table slots in the patched data image.
    for slot in program.jump_table_slots:
        raw = int.from_bytes(
            compressed.data_image[slot.data_offset : slot.data_offset + 4],
            "big",
        )
        unit = raw - program.text_base
        checker.check(
            unit in boundaries,
            "jump-table",
            f"slot at data offset {slot.data_offset} holds {raw:#x} "
            f"(unit {unit}), which is not an item boundary",
            unit if unit >= 0 else None,
        )

    entry_unit = compressed.index_to_unit.get(program.entry_index)
    checker.check(
        entry_unit is not None and entry_unit in boundaries,
        "entry-boundary",
        f"entry point (instruction {program.entry_index}) does not map "
        "to an item boundary",
    )
    return checker.report()


def check_image(image: CompressedImage) -> InvariantReport:
    """Decode-level invariant pass over a standalone ``.rcim`` image.

    An image carries no token or jump-table provenance, so this checks
    what a loader can see: the dictionary, the stream, the escape
    discipline, and the entry point.
    """
    checker = _Checker(image.name)
    try:
        encoding = image.encoding()
    except CompressionError as exc:
        checker.fail("dict-capacity", f"encoding unavailable: {exc}")
        return checker.report()
    items = _decode_items(
        checker, image.stream, image.dictionary, encoding, image.total_units
    )
    if items:
        _check_escape_discipline(checker, items, image.stream, encoding)
    _check_dictionary(checker, image.dictionary, encoding)
    checker.check(
        image.entry_unit in {item.address for item in items},
        "entry-boundary",
        f"entry unit {image.entry_unit} is not an item boundary",
        image.entry_unit,
    )
    return checker.report()
