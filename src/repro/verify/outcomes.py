"""The shared outcome taxonomy for fault campaigns.

Two campaign layers classify faults, and they share one discipline —
every injected fault lands in exactly one named bucket, and the gate
is **zero silent divergences** (plus, at the service level, **zero
lost-acknowledged jobs**):

* **image level** (:mod:`repro.verify.campaign`, PR 2): one corrupted
  container blob pushed through load → decode → execute;
* **service level** (:mod:`repro.chaos.campaign`): one submitted job
  driven through a live server under disk/worker/connection faults.

Keeping both vocabularies here means the chaos CLI, the verify CLI,
and the docs all name outcomes identically.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Image-level outcomes (one corrupted blob through the consumer
# pipeline) — the PR 2 taxonomy, re-homed.
# ----------------------------------------------------------------------
IMAGE_OUTCOMES = (
    "detected-at-load",
    "detected-at-decode",
    "detected-at-run",
    "silent-divergence",
    "silent-identical",
)

#: Image outcomes that count as "the pipeline caught it".
DETECTED_IMAGE_OUTCOMES = IMAGE_OUTCOMES[:3]

# ----------------------------------------------------------------------
# Service-level (per-job) outcomes — the chaos-campaign taxonomy.
# ----------------------------------------------------------------------
JOB_COMPLETED = "completed"
JOB_RETRIED = "retried-then-completed"
JOB_REJECTED = "rejected-retryable"
JOB_LOST = "lost"
JOB_DIVERGED = "silently-diverged"

JOB_OUTCOMES = (
    JOB_COMPLETED,
    JOB_RETRIED,
    JOB_REJECTED,
    JOB_LOST,
    JOB_DIVERGED,
)

#: Job outcomes a chaos campaign is allowed to produce.  ``lost`` means
#: the server acknowledged work and then forgot it; ``silently-diverged``
#: means it served wrong bytes as success.  Both gate the campaign.
ACCEPTABLE_JOB_OUTCOMES = (JOB_COMPLETED, JOB_RETRIED, JOB_REJECTED)


def tally(outcomes, universe: tuple[str, ...]) -> dict[str, int]:
    """Count ``outcomes`` into every bucket of ``universe`` (zeros kept)."""
    counts = {bucket: 0 for bucket in universe}
    for outcome in outcomes:
        if outcome not in counts:
            raise ValueError(
                f"outcome {outcome!r} is not in the taxonomy {universe}"
            )
        counts[outcome] += 1
    return counts


def gate_jobs(counts: dict[str, int]) -> list[str]:
    """The zero-loss / zero-divergence gate; returns the violations."""
    problems = []
    if counts.get(JOB_LOST, 0):
        problems.append(
            f"{counts[JOB_LOST]} acknowledged job(s) were lost"
        )
    if counts.get(JOB_DIVERGED, 0):
        problems.append(
            f"{counts[JOB_DIVERGED]} job(s) silently served wrong artifacts"
        )
    return problems
