"""Synthetic SPEC CINT95-like workload suite.

The paper measures static compression of the eight SPEC CINT95 integer
benchmarks compiled with GCC -O2 for PowerPC.  Those binaries are not
redistributable, so this package builds the closest synthetic
equivalent: eight MiniC programs — one per CINT95 benchmark, with a
hand-written algorithmic core matching the original's character plus
procedurally generated (seeded, deterministic) supporting code —
compiled through :mod:`repro.compiler`.

What the substitution preserves (see DESIGN.md section 2): the static
instruction-encoding redundancy that drives every result in the paper
comes from template-driven code generation, which our toolchain shares
with GCC; program sizes are scaled to roughly 1/8 of the originals so
pure-Python analysis stays fast, and all reported numbers are
size-normalized ratios.
"""

from repro.workloads.suite import (
    BENCHMARK_NAMES,
    build_benchmark,
    build_suite,
    benchmark_source,
    clear_cache,
)

__all__ = [
    "BENCHMARK_NAMES",
    "build_benchmark",
    "build_suite",
    "benchmark_source",
    "clear_cache",
]
