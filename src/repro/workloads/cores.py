"""Hand-written algorithmic cores for the eight synthetic benchmarks.

Each core is genuine MiniC code in the spirit of its SPEC CINT95
namesake (a dictionary compressor for ``compress``, an expression
compiler for ``gcc``, a board evaluator for ``go``, …).  Every core
exposes ``<name>_core()`` returning a deterministic checksum, which the
benchmark's ``main`` prints — the integration tests compare this output
between uncompressed and compressed execution.
"""

COMPRESS_CORE = """
// LZW-flavoured dictionary compressor over a synthetic text buffer.
char cmp_input[256];
int cmp_dict_prefix[288];
int cmp_dict_char[288];
int cmp_out_codes[256];
int cmp_out_len;

void cmp_fill_input() {
    int i;
    for (i = 0; i < 256; i = i + 1) {
        cmp_input[i] = 97 + ((i * 7 + (i >> 3)) % 13);
    }
}

int cmp_lookup(int next_code, int prefix, int c) {
    int code;
    for (code = 256; code < next_code; code = code + 1) {
        if (cmp_dict_prefix[code] == prefix && cmp_dict_char[code] == c) {
            return code;
        }
    }
    return -1;
}

int compress_core() {
    cmp_fill_input();
    cmp_out_len = 0;
    int next_code = 256;
    int prefix = cmp_input[0];
    int i;
    for (i = 1; i < 256; i = i + 1) {
        int c = cmp_input[i];
        int code = cmp_lookup(next_code, prefix, c);
        if (code >= 0) {
            prefix = code;
        } else {
            cmp_out_codes[cmp_out_len] = prefix;
            cmp_out_len = cmp_out_len + 1;
            if (next_code < 288) {
                cmp_dict_prefix[next_code] = prefix;
                cmp_dict_char[next_code] = c;
                next_code = next_code + 1;
            }
            prefix = c;
        }
    }
    cmp_out_codes[cmp_out_len] = prefix;
    cmp_out_len = cmp_out_len + 1;
    int checksum = cmp_out_len * 1000;
    for (i = 0; i < cmp_out_len; i = i + 1) {
        checksum = checksum + cmp_out_codes[i] * (i + 1);
    }
    return checksum;
}
"""

GCC_CORE = """
// Expression compiler: tokenize, shunting-yard to RPN, emit + fold.
char gcc_src[64] = "a+b*(c-d)/e+f*g-(h+a)*b";
int gcc_rpn_op[64];
int gcc_rpn_val[64];
int gcc_rpn_len;
int gcc_opstack[32];
int gcc_emit_code[128];
int gcc_emit_len;

int gcc_precedence(int op) {
    if (op == 42 || op == 47) { return 2; }  // * /
    if (op == 43 || op == 45) { return 1; }  // + -
    return 0;
}

int gcc_var_value(int name) {
    return (name - 97) * 3 + 5;
}

void gcc_emit(int opcode, int operand) {
    gcc_emit_code[gcc_emit_len] = opcode * 256 + (operand & 255);
    gcc_emit_len = gcc_emit_len + 1;
}

int gcc_compile() {
    int sp = 0;
    gcc_rpn_len = 0;
    int i = 0;
    while (gcc_src[i] != 0) {
        int c = gcc_src[i];
        if (c >= 97 && c <= 122) {
            gcc_rpn_op[gcc_rpn_len] = 0;
            gcc_rpn_val[gcc_rpn_len] = c;
            gcc_rpn_len = gcc_rpn_len + 1;
        } else {
            if (c == 40) {
                gcc_opstack[sp] = c;
                sp = sp + 1;
            } else {
                if (c == 41) {
                    while (sp > 0 && gcc_opstack[sp - 1] != 40) {
                        sp = sp - 1;
                        gcc_rpn_op[gcc_rpn_len] = gcc_opstack[sp];
                        gcc_rpn_len = gcc_rpn_len + 1;
                    }
                    if (sp > 0) { sp = sp - 1; }
                } else {
                    while (sp > 0 &&
                           gcc_precedence(gcc_opstack[sp - 1]) >= gcc_precedence(c)) {
                        sp = sp - 1;
                        gcc_rpn_op[gcc_rpn_len] = gcc_opstack[sp];
                        gcc_rpn_len = gcc_rpn_len + 1;
                    }
                    gcc_opstack[sp] = c;
                    sp = sp + 1;
                }
            }
        }
        i = i + 1;
    }
    while (sp > 0) {
        sp = sp - 1;
        gcc_rpn_op[gcc_rpn_len] = gcc_opstack[sp];
        gcc_rpn_len = gcc_rpn_len + 1;
    }
    return gcc_rpn_len;
}

int gcc_eval_stack[32];

int gcc_core() {
    gcc_emit_len = 0;
    int rpn_length = gcc_compile();
    int sp = 0;
    int i;
    for (i = 0; i < rpn_length; i = i + 1) {
        if (gcc_rpn_op[i] == 0) {
            gcc_emit(1, gcc_rpn_val[i]);  // PUSH var
            gcc_eval_stack[sp] = gcc_var_value(gcc_rpn_val[i]);
            sp = sp + 1;
        } else {
            gcc_emit(2, gcc_rpn_op[i]);  // ALU op
            int b = gcc_eval_stack[sp - 1];
            int a = gcc_eval_stack[sp - 2];
            sp = sp - 2;
            int r = 0;
            switch (gcc_rpn_op[i]) {
                case 42: r = a * b; break;
                case 43: r = a + b; break;
                case 45: r = a - b; break;
                case 47: if (b != 0) { r = a / b; } break;
                default: r = 0; break;
            }
            gcc_eval_stack[sp] = r;
            sp = sp + 1;
        }
    }
    int checksum = gcc_eval_stack[0] * 100 + gcc_emit_len;
    for (i = 0; i < gcc_emit_len; i = i + 1) {
        checksum = checksum ^ (gcc_emit_code[i] * (i + 3));
    }
    return checksum;
}
"""

GO_CORE = """
// 9x9 board evaluation: liberties, influence propagation, scoring.
int go_board[81];
int go_influence[81];

void go_setup() {
    int i;
    for (i = 0; i < 81; i = i + 1) {
        go_board[i] = 0;
        go_influence[i] = 0;
    }
    for (i = 0; i < 81; i = i + 7) { go_board[i] = 1; }
    for (i = 3; i < 81; i = i + 11) { go_board[i] = 2; }
}

int go_liberties(int position) {
    int row = position / 9;
    int col = position % 9;
    int liberties = 0;
    if (row > 0 && go_board[position - 9] == 0) { liberties = liberties + 1; }
    if (row < 8 && go_board[position + 9] == 0) { liberties = liberties + 1; }
    if (col > 0 && go_board[position - 1] == 0) { liberties = liberties + 1; }
    if (col < 8 && go_board[position + 1] == 0) { liberties = liberties + 1; }
    return liberties;
}

void go_spread() {
    int position;
    for (position = 0; position < 81; position = position + 1) {
        int stone = go_board[position];
        if (stone != 0) {
            int weight = 8;
            if (stone == 2) { weight = -8; }
            int row = position / 9;
            int col = position % 9;
            go_influence[position] = go_influence[position] + weight * 2;
            if (row > 0) { go_influence[position - 9] = go_influence[position - 9] + weight; }
            if (row < 8) { go_influence[position + 9] = go_influence[position + 9] + weight; }
            if (col > 0) { go_influence[position - 1] = go_influence[position - 1] + weight; }
            if (col < 8) { go_influence[position + 1] = go_influence[position + 1] + weight; }
        }
    }
}

int go_core() {
    go_setup();
    int pass;
    for (pass = 0; pass < 4; pass = pass + 1) { go_spread(); }
    int score = 0;
    int position;
    for (position = 0; position < 81; position = position + 1) {
        int stone = go_board[position];
        if (stone == 1) { score = score + go_liberties(position); }
        if (stone == 2) { score = score - go_liberties(position); }
        if (go_influence[position] > 0) { score = score + 1; }
    }
    return score * 17 + 4000;
}
"""

IJPEG_CORE = """
// 8x8 integer DCT-like transform, quantization, zigzag RLE.
int jpg_block[64];
int jpg_quant[64];
int jpg_zigzag_count;

void jpg_fill() {
    int row;
    int col;
    for (row = 0; row < 8; row = row + 1) {
        for (col = 0; col < 8; col = col + 1) {
            jpg_block[row * 8 + col] = (row * 13 + col * 7) % 64 - 32;
            jpg_quant[row * 8 + col] = 1 + ((row + col) >> 1);
        }
    }
}

void jpg_transform_rows() {
    int row;
    for (row = 0; row < 8; row = row + 1) {
        int base = row * 8;
        int i;
        for (i = 0; i < 4; i = i + 1) {
            int a = jpg_block[base + i];
            int b = jpg_block[base + 7 - i];
            jpg_block[base + i] = a + b;
            jpg_block[base + 7 - i] = (a - b) * (i + 1);
        }
    }
}

void jpg_transform_cols() {
    int col;
    for (col = 0; col < 8; col = col + 1) {
        int i;
        for (i = 0; i < 4; i = i + 1) {
            int a = jpg_block[i * 8 + col];
            int b = jpg_block[(7 - i) * 8 + col];
            jpg_block[i * 8 + col] = (a + b) >> 1;
            jpg_block[(7 - i) * 8 + col] = (a - b) >> 1;
        }
    }
}

void jpg_quantize() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        jpg_block[i] = jpg_block[i] / jpg_quant[i];
    }
}

int ijpeg_core() {
    jpg_fill();
    jpg_transform_rows();
    jpg_transform_cols();
    jpg_quantize();
    int zero_run = 0;
    jpg_zigzag_count = 0;
    int checksum = 0;
    int i;
    for (i = 0; i < 64; i = i + 1) {
        int v = jpg_block[i];
        if (v == 0) {
            zero_run = zero_run + 1;
        } else {
            checksum = checksum + v * (zero_run + 1) + i;
            jpg_zigzag_count = jpg_zigzag_count + 1;
            zero_run = 0;
        }
    }
    return checksum * 3 + jpg_zigzag_count;
}
"""

LI_CORE = """
// Lisp-flavoured expression-tree builder and recursive evaluator.
int li_op[128];
int li_left[128];
int li_right[128];
int li_val[128];
int li_next_node;

int li_leaf(int value) {
    int node = li_next_node;
    li_next_node = li_next_node + 1;
    li_op[node] = 0;
    li_val[node] = value;
    return node;
}

int li_node(int op, int left, int right) {
    int node = li_next_node;
    li_next_node = li_next_node + 1;
    li_op[node] = op;
    li_left[node] = left;
    li_right[node] = right;
    return node;
}

int li_build(int depth, int seed) {
    if (depth <= 0) {
        return li_leaf((seed % 19) - 9);
    }
    int op = 1 + (seed % 5);
    int left = li_build(depth - 1, seed * 3 + 1);
    int right = li_build(depth - 1, seed * 5 + 2);
    return li_node(op, left, right);
}

int li_eval(int node) {
    if (li_op[node] == 0) {
        return li_val[node];
    }
    int a = li_eval(li_left[node]);
    int b = li_eval(li_right[node]);
    switch (li_op[node]) {
        case 1: return a + b;
        case 2: return a - b;
        case 3: return a * b;
        case 4: if (a < b) { return a; } return b;
        case 5: if (a > b) { return a; } return b;
        default: return 0;
    }
}

int li_count_leaves(int node) {
    if (li_op[node] == 0) { return 1; }
    return li_count_leaves(li_left[node]) + li_count_leaves(li_right[node]);
}

int li_core() {
    li_next_node = 0;
    int tree = li_build(5, 7);
    int value = li_eval(tree);
    int leaves = li_count_leaves(tree);
    li_next_node = 0;
    int tree2 = li_build(4, 23);
    int value2 = li_eval(tree2);
    return value * 31 + value2 * 7 + leaves;
}
"""

M88KSIM_CORE = """
// Instruction-set simulator for a toy 16-register RISC.
int m88_mem[128];
int m88_regs[16];

void m88_load() {
    int i;
    for (i = 0; i < 128; i = i + 1) {
        m88_mem[i] = ((i % 12) << 8) | ((i * 5 + 3) & 255);
    }
    for (i = 0; i < 16; i = i + 1) {
        m88_regs[i] = i * 3 + 1;
    }
}

int m88ksim_core() {
    m88_load();
    int pc = 0;
    int steps = 0;
    while (steps < 500) {
        int insn = m88_mem[pc & 127];
        int op = (insn >> 8) & 15;
        int rd = insn & 15;
        int rs = (insn >> 4) & 15;
        int imm = (insn >> 2) & 31;
        switch (op) {
            case 0: m88_regs[rd] = m88_regs[rs] + imm; break;
            case 1: m88_regs[rd] = m88_regs[rs] - imm; break;
            case 2: m88_regs[rd] = m88_regs[rs] ^ m88_regs[rd]; break;
            case 3: m88_regs[rd] = (m88_regs[rs] << 1) & 0xffffff; break;
            case 4: if (m88_regs[rd] > 0) { pc = pc + (imm & 7); } break;
            case 5: m88_regs[rd] = m88_regs[rs] & imm; break;
            case 6: m88_regs[rd] = m88_regs[rs] | imm; break;
            case 7: m88_regs[rd] = imm; break;
            case 8: m88_regs[rd] = (m88_regs[rs] * 3) & 0xffffff; break;
            case 9: if (m88_regs[rd] == m88_regs[rs]) { pc = pc + 2; } break;
            case 10: m88_regs[rd] = m88_regs[(rs + 1) & 15] >> 1; break;
            case 11: m88_regs[rd] = m88_mem[m88_regs[rs] & 127] & 255; break;
            default: break;
        }
        pc = pc + 1;
        steps = steps + 1;
    }
    int checksum = 0;
    int i;
    for (i = 0; i < 16; i = i + 1) {
        checksum = checksum * 3 + (m88_regs[i] & 1023);
    }
    return checksum & 0xffffff;
}
"""

PERL_CORE = """
// Glob-style pattern matcher plus a tiny variable store.
char perl_text[64] = "the quick brown fox jumps over the lazy dog";
char perl_pattern[16] = "*qu?ck*f?x*";
int perl_var_keys[32];
int perl_var_vals[32];
int perl_var_count;

int perl_match(int pattern_index, int text_index) {
    int p = perl_pattern[pattern_index];
    if (p == 0) {
        if (perl_text[text_index] == 0) { return 1; }
        return 0;
    }
    if (p == 42) {
        if (perl_match(pattern_index + 1, text_index)) { return 1; }
        if (perl_text[text_index] == 0) { return 0; }
        return perl_match(pattern_index, text_index + 1);
    }
    if (perl_text[text_index] == 0) { return 0; }
    if (p == 63 || p == perl_text[text_index]) {
        return perl_match(pattern_index + 1, text_index + 1);
    }
    return 0;
}

int perl_hash_name(int a, int b) {
    return ((a * 31 + b) & 0x7fffffff) % 97;
}

void perl_set_var(int key, int value) {
    int i;
    for (i = 0; i < perl_var_count; i = i + 1) {
        if (perl_var_keys[i] == key) {
            perl_var_vals[i] = value;
            return;
        }
    }
    if (perl_var_count < 32) {
        perl_var_keys[perl_var_count] = key;
        perl_var_vals[perl_var_count] = value;
        perl_var_count = perl_var_count + 1;
    }
}

int perl_get_var(int key) {
    int i;
    for (i = 0; i < perl_var_count; i = i + 1) {
        if (perl_var_keys[i] == key) { return perl_var_vals[i]; }
    }
    return 0;
}

int perl_core() {
    int matched = perl_match(0, 0);
    perl_var_count = 0;
    int i;
    for (i = 0; i < 40; i = i + 1) {
        int key = perl_hash_name(perl_text[i % 44], i);
        perl_set_var(key, perl_get_var(key) + i);
    }
    int checksum = matched * 10000;
    for (i = 0; i < perl_var_count; i = i + 1) {
        checksum = checksum + perl_var_keys[i] ^ perl_var_vals[i];
    }
    return checksum + perl_var_count;
}
"""

VORTEX_CORE = """
// In-memory record store: sorted index, binary search, transactions.
int vtx_ids[96];
int vtx_balance[96];
int vtx_flags[96];
int vtx_count;

int vtx_find(int id) {
    int lo = 0;
    int hi = vtx_count - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (vtx_ids[mid] == id) { return mid; }
        if (vtx_ids[mid] < id) { lo = mid + 1; }
        else { hi = mid - 1; }
    }
    return -1;
}

void vtx_insert(int id, int balance) {
    int position = vtx_count;
    while (position > 0 && vtx_ids[position - 1] > id) {
        vtx_ids[position] = vtx_ids[position - 1];
        vtx_balance[position] = vtx_balance[position - 1];
        vtx_flags[position] = vtx_flags[position - 1];
        position = position - 1;
    }
    vtx_ids[position] = id;
    vtx_balance[position] = balance;
    vtx_flags[position] = 1;
    vtx_count = vtx_count + 1;
}

int vtx_transfer(int from_id, int to_id, int amount) {
    int from_index = vtx_find(from_id);
    int to_index = vtx_find(to_id);
    if (from_index < 0 || to_index < 0) { return 0; }
    if (vtx_balance[from_index] < amount) { return 0; }
    vtx_balance[from_index] = vtx_balance[from_index] - amount;
    vtx_balance[to_index] = vtx_balance[to_index] + amount;
    return 1;
}

int vortex_core() {
    vtx_count = 0;
    int i;
    for (i = 0; i < 60; i = i + 1) {
        vtx_insert((i * 37) % 191, 100 + i * 3);
    }
    int completed = 0;
    for (i = 0; i < 120; i = i + 1) {
        int from_id = (i * 37) % 191;
        int to_id = ((i + 7) * 37) % 191;
        completed = completed + vtx_transfer(from_id, to_id, (i % 9) + 1);
    }
    int total = 0;
    int flagged = 0;
    for (i = 0; i < vtx_count; i = i + 1) {
        total = total + vtx_balance[i];
        if (vtx_balance[i] > 120) {
            vtx_flags[i] = 2;
            flagged = flagged + 1;
        }
    }
    return total * 5 + completed * 11 + flagged;
}
"""

CORES = {
    "compress": (COMPRESS_CORE, "compress_core"),
    "gcc": (GCC_CORE, "gcc_core"),
    "go": (GO_CORE, "go_core"),
    "ijpeg": (IJPEG_CORE, "ijpeg_core"),
    "li": (LI_CORE, "li_core"),
    "m88ksim": (M88KSIM_CORE, "m88ksim_core"),
    "perl": (PERL_CORE, "perl_core"),
    "vortex": (VORTEX_CORE, "vortex_core"),
}
