"""Procedural MiniC code generator.

Emits deterministic (seeded) function bodies in a handful of shapes that
mirror the kinds of code a C compiler sees in the SPEC CINT95 suite:
array scans, table updates, state-machine switches, decision ladders,
expression kernels, string scans, hash mixers, and call dispatchers.
Each benchmark's :class:`Profile` weights these shapes differently so
that, for example, the synthetic ``m88ksim`` is switch-heavy while the
synthetic ``ijpeg`` is loop/multiply-heavy.

Generated functions call each other and the runtime library, so the
emitted call graph — and hence prologue/epilogue density, Table 3 —
resembles real programs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Profile:
    """Shape weights and size parameters for one synthetic benchmark."""

    name: str
    seed: int
    target_instructions: int
    # Relative weights for each generator shape.
    weights: dict[str, float] = field(
        default_factory=lambda: {
            "scan_loop": 2.0,
            "table_update": 1.5,
            "state_machine": 1.0,
            "decision_ladder": 1.5,
            "math_kernel": 1.5,
            "string_scan": 1.0,
            "hash_mix": 1.0,
            "dispatcher": 0.8,
        }
    )
    int_arrays: int = 6
    char_arrays: int = 2
    scalars: int = 6
    # Loop bound used when scanning arrays; arrays themselves vary in
    # size (up to array_spread) so the data segment spans many 64KB
    # pages and @ha relocations take many distinct values, as in real
    # statically linked programs.
    array_size: int = 64
    array_spread: int = 8192
    # Average machine instructions one generated function compiles to;
    # calibrated empirically (see tests/workloads/test_generator.py).
    instructions_per_function: float = 40.0


_BIN_OPS = ["+", "-", "^", "|", "&"]
_CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]


class CodeWriter:
    """Tiny indenting source writer."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._indent = 0

    def line(self, text: str = "") -> None:
        self._lines.append("    " * self._indent + text if text else "")

    def open(self, text: str) -> None:
        self.line(text + " {")
        self._indent += 1

    def close(self) -> None:
        self._indent -= 1
        self.line("}")

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


class FunctionFactory:
    """Generates one benchmark's worth of synthetic functions."""

    def __init__(self, profile: Profile) -> None:
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.functions: list[str] = []  # generated function names, in order
        self.prefix = f"f_{profile.name}"
        self._shape_table: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Global data
    # ------------------------------------------------------------------
    def emit_globals(self, out: CodeWriter) -> None:
        p = self.profile
        sizes = [p.array_size, p.array_size * 4, p.array_size * 16, p.array_spread]
        for i in range(p.scalars):
            out.line(f"int gv_{p.name}_{i};")
        for i in range(p.int_arrays):
            size = max(p.array_size, sizes[self.rng.randrange(len(sizes))])
            out.line(f"int ga_{p.name}_{i}[{size}];")
        for i in range(p.char_arrays):
            size = max(p.array_size, sizes[self.rng.randrange(len(sizes))] // 4)
            out.line(f"char gc_{p.name}_{i}[{size}];")
        out.line()

    def scalar(self) -> str:
        return f"gv_{self.profile.name}_{self.rng.randrange(self.profile.scalars)}"

    def int_array(self) -> str:
        return f"ga_{self.profile.name}_{self.rng.randrange(self.profile.int_arrays)}"

    def char_array(self) -> str:
        return f"gc_{self.profile.name}_{self.rng.randrange(self.profile.char_arrays)}"

    # ------------------------------------------------------------------
    # Expression fragments
    # ------------------------------------------------------------------
    def _const(self, lo: int = 1, hi: int = 64) -> str:
        return str(self.rng.randrange(lo, hi))

    def _binop(self) -> str:
        return self.rng.choice(_BIN_OPS)

    def _cmp(self) -> str:
        return self.rng.choice(_CMP_OPS)

    def _callee(self) -> str | None:
        """A previously generated function usable as a callee."""
        if not self.functions or self.rng.random() < 0.4:
            return None
        return self.rng.choice(self.functions[-24:])

    def _runtime_call(self, a: str, b: str) -> str:
        name = self.rng.choice(["min", "max", "abs", "gcd", "clamp"])
        if name == "abs":
            return f"abs({a} - {b})"
        if name == "clamp":
            return f"clamp({a}, 0, {b} + 1)"
        return f"{name}({a}, {b})"

    # ------------------------------------------------------------------
    # Function shapes
    # ------------------------------------------------------------------
    def gen_function(self) -> str:
        shapes = list(self.profile.weights.items())
        names = [s for s, _ in shapes]
        weights = [w for _, w in shapes]
        shape = self.rng.choices(names, weights=weights, k=1)[0]
        index = len(self.functions)
        name = f"{self.prefix}_{index}"
        self._shape_table[name] = shape
        out = CodeWriter()
        getattr(self, f"_shape_{shape}")(out, name)
        self.functions.append(name)
        return out.text()

    def _shape_scan_loop(self, out: CodeWriter, name: str) -> None:
        rng = self.rng
        array = self.int_array()
        out.open(f"int {name}(int n, int seed)")
        out.line(f"int acc = {self._const()};")
        out.line("int i;")
        bound = f"n & {self.profile.array_size - 1}"
        out.open(f"for (i = 0; i < ({bound}); i = i + 1)")
        out.line(f"int v = {array}[i];")
        body_kind = rng.randrange(3)
        if body_kind == 0:
            out.line(f"acc = acc {self._binop()} (v {self._binop()} seed);")
            out.open(f"if (acc {self._cmp()} {self._const(64, 4096)})")
            out.line(f"acc = acc - {self._const()};")
            out.close()
        elif body_kind == 1:
            out.line(f"acc = acc + {self._runtime_call('v', 'seed')};")
            out.line(f"{array}[i] = v {self._binop()} acc;")
        else:
            out.open(f"if (v {self._cmp()} seed)")
            out.line(f"acc = acc + v;")
            out.close()
            out.open("else")
            out.line(f"acc = acc ^ (v >> {rng.randrange(1, 5)});")
            out.close()
        out.close()
        callee = self._callee()
        if callee is not None:
            out.line(f"acc = acc + {self._call_expr(callee, 'acc', 1)};")
        out.line(f"{self.scalar()} = acc;")
        out.line("return acc;")
        out.close()

    def _shape_table_update(self, out: CodeWriter, name: str) -> None:
        rng = self.rng
        src = self.int_array()
        dst = self.int_array()
        out.open(f"int {name}(int n, int k)")
        out.line("int i;")
        out.line("int total = 0;")
        stride = rng.choice([1, 2])
        bound = self.profile.array_size
        out.open(f"for (i = 0; i < {bound}; i = i + {stride})")
        expr = rng.choice(
            [
                f"{src}[i] {self._binop()} k",
                f"({src}[i] << {rng.randrange(1, 4)}) + k",
                f"{src}[i] + {dst}[i]",
                f"max({src}[i], k)",
            ]
        )
        out.line(f"{dst}[i] = {expr};")
        out.line(f"total = total + {dst}[i];")
        out.close()
        out.line(f"{self.scalar()} = total;")
        out.line("return total;")
        out.close()

    def _shape_state_machine(self, out: CodeWriter, name: str) -> None:
        rng = self.rng
        ncases = rng.randrange(4, 11)
        scalar = self.scalar()
        out.open(f"int {name}(int state, int input)")
        out.open("switch (state)")
        for case in range(ncases):
            out.line(f"case {case}:")
            action = rng.randrange(4)
            if action == 0:
                out.line(f"    state = input & {self._const(1, 16)};")
            elif action == 1:
                out.line(f"    state = state + {self._const(1, 4)};")
            elif action == 2:
                out.line(f"    {scalar} = {scalar} + input;")
                out.line(f"    state = {rng.randrange(ncases)};")
            else:
                out.line(f"    state = (input >> {rng.randrange(1, 4)}) & 7;")
            out.line("    break;")
        out.line("default:")
        out.line("    state = 0;")
        out.line("    break;")
        out.close()
        out.line(f"return state % {ncases};")
        out.close()

    def _shape_decision_ladder(self, out: CodeWriter, name: str) -> None:
        rng = self.rng
        depth = rng.randrange(3, 7)
        out.open(f"int {name}(int a, int b, int c)")
        for level in range(depth):
            threshold = self._const(0, 128)
            var = rng.choice(["a", "b", "c", "a + b", "b - c"])
            out.open(f"if ({var} {self._cmp()} {threshold})")
            result = rng.choice(
                [
                    f"return {self._const(0, 256)};",
                    f"return a {self._binop()} {self._const()};",
                    "return b - c;",
                    f"return {self._runtime_call('a', 'b')};",
                ]
            )
            out.line(result)
            out.close()
        callee = self._callee()
        if callee is not None and rng.random() < 0.5:
            out.line(f"return {self._call_expr(callee, 'a', rng.randrange(8))};")
        else:
            out.line(f"return (a + b + c) & {self._const(15, 255)};")
        out.close()

    def _shape_math_kernel(self, out: CodeWriter, name: str) -> None:
        rng = self.rng
        out.open(f"int {name}(int x, int y)")
        temps = rng.randrange(3, 7)
        prev = ["x", "y"]
        for t in range(temps):
            a = rng.choice(prev)
            b = rng.choice(prev)
            expr = rng.choice(
                [
                    f"{a} * {self._const(2, 12)} + {b}",
                    f"({a} {self._binop()} {b}) >> {rng.randrange(1, 4)}",
                    f"{a} % {self._const(3, 17)} + {b}",
                    f"{a} / {self._const(2, 9)} - {b}",
                    f"{self._runtime_call(a, b)}",
                ]
            )
            out.line(f"int t{t} = {expr};")
            prev.append(f"t{t}")
        out.line(f"{self.scalar()} = t{temps - 1};")
        out.line(f"return t{temps - 1} {self._binop()} t{rng.randrange(temps)};")
        out.close()

    def _shape_string_scan(self, out: CodeWriter, name: str) -> None:
        rng = self.rng
        array = self.char_array()
        out.open(f"int {name}(int n, int needle)")
        out.line("int count = 0;")
        out.line("int i;")
        bound = self.profile.array_size
        out.open(f"for (i = 0; i < {bound}; i = i + 1)")
        out.line(f"int c = {array}[i];")
        kind = rng.randrange(3)
        if kind == 0:
            out.open("if (c == (needle & 255))")
            out.line("count = count + 1;")
            out.close()
        elif kind == 1:
            out.open(f"if (c >= {rng.randrange(48, 65)} && c <= {rng.randrange(90, 123)})")
            out.line("count = count + 1;")
            out.close()
            out.line(f"{array}[i] = (c + n) & 255;")
        else:
            out.line(f"count = count + ((c >> {rng.randrange(1, 4)}) & 1);")
        out.close()
        out.line("return count;")
        out.close()

    def _shape_hash_mix(self, out: CodeWriter, name: str) -> None:
        rng = self.rng
        out.open(f"int {name}(int key)")
        out.line(f"int h = key ^ {self._const(1, 0x7FFF)};")
        rounds = rng.randrange(2, 5)
        for _ in range(rounds):
            shift = rng.randrange(1, 16)
            op = rng.choice(["+", "^"])
            direction = rng.choice(["<<", ">>"])
            out.line(f"h = h {op} ((h {direction} {shift}) & 0x7fffffff);")
            out.line(f"h = h & 0x7fffffff;")
        table = self.int_array()
        out.line(f"return {table}[h & {self.profile.array_size - 1}] ^ h;")
        out.close()

    def _shape_dispatcher(self, out: CodeWriter, name: str) -> None:
        rng = self.rng
        pool = list(self.functions[-40:])
        rng.shuffle(pool)
        callees = pool[: rng.randrange(2, 6)]
        out.open(f"int {name}(int selector, int arg)")
        out.line("int result = 0;")
        if not callees:
            out.line(f"result = arg * {self._const(2, 9)};")
        for position, callee in enumerate(callees):
            out.open(f"if ((selector & {1 << position}) != 0)")
            out.line(f"result = result + {self._call_expr(callee, 'arg', position)};")
            out.close()
        out.line(f"{self.scalar()} = result;")
        out.line("return result;")
        out.close()

    # ------------------------------------------------------------------
    def _arity(self, name: str) -> int:
        """All shapes take 1-3 int args; arity is determined by shape."""
        return _ARITY_BY_SHAPE[self._shape_table[name]]

    def _call_expr(self, callee: str, arg: str, salt: int) -> str:
        arity = self._arity(callee)
        if arity == 1:
            return f"{callee}({arg} + {salt})"
        if arity == 2:
            return f"{callee}({arg} & 31, {salt})"
        return f"{callee}({arg} & 15, {salt}, {arg} >> 1)"


_ARITY_BY_SHAPE = {
    "scan_loop": 2,
    "table_update": 2,
    "state_machine": 2,
    "decision_ladder": 3,
    "math_kernel": 2,
    "string_scan": 2,
    "hash_mix": 1,
    "dispatcher": 2,
}
