"""Assembly of the eight synthetic CINT95-like benchmarks.

Sizes are scaled to roughly 1/8 of the SPEC CINT95 binaries the paper
measured (see the paper's Table 1 static branch counts for the relative
ordering: gcc largest, then vortex, perl, go, m88ksim, ijpeg, li,
compress smallest).  ``build_suite(scale=...)`` lets tests shrink the
suite further.

Programs are deterministic: same name + scale -> identical binary.
Compiled programs are cached per process because most experiments sweep
parameters over the same eight programs.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.compiler import compile_and_link
from repro.compiler.driver import CompileOptions
from repro.linker.program import Program
from repro.workloads.cores import CORES
from repro.workloads.generator import CodeWriter, FunctionFactory, Profile

# Target static instruction counts at scale=1.0 (about 1/8 of the SPEC
# CINT95 binaries, preserving the suite's relative size ordering).
_TARGETS = {
    "compress": 2_600,
    "gcc": 26_000,
    "go": 8_200,
    "ijpeg": 6_400,
    "li": 4_300,
    "m88ksim": 5_800,
    "perl": 12_000,
    "vortex": 16_000,
}

# Shape-weight personalities per benchmark.
_PERSONALITIES: dict[str, dict[str, float]] = {
    "compress": {
        "scan_loop": 2.5, "table_update": 1.0, "state_machine": 0.3,
        "decision_ladder": 0.5, "math_kernel": 1.0, "string_scan": 2.0,
        "hash_mix": 3.0, "dispatcher": 0.3,
    },
    "gcc": {
        "scan_loop": 1.0, "table_update": 1.0, "state_machine": 2.5,
        "decision_ladder": 2.5, "math_kernel": 1.5, "string_scan": 1.0,
        "hash_mix": 0.5, "dispatcher": 1.5,
    },
    "go": {
        "scan_loop": 2.5, "table_update": 2.5, "state_machine": 0.5,
        "decision_ladder": 2.0, "math_kernel": 1.0, "string_scan": 0.2,
        "hash_mix": 0.3, "dispatcher": 0.7,
    },
    "ijpeg": {
        "scan_loop": 2.5, "table_update": 3.0, "state_machine": 0.2,
        "decision_ladder": 0.6, "math_kernel": 2.0, "string_scan": 0.2,
        "hash_mix": 0.4, "dispatcher": 0.5,
    },
    "li": {
        "scan_loop": 0.8, "table_update": 0.6, "state_machine": 1.5,
        "decision_ladder": 2.0, "math_kernel": 1.0, "string_scan": 0.8,
        "hash_mix": 0.5, "dispatcher": 2.0,
    },
    "m88ksim": {
        "scan_loop": 1.0, "table_update": 1.5, "state_machine": 3.0,
        "decision_ladder": 1.0, "math_kernel": 1.0, "string_scan": 0.3,
        "hash_mix": 0.8, "dispatcher": 1.0,
    },
    "perl": {
        "scan_loop": 0.8, "table_update": 0.6, "state_machine": 2.0,
        "decision_ladder": 1.5, "math_kernel": 0.8, "string_scan": 3.0,
        "hash_mix": 1.5, "dispatcher": 1.0,
    },
    "vortex": {
        "scan_loop": 1.5, "table_update": 2.0, "state_machine": 1.0,
        "decision_ladder": 2.0, "math_kernel": 0.8, "string_scan": 0.8,
        "hash_mix": 1.0, "dispatcher": 2.5,
    },
}

BENCHMARK_NAMES: tuple[str, ...] = (
    "compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex",
)

# Fixed compile cost of runtime library + core + main, calibrated by
# measurement (see tests/workloads); the factory fills the remainder
# with generated functions.
_BASE_INSTRUCTIONS = 700
_SEED_BASE = 0x5EED


def benchmark_profile(name: str, scale: float = 1.0) -> Profile:
    """The generation profile for one benchmark at a given scale."""
    if name not in _TARGETS:
        raise KeyError(f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}")
    target = max(int(_TARGETS[name] * scale), _BASE_INSTRUCTIONS + 200)
    return Profile(
        name=name,
        seed=_SEED_BASE + BENCHMARK_NAMES.index(name),
        target_instructions=target,
        weights=dict(_PERSONALITIES[name]),
        int_arrays=4 + BENCHMARK_NAMES.index(name) % 4,
        char_arrays=2,
        scalars=6,
    )


def benchmark_source(name: str, scale: float = 1.0) -> str:
    """Generate the full MiniC source text for one benchmark."""
    profile = benchmark_profile(name, scale)
    core_source, core_entry = CORES[name]
    factory = FunctionFactory(profile)

    out = CodeWriter()
    factory.emit_globals(out)
    out.line(core_source)

    function_budget = max(
        0,
        round(
            (profile.target_instructions - _BASE_INSTRUCTIONS)
            / profile.instructions_per_function
        ),
    )
    bodies = [factory.gen_function() for _ in range(function_budget)]
    for body in bodies:
        out.line(body)

    _emit_main(out, factory, core_entry)
    return out.text()


def _emit_main(out: CodeWriter, factory: FunctionFactory, core_entry: str) -> None:
    """main(): seed globals, run the core, sample generated functions,
    print a deterministic checksum."""
    profile = factory.profile
    out.open("void main()")
    out.line("int i;")
    for index in range(profile.int_arrays):
        array = f"ga_{profile.name}_{index}"
        out.open(f"for (i = 0; i < {profile.array_size}; i = i + 1)")
        out.line(f"{array}[i] = (i * {17 + 2 * index} + {index + 3}) & 1023;")
        out.close()
    for index in range(profile.char_arrays):
        array = f"gc_{profile.name}_{index}"
        out.open(f"for (i = 0; i < {profile.array_size}; i = i + 1)")
        out.line(f"{array}[i] = 32 + ((i * {7 + index}) & 63);")
        out.close()
    out.line(f"int core_result = {core_entry}();")
    out.line("print_int(core_result);")
    out.line("print_nl();")
    out.line("int check = core_result;")
    # Call a deterministic sample of the generated functions.
    rng = random.Random(profile.seed ^ 0xABCD)
    sample = factory.functions[:: max(1, len(factory.functions) // 96)][:96]
    for position, fn in enumerate(sample):
        arg = rng.randrange(0, 63)
        out.line(f"check = check ^ {factory._call_expr(fn, str(arg), position & 7)};")
    out.line("print_int(check);")
    out.line("print_nl();")
    out.close()


_PROGRAM_CACHE: dict[tuple[str, float, bool], Program] = {}


def build_benchmark(
    name: str,
    scale: float = 1.0,
    standardize_prologue: bool = False,
) -> Program:
    """Compile one synthetic benchmark to a linked Program (cached)."""
    key = (name, scale, standardize_prologue)
    if key not in _PROGRAM_CACHE:
        source = benchmark_source(name, scale)
        options = CompileOptions()
        if standardize_prologue:
            options = CompileOptions(
                codegen=replace(options.codegen, standardize_prologue=True)
            )
        _PROGRAM_CACHE[key] = compile_and_link(source, name=name, options=options)
    return _PROGRAM_CACHE[key]


def build_suite(scale: float = 1.0) -> dict[str, Program]:
    """Compile the full eight-benchmark suite."""
    return {name: build_benchmark(name, scale) for name in BENCHMARK_NAMES}


def clear_cache() -> None:
    """Drop cached programs (tests that tweak generation use this)."""
    _PROGRAM_CACHE.clear()
