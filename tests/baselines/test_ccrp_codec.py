"""Executable CCRP codec tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.ccrp_codec import (
    CcrpImage,
    ccrp_decode_all,
    ccrp_decode_line,
    ccrp_encode,
    ccrp_fetch_stats,
)
from repro.errors import CompressionError


class TestRoundTrip:
    def test_full_text_roundtrip(self, tiny_program):
        text = tiny_program.text_bytes()
        image = ccrp_encode(text)
        assert ccrp_decode_all(image) == text

    def test_single_line_independent_decode(self, tiny_program):
        text = tiny_program.text_bytes()
        image = ccrp_encode(text)
        # Decode a middle line without touching the others.
        line = image.line_count // 2
        expected = text[line * 32 : (line + 1) * 32]
        assert ccrp_decode_line(image, line) == expected

    def test_partial_final_line(self):
        text = bytes(range(48))  # 1.5 lines of 32
        image = ccrp_encode(text, line_bytes=32)
        assert image.line_count == 2
        assert ccrp_decode_line(image, 1) == text[32:]

    def test_out_of_range_line(self, tiny_program):
        image = ccrp_encode(tiny_program.text_bytes())
        with pytest.raises(CompressionError):
            ccrp_decode_line(image, image.line_count)

    @given(st.binary(min_size=1, max_size=512), st.sampled_from([8, 16, 32]))
    @settings(max_examples=25)
    def test_roundtrip_property(self, data, line_bytes):
        image = ccrp_encode(data, line_bytes)
        assert ccrp_decode_all(image) == data


class TestAccounting:
    def test_lat_is_monotone(self, tiny_program):
        image = ccrp_encode(tiny_program.text_bytes())
        assert list(image.lat) == sorted(image.lat)
        assert image.lat[0] == 0

    def test_line_bits_sum_to_blob(self, tiny_program):
        image = ccrp_encode(tiny_program.text_bytes())
        total = sum(image.line_bits(i) for i in range(image.line_count))
        assert total == 8 * len(image.blob)

    def test_size_includes_lat_and_table(self, tiny_program):
        image = ccrp_encode(tiny_program.text_bytes())
        assert image.compressed_bytes == (
            len(image.blob) + 3 * image.line_count + 256
        )

    def test_compresses_instruction_bytes(self, ijpeg_small):
        image = ccrp_encode(ijpeg_small.text_bytes())
        assert image.compression_ratio < 1.0


class TestFetchStats:
    def test_misses_incur_decode_work(self, tiny_program):
        stats = ccrp_fetch_stats(tiny_program, cache_size=256, line_bytes=32)
        assert stats.cache_misses > 0
        assert stats.decode_bits > 0
        assert stats.instructions > 0

    def test_bigger_cache_less_decode_work(self, ijpeg_small):
        small = ccrp_fetch_stats(ijpeg_small, cache_size=256)
        large = ccrp_fetch_stats(ijpeg_small, cache_size=4096)
        assert large.decode_bits <= small.decode_bits
