"""Huffman / CCRP baseline tests."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.baselines.huffman import (
    assign_codes,
    ccrp_compress,
    code_lengths,
    huffman_compress_bytes,
    huffman_roundtrip,
)


class TestCodeConstruction:
    def test_single_symbol(self):
        lengths = code_lengths(b"aaaa")
        assert lengths == {ord("a"): 1}

    def test_more_frequent_symbols_get_shorter_codes(self):
        data = b"a" * 100 + b"b" * 10 + b"c" * 1
        lengths = code_lengths(data)
        assert lengths[ord("a")] <= lengths[ord("b")] <= lengths[ord("c")]

    def test_kraft_inequality(self):
        data = bytes(range(256)) * 3 + b"common" * 50
        lengths = code_lengths(data)
        kraft = sum(2 ** -length for length in lengths.values())
        assert kraft <= 1.0 + 1e-9

    def test_canonical_codes_are_prefix_free(self):
        data = b"abracadabra" * 20
        codes = assign_codes(code_lengths(data))
        items = [(format(code, f"0{length}b")) for code, length in codes.values()]
        for a in items:
            for b in items:
                if a != b:
                    assert not b.startswith(a)

    @given(st.binary(min_size=1, max_size=2048))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        assert huffman_roundtrip(data)

    def test_payload_matches_entropy_bound(self):
        data = b"aabbbcccc" * 100
        result = huffman_compress_bytes(data)
        counts = Counter(data)
        import math

        entropy_bits = sum(
            -count * math.log2(count / len(data)) for count in counts.values()
        )
        assert result.payload_bits >= entropy_bits - 1e-6
        assert result.payload_bits <= entropy_bits + len(data)  # +1 bit/sym


class TestCcrpModel:
    def test_line_mode_costs_more_than_whole_text(self, tiny_program):
        data = tiny_program.text_bytes()
        whole = huffman_compress_bytes(data)
        lines = ccrp_compress(data, line_bytes=32)
        assert lines.compressed_bytes > whole.compressed_bytes

    def test_lat_overhead_scales_with_lines(self, tiny_program):
        data = tiny_program.text_bytes()
        small_lines = ccrp_compress(data, line_bytes=16)
        big_lines = ccrp_compress(data, line_bytes=64)
        assert small_lines.table_bytes > big_lines.table_bytes

    def test_instruction_bytes_compress(self, ijpeg_small):
        # On a realistically sized program the per-program table and LAT
        # amortize and CCRP nets a reduction (paper section 2.3).
        data = ijpeg_small.text_bytes()
        result = ccrp_compress(data)
        assert result.compressed_bytes < len(data)
