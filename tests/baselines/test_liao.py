"""Liao call-dictionary baseline tests."""

import pytest

from repro.baselines.liao import liao_compress
from repro.core import BaselineEncoding, compress
from repro.errors import CompressionError


class TestLiao:
    def test_compresses(self, tiny_program):
        result = liao_compress(tiny_program, 1)
        assert result.compressed_bytes < result.original_bytes
        assert 0 < result.compression_ratio < 1

    def test_codeword_words_validated(self, tiny_program):
        with pytest.raises(CompressionError):
            liao_compress(tiny_program, 3)

    def test_two_word_codewords_do_worse(self, ijpeg_small):
        one = liao_compress(ijpeg_small, 1)
        two = liao_compress(ijpeg_small, 2)
        assert one.compression_ratio <= two.compression_ratio

    def test_worse_than_sub_instruction_codewords(self, ijpeg_small):
        # The paper's core argument (sections 2.4, 4.1.1): whole-word
        # codewords cannot compress single instructions, which carry
        # about half the savings.
        liao = liao_compress(ijpeg_small, 1)
        ours = compress(ijpeg_small, BaselineEncoding())
        assert ours.compression_ratio < liao.compression_ratio

    def test_accounting_consistent(self, tiny_program):
        result = liao_compress(tiny_program, 1)
        assert result.compressed_bytes == result.stream_bytes + result.dictionary_bytes
        assert result.entries > 0
        assert result.replaced_occurrences >= result.entries
