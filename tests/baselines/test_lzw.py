"""LZW (Unix compress) tests."""

from hypothesis import given, settings, strategies as st

from repro.baselines.lzw import (
    HEADER_BYTES,
    LzwResult,
    lzw_compress,
    lzw_decompress,
    unix_compress_size,
)


class TestRoundTrip:
    def test_empty(self):
        assert lzw_decompress(lzw_compress(b"")) == b""

    def test_single_byte(self):
        assert lzw_decompress(lzw_compress(b"x")) == b"x"

    def test_repetitive_text(self):
        data = b"abcabcabcabcabc" * 100
        assert lzw_decompress(lzw_compress(data)) == data

    def test_kwkwk_case(self):
        # The classic pattern that exercises the code-not-yet-in-table path.
        data = b"abababababab"
        assert lzw_decompress(lzw_compress(data)) == data

    @given(st.binary(min_size=0, max_size=4096))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        assert lzw_decompress(lzw_compress(data)) == data

    def test_roundtrip_on_real_text_section(self, tiny_program):
        data = tiny_program.text_bytes()
        assert lzw_decompress(lzw_compress(data)) == data


class TestSizes:
    def test_repetitive_data_compresses(self):
        data = b"the quick brown fox " * 200
        assert unix_compress_size(data) < len(data) / 3

    def test_random_ish_data_does_not_explode(self):
        data = bytes((i * 197 + 13) & 0xFF for i in range(4096))
        # Worst case ~2x from 16-bit codes on 8-bit-entropy input.
        assert unix_compress_size(data) < 2 * len(data) + HEADER_BYTES

    def test_codes_grow_from_nine_bits(self):
        result = lzw_compress(b"ab")
        assert result.payload_bits == 2 * 9

    def test_header_counted(self):
        assert unix_compress_size(b"") == HEADER_BYTES

    def test_benchmark_text_compresses_well(self, tiny_program):
        data = tiny_program.text_bytes()
        assert unix_compress_size(data) < len(data)
