"""Mini-subroutine baseline tests."""

from repro.baselines.liao import liao_compress
from repro.baselines.minisub import _touches_lr, minisub_compress
from repro.isa.assembler import assemble_line


class TestLrSafety:
    def test_call_instructions_excluded(self):
        assert _touches_lr(assemble_line("bl +4").encode())
        assert _touches_lr(assemble_line("blr").encode())
        assert _touches_lr(assemble_line("bctrl").encode())

    def test_lr_moves_excluded(self):
        assert _touches_lr(assemble_line("mflr r0").encode())
        assert _touches_lr(assemble_line("mtlr r0").encode())

    def test_plain_instructions_allowed(self):
        assert not _touches_lr(assemble_line("addi r3,r3,1").encode())
        assert not _touches_lr(assemble_line("mtctr r12").encode())


class TestMiniSub:
    def test_compresses(self, ijpeg_small):
        result = minisub_compress(ijpeg_small)
        assert result.compressed_bytes < result.original_bytes
        assert result.subroutines > 0
        assert result.call_sites >= 2 * result.subroutines

    def test_call_overhead_makes_it_weakest(self, ijpeg_small):
        # Software-only abstraction pays one word per occurrence plus a
        # blr per subroutine, so it trails the hardware call-dictionary.
        mini = minisub_compress(ijpeg_small)
        liao = liao_compress(ijpeg_small, 1)
        assert liao.compression_ratio <= mini.compression_ratio + 0.02
