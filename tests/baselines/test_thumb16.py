"""Thumb/MIPS16-style dense re-encoding model tests."""

from repro.baselines.thumb16 import (
    MODE_SWITCH_BYTES,
    is_dense_encodable,
    select_low_registers,
    thumb16_model,
)
from repro.isa.assembler import assemble_line

ALL_REGS = frozenset(range(32))
LOW8 = frozenset(range(8))


def ins(text):
    return assemble_line(text)


class TestEncodability:
    def test_simple_rr_ops_encode(self):
        assert is_dense_encodable(ins("add r3,r4,r5"), ALL_REGS)
        assert is_dense_encodable(ins("mr r3,r4"), ALL_REGS)
        assert is_dense_encodable(ins("blr"), ALL_REGS)

    def test_register_constraint(self):
        assert not is_dense_encodable(ins("add r3,r4,r29"), LOW8)
        assert is_dense_encodable(ins("add r3,r4,r5"), LOW8)

    def test_immediate_width_limits(self):
        assert is_dense_encodable(ins("addi r3,r4,100"), ALL_REGS)
        assert not is_dense_encodable(ins("addi r3,r4,5000"), ALL_REGS)
        assert is_dense_encodable(ins("cmpwi r3,100"), ALL_REGS)
        assert not is_dense_encodable(ins("cmpwi cr1,r3,1"), ALL_REGS)

    def test_memory_offset_scaled_imm5(self):
        assert is_dense_encodable(ins("lwz r3,124(r4)"), ALL_REGS)  # 31*4
        assert not is_dense_encodable(ins("lwz r3,128(r4)"), ALL_REGS)
        assert not is_dense_encodable(ins("lwz r3,2(r4)"), ALL_REGS)  # misaligned
        assert is_dense_encodable(ins("lbz r3,31(r4)"), ALL_REGS)

    def test_branch_range(self):
        assert is_dense_encodable(ins("b +100"), ALL_REGS)
        assert not is_dense_encodable(ins("b +2000"), ALL_REGS)
        assert is_dense_encodable(ins("beq +30"), ALL_REGS)
        assert not is_dense_encodable(ins("beq +200"), ALL_REGS)

    def test_system_instructions_stay_wide(self):
        assert not is_dense_encodable(ins("mflr r0"), ALL_REGS)
        assert not is_dense_encodable(ins("mtlr r0"), ALL_REGS)

    def test_shift_idioms_encode(self):
        assert is_dense_encodable(ins("slwi r3,r4,2"), ALL_REGS)
        assert is_dense_encodable(ins("srawi r3,r4,4"), ALL_REGS)
        assert is_dense_encodable(ins("clrlwi r3,r4,24"), ALL_REGS)


class TestLowRegisterSelection:
    def test_picks_most_used(self, tiny_program):
        low = select_low_registers(tiny_program, 8)
        assert len(low) == 8
        # r3 (arguments/return value) is the unavoidable hot register.
        assert 3 in low

    def test_count_respected(self, tiny_program):
        assert len(select_low_registers(tiny_program, 4)) == 4


class TestModel:
    def test_model_reduces_size(self, ijpeg_small):
        result = thumb16_model(ijpeg_small)
        assert 0.5 < result.compression_ratio < 1.0
        assert result.dense_instructions > 0
        assert result.mode_switches >= 0

    def test_recompiled_mode_is_denser(self, ijpeg_small):
        reencode = thumb16_model(ijpeg_small)
        recompiled = thumb16_model(ijpeg_small, assume_recompiled=True)
        assert recompiled.compression_ratio < reencode.compression_ratio
        assert recompiled.dense_fraction >= reencode.dense_fraction

    def test_mode_switch_cost_respected(self, ijpeg_small):
        # Lower bound: even with zero switches, size >= 2 bytes/insn.
        result = thumb16_model(ijpeg_small)
        assert result.compressed_bytes >= 2 * result.total_instructions
        assert result.compressed_bytes >= (
            2 * result.dense_instructions
            + 4 * (result.total_instructions - result.dense_instructions)
        )

    def test_all_wide_program_costs_original_size(self, ijpeg_small):
        # With an empty dense register set almost nothing encodes (only
        # branch/blr-type register-free forms), so size stays near 4n.
        result = thumb16_model(ijpeg_small, low_register_count=0)
        assert result.compression_ratio > 0.85
