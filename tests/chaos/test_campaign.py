"""End-to-end chaos campaign: gate, determinism, plane coverage."""

import pytest

from repro.chaos.campaign import ChaosCampaignConfig, run_chaos_campaign
from repro.chaos.schedule import ChaosRule
from repro.errors import ServiceError
from repro.verify.outcomes import (
    ACCEPTABLE_JOB_OUTCOMES,
    JOB_OUTCOMES,
    gate_jobs,
    tally,
)

#: High rates on three planes so even a tiny campaign sees real faults.
#: No ``hang`` rule — a hang costs ``hang_seconds`` of wall clock.
RULES = (
    ChaosRule("disk", "torn_write", 0.3),
    ChaosRule("disk", "eio_read", 0.2),
    ChaosRule("worker", "kill", 0.25),
    ChaosRule("connection", "reset", 0.3),
)


def small_config(**overrides) -> ChaosCampaignConfig:
    defaults = dict(
        seed=20260807,
        jobs=8,
        benchmarks=["compress"],
        encodings=["nibble"],
        scale=0.2,
        rules=RULES,
        job_timeout=5.0,
        job_attempts=4,
        hang_seconds=1.0,
        shards=2,
        variants=4,
    )
    defaults.update(overrides)
    return ChaosCampaignConfig(**defaults)


@pytest.fixture(scope="module")
def two_runs():
    config = small_config()
    return run_chaos_campaign(config), run_chaos_campaign(config)


class TestCampaign:
    def test_gate_holds_under_three_fault_planes(self, two_runs):
        report, _ = two_runs
        assert report.ok, report.gate_violations
        assert report.counts["lost"] == 0
        assert report.counts["silently-diverged"] == 0
        assert sum(report.counts.values()) == 8
        assert set(report.counts) == set(JOB_OUTCOMES)

    def test_faults_were_actually_injected(self, two_runs):
        report, _ = two_runs
        assert report.injected, "campaign ran fault-free; rates too low"
        assert set(report.planes) == {"disk", "worker", "connection"}

    def test_same_seed_is_bit_identical(self, two_runs):
        first, second = two_runs
        assert first.fingerprint == second.fingerprint
        assert first.counts == second.counts
        assert first.injected == second.injected

    def test_report_document_shape(self, two_runs):
        document = two_runs[0].as_dict()
        assert document["gate"]["ok"] is True
        assert document["outcomes"]
        assert document["injected_faults"]
        assert isinstance(document["fingerprint"], str)


class TestConfig:
    def test_variants_create_distinct_specs(self):
        config = small_config(variants=4)
        scales = {config.spec_for(i)["scale"] for i in range(8)}
        assert len(scales) == 4

    def test_zero_jobs_rejected(self):
        with pytest.raises(ServiceError, match="at least one job"):
            run_chaos_campaign(small_config(jobs=0))


class TestOutcomeTaxonomy:
    def test_tally_keeps_zero_counts(self):
        counts = tally(["completed", "completed", "lost"], JOB_OUTCOMES)
        assert counts["completed"] == 2
        assert counts["lost"] == 1
        assert counts["silently-diverged"] == 0

    def test_tally_rejects_unknown_outcomes(self):
        with pytest.raises(ValueError, match="not in the taxonomy"):
            tally(["exploded"], JOB_OUTCOMES)

    def test_gate_flags_lost_and_diverged_only(self):
        clean = tally(["completed", "retried-then-completed",
                       "rejected-retryable"], JOB_OUTCOMES)
        assert gate_jobs(clean) == []
        dirty = tally(["lost", "silently-diverged"], JOB_OUTCOMES)
        violations = gate_jobs(dirty)
        assert len(violations) == 2
        assert any("lost" in v for v in violations)
        assert any("wrong artifacts" in v for v in violations)

    def test_acceptable_outcomes_exclude_the_gated_ones(self):
        assert "lost" not in ACCEPTABLE_JOB_OUTCOMES
        assert "silently-diverged" not in ACCEPTABLE_JOB_OUTCOMES
