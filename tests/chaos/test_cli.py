"""`repro-chaos` CLI tests: exit codes, report document, show."""

import json

from repro.tools.chaos_cli import main

RUN_ARGS = [
    "run", "--seed", "11", "--jobs", "4", "--benchmarks", "compress",
    "--scale", "0.2", "--variants", "2",
    "--fault", "disk:torn_write:0.3",
    "--fault", "worker:kill:0.2",
    "--fault", "connection:reset:0.3",
    "--job-timeout", "5", "--job-attempts", "4",
]


class TestRun:
    def test_gate_pass_exits_zero_and_writes_report(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        assert main([*RUN_ARGS, "--runs", "2", "-o", str(output)]) == 0
        document = json.loads(output.read_text())
        assert document["gate"]["ok"] is True
        assert document["outcomes"]["lost"] == 0
        assert document["outcomes"]["silently-diverged"] == 0
        assert document["determinism"] == {
            "checked": True,
            "identical": True,
            "fingerprints": [document["fingerprint"]],
        }
        assert document["runs"] == 2
        assert len(document["rules"]) == 3
        assert "gate: PASS" in capsys.readouterr().out

    def test_malformed_fault_rule_exits_2(self, capsys):
        assert main(["run", "--fault", "disk:torn_write"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_plane_exits_2(self, capsys):
        assert main(["run", "--fault", "gpu:melt:0.5"]) == 2
        assert "error" in capsys.readouterr().err


class TestShow:
    def test_round_trips_a_saved_report(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        assert main([*RUN_ARGS, "-o", str(output)]) == 0
        capsys.readouterr()
        assert main(["show", str(output)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document == json.loads(output.read_text())

    def test_missing_report_exits_2(self, tmp_path, capsys):
        assert main(["show", str(tmp_path / "absent.json")]) == 2
        assert "error" in capsys.readouterr().err
