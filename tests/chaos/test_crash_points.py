"""Crash-point property tests: kill after *every* write point, recover.

Two scenarios, each run once on a clean filesystem to count its write
points, then once per point with ``crash_after=n`` — the process "dies"
(:class:`SimulatedCrash`) right before write point ``n + 1`` — followed
by recovery on a fresh, healthy filesystem.  The property:

* **ledger** — every transition whose ``record()`` call returned (was
  acknowledged) is still visible after replay, recovery quarantines any
  torn tail instead of corrupting the log, and post-recovery appends
  land cleanly;
* **shard migration** — every artifact is readable after re-running
  the migration, no matter where the first attempt died.
"""

import hashlib

import pytest

from repro.chaos.filesystem import FaultyFilesystem, SimulatedCrash
from repro.server.ledger import JobLedger
from repro.server.sharding import ShardedArtifactCache, migrate_layout
from repro.service.cache import ArtifactCache


# ----------------------------------------------------------------------
# Ledger scenario
# ----------------------------------------------------------------------
def drive_ledger(directory, fs) -> list[tuple[str, str]]:
    """A ledger workload; returns the acknowledged (job, event) pairs.

    A pair enters the list only after ``record()`` returns, i.e. after
    the append was flushed — exactly the writes a crash may not lose.
    """
    acked: list[tuple[str, str]] = []
    ledger = JobLedger(directory, shards=2, fs=fs)
    try:
        for index in range(3):
            job_id = f"job-{index}"
            ledger.record(job_id, "submitted", tenant="t",
                          key=f"k{index}", spec={"benchmark": "go"})
            acked.append((job_id, "submitted"))
            ledger.record(job_id, "started")
            acked.append((job_id, "started"))
            if index < 2:
                ledger.record(job_id, "completed", cache_hit=False, meta={})
                acked.append((job_id, "completed"))
        ledger.compact()
    finally:
        ledger.close()
    return acked


def count_ledger_write_points(tmp_path) -> int:
    fs = FaultyFilesystem()
    drive_ledger(tmp_path / "clean", fs)
    return fs.write_ops


def test_ledger_scenario_has_many_write_points(tmp_path):
    assert count_ledger_write_points(tmp_path) >= 10


def test_ledger_survives_a_crash_after_every_write_point(tmp_path):
    total = count_ledger_write_points(tmp_path)
    crashes = 0
    for crash_after in range(total):
        directory = tmp_path / f"crash-{crash_after}"
        fs = FaultyFilesystem(crash_after=crash_after)
        try:
            acked = drive_ledger(directory, fs)
        except SimulatedCrash:
            crashes += 1
            acked = _acked_before_crash(crash_after)
        # -- recovery: a fresh process on a healthy disk ----------------
        recovered = JobLedger(directory)
        try:
            recovered.record("job-post", "submitted", spec={})
            records = recovered.replay()
            # Every acknowledged transition survived the crash.
            for job_id, event in acked:
                assert job_id in records, (crash_after, job_id)
                assert _reached(records[job_id], event), (
                    crash_after, job_id, event, records[job_id].status
                )
            # The post-recovery append landed on a clean prefix.
            assert records["job-post"].status == "submitted"
            # Recovery is idempotent once the tail is clean.
            assert recovered.recover() == 0
        finally:
            recovered.close()
    assert crashes == total  # every iteration actually died mid-run


def _acked_before_crash(crash_after: int) -> list[tuple[str, str]]:
    """Which records were acked before the simulated death.

    The scenario's write-point sequence is fixed: 3 points for the
    manifest ``write_atomic``, then one append per ``record()`` (the
    compaction rewrite comes after every append and acks nothing new).
    ``crash_after`` is exactly the number of points that completed, so
    an append is acked iff its point index fits inside that budget.
    """
    order = []
    for index in range(3):
        job_id = f"job-{index}"
        order.append((job_id, "submitted"))
        order.append((job_id, "started"))
        if index < 2:
            order.append((job_id, "completed"))
    acked = []
    spent = 3  # manifest.json write_atomic
    for job_id, event in order:
        spent += 1
        if spent <= crash_after:
            acked.append((job_id, event))
        else:
            break
    return acked


_ORDER = ("submitted", "started", "completed", "failed", "cancelled")


def _reached(record, event: str) -> bool:
    """Did the replayed record get at least as far as ``event``?"""
    return _ORDER.index(record.status) >= _ORDER.index(event)


def test_torn_tail_is_quarantined_not_replayed(tmp_path):
    directory = tmp_path / "torn"
    ledger = JobLedger(directory)
    ledger.record("job-ok", "submitted", spec={})
    ledger.close()
    with ledger.state_path.open("a") as handle:
        handle.write('{"job_id": "job-torn", "event": "subm')  # kill -9
    reopened = JobLedger(directory)
    try:
        moved = reopened.recover()
        assert moved > 0
        assert reopened.quarantine_path.read_text().startswith(
            '{"job_id": "job-torn"'
        )
        assert set(reopened.replay()) == {"job-ok"}
    finally:
        reopened.close()


# ----------------------------------------------------------------------
# Shard-migration scenario
# ----------------------------------------------------------------------
BLOBS = {
    hashlib.sha256(f"blob-{i}".encode()).hexdigest(): f"blob-{i}".encode() * 3
    for i in range(6)
}


def build_unsharded(root) -> None:
    cache = ArtifactCache(root)
    for key, blob in BLOBS.items():
        cache.put(key, blob, {"n": len(blob)})


def count_migration_write_points(tmp_path) -> int:
    root = tmp_path / "clean"
    build_unsharded(root)
    fs = FaultyFilesystem()
    migrate_layout(root, 3, fs)
    return fs.write_ops


def test_migration_survives_a_crash_after_every_write_point(tmp_path):
    total = count_migration_write_points(tmp_path)
    assert total >= len(BLOBS)  # at least one point per artifact moved
    crashes = 0
    for crash_after in range(total):
        root = tmp_path / f"crash-{crash_after}"
        build_unsharded(root)
        with pytest.raises(SimulatedCrash):
            migrate_layout(root, 3, FaultyFilesystem(crash_after=crash_after))
        crashes += 1
        # Recovery: simply open the sharded cache — it re-runs the
        # migration on a healthy filesystem.
        cache = ShardedArtifactCache(root, shards=3)
        for key, blob in BLOBS.items():
            entry = cache.get(key)
            assert entry is not None, (crash_after, key)
            assert entry.blob == blob
    assert crashes == total
