"""FaultyFilesystem tests: scheduled disk faults and crash points."""

import errno

import pytest

from repro.chaos.filesystem import FaultyFilesystem, SimulatedCrash
from repro.chaos.schedule import ChaosRule, ChaosSchedule


def always(fault: str, **kwargs) -> FaultyFilesystem:
    return FaultyFilesystem(
        ChaosSchedule(1, (ChaosRule("disk", fault, 1.0),), **kwargs)
    )


class TestScheduledFaults:
    def test_torn_write_lands_a_prefix(self, tmp_path):
        fs = always("torn_write", torn_fraction=0.5)
        target = tmp_path / "entry.rcc"
        fs.write_atomic(target, b"0123456789")
        assert target.read_bytes() == b"01234"
        assert fs.faults == [("torn_write", "entry.rcc", "write")]

    def test_enospc_raises_and_leaves_target_untouched(self, tmp_path):
        fs = always("enospc")
        target = tmp_path / "entry.rcc"
        target.write_bytes(b"old")
        with pytest.raises(OSError) as excinfo:
            fs.write_atomic(target, b"new")
        assert excinfo.value.errno == errno.ENOSPC
        assert target.read_bytes() == b"old"

    def test_eio_read_is_raised(self, tmp_path):
        fs = always("eio_read")
        target = tmp_path / "entry.rcc"
        target.write_bytes(b"payload")
        with pytest.raises(OSError) as excinfo:
            fs.read_bytes(target)
        assert excinfo.value.errno == errno.EIO

    def test_fsync_loss_silently_drops_an_append(self, tmp_path):
        fs = always("fsync_loss")
        target = tmp_path / "state.jsonl"
        handle = fs.open_append(target)
        handle.write('{"a": 1}\n')  # reports success
        handle.flush()
        handle.close()
        assert not target.exists() or target.read_bytes() == b""

    def test_torn_append_lands_half_a_line_without_newline(self, tmp_path):
        fs = always("torn_write")
        target = tmp_path / "state.jsonl"
        handle = fs.open_append(target)
        line = '{"job_id": "job-1", "event": "submitted"}\n'
        handle.write(line)
        handle.close()
        raw = target.read_text()
        assert raw == line[: len(line) // 2]
        assert not raw.endswith("\n")

    def test_no_schedule_means_no_faults(self, tmp_path):
        fs = FaultyFilesystem()
        target = tmp_path / "entry.rcc"
        fs.write_atomic(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert fs.faults == []


class TestCrashPoints:
    def test_crash_is_not_catchable_as_exception(self, tmp_path):
        fs = FaultyFilesystem(crash_after=0)

        def recovery_code_that_swallows_everything():
            try:
                fs.write_atomic(tmp_path / "f", b"x")
            except Exception:  # noqa: BLE001 - the point of the test
                return "handled"
            return "ok"

        with pytest.raises(SimulatedCrash):
            recovery_code_that_swallows_everything()

    def test_write_atomic_has_three_crash_points(self, tmp_path):
        clean = FaultyFilesystem()
        clean.write_atomic(tmp_path / "f", b"payload")
        assert clean.write_ops == 3  # create-temp, write-temp, replace

    @pytest.mark.parametrize("crash_after", [0, 1, 2])
    def test_crash_mid_atomic_write_never_tears_the_target(
        self, tmp_path, crash_after
    ):
        target = tmp_path / "entry.rcc"
        target.write_bytes(b"old-and-complete")
        fs = FaultyFilesystem(crash_after=crash_after)
        with pytest.raises(SimulatedCrash):
            fs.write_atomic(target, b"new")
        # Atomicity: the old content survives every crash point.
        assert target.read_bytes() == b"old-and-complete"

    def test_crash_mid_append_leaves_a_torn_half_line(self, tmp_path):
        target = tmp_path / "state.jsonl"
        fs = FaultyFilesystem(crash_after=0)
        handle = fs.open_append(target)
        line = '{"job_id": "job-1", "event": "submitted"}\n'
        with pytest.raises(SimulatedCrash):
            handle.write(line)
        raw = target.read_text()
        assert raw == line[: len(line) // 2]  # the mess recovery must fix

    def test_surviving_write_points_count_up(self, tmp_path):
        fs = FaultyFilesystem(crash_after=10)
        fs.write_atomic(tmp_path / "a", b"x")
        fs.append_bytes(tmp_path / "b", b"y")
        fs.mkdir(tmp_path / "d")
        assert fs.write_ops == 5  # 3 atomic + 1 append + 1 mkdir
