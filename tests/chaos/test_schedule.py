"""Chaos-schedule tests: determinism, rates, rule parsing."""

import pytest

from repro.chaos.schedule import (
    ChaosRule,
    ChaosSchedule,
    parse_rule,
)
from repro.errors import ServiceError

SITES = ["aa11", "bb22", "cc33"]
OPS = ["read", "write", "append"]


def decisions(schedule, count=40):
    return [
        schedule.decide("disk", SITES[i % 3], OPS[i % 2])
        for i in range(count)
    ]


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        rules = (ChaosRule("disk", "torn_write", 0.3),
                 ChaosRule("disk", "eio_read", 0.2))
        first = decisions(ChaosSchedule(1997, rules))
        second = decisions(ChaosSchedule(1997, rules))
        assert first == second
        assert any(fault is not None for fault in first)

    def test_different_seeds_differ(self):
        rules = (ChaosRule("disk", "torn_write", 0.5),)
        assert decisions(ChaosSchedule(1, rules)) != decisions(
            ChaosSchedule(2, rules)
        )

    def test_sites_have_independent_counters(self):
        """Interleaving traffic on another site must not perturb this
        site's decision sequence — the counters are per (plane, site,
        op), not global."""
        rules = (ChaosRule("disk", "torn_write", 0.4),)
        alone = ChaosSchedule(7, rules)
        isolated = [alone.decide("disk", "aa11", "write") for _ in range(20)]
        noisy = ChaosSchedule(7, rules)
        interleaved = []
        for _ in range(20):
            noisy.decide("disk", "zz99", "write")  # unrelated traffic
            interleaved.append(noisy.decide("disk", "aa11", "write"))
        assert isolated == interleaved


class TestRates:
    def test_rate_zero_never_fires(self):
        schedule = ChaosSchedule(3, (ChaosRule("disk", "enospc", 0.0),))
        assert all(fault is None for fault in decisions(schedule, 100))
        assert schedule.injections == []

    def test_rate_one_always_fires(self):
        schedule = ChaosSchedule(3, (ChaosRule("disk", "enospc", 1.0),))
        assert all(fault == "enospc" for fault in decisions(schedule, 50))
        assert len(schedule.injections) == 50

    def test_rate_is_roughly_honored(self):
        schedule = ChaosSchedule(11, (ChaosRule("disk", "eio_read", 0.25),))
        fired = sum(
            schedule.decide("disk", f"site-{i}", "read") is not None
            for i in range(800)
        )
        assert 120 < fired < 280  # 0.25 ± generous slack over 800 draws

    def test_match_restricts_sites(self):
        schedule = ChaosSchedule(
            5, (ChaosRule("disk", "enospc", 1.0, match="state"),)
        )
        assert schedule.decide("disk", "state.jsonl", "append") == "enospc"
        assert schedule.decide("disk", "aa11.rcc", "write") is None


class TestBookkeeping:
    def test_injected_counts_and_planes(self):
        rules = (ChaosRule("disk", "enospc", 1.0),
                 ChaosRule("worker", "kill", 1.0),
                 ChaosRule("connection", "reset", 0.0))
        schedule = ChaosSchedule(9, rules)
        schedule.decide("disk", "x", "write")
        schedule.decide("disk", "x", "write")
        schedule.decide("worker", "k", "execute")
        assert schedule.injected_counts() == {
            "disk:enospc": 2, "worker:kill": 1,
        }
        # rate-0 rules don't count as an active plane
        assert schedule.active_planes() == ("disk", "worker")

    def test_injections_carry_site_and_sequence(self):
        schedule = ChaosSchedule(9, (ChaosRule("disk", "enospc", 1.0),))
        schedule.decide("disk", "aa.rcc", "write")
        schedule.decide("disk", "aa.rcc", "write")
        last = schedule.injections[-1]
        assert (last.site, last.op, last.sequence) == ("aa.rcc", "write", 1)
        assert "disk:enospc" in last.describe()

    def test_describe_lists_rules(self):
        schedule = ChaosSchedule(
            42, (ChaosRule("disk", "torn_write", 0.05, match="rcc"),)
        )
        assert "seed 42" in schedule.describe()
        assert "disk:torn_write:0.05:rcc" in schedule.describe()


class TestRuleValidation:
    def test_unknown_plane_rejected(self):
        with pytest.raises(ServiceError, match="unknown chaos plane"):
            ChaosRule("gpu", "kill", 0.1)

    def test_fault_must_belong_to_plane(self):
        with pytest.raises(ServiceError, match="unknown disk fault"):
            ChaosRule("disk", "kill", 0.1)

    def test_rate_bounds(self):
        with pytest.raises(ServiceError, match="rate"):
            ChaosRule("disk", "enospc", 1.5)
        with pytest.raises(ServiceError, match="rate"):
            ChaosRule("disk", "enospc", -0.1)


class TestParseRule:
    def test_basic_form(self):
        rule = parse_rule("worker:kill:0.05")
        assert (rule.plane, rule.fault, rule.rate, rule.match) == (
            "worker", "kill", 0.05, ""
        )

    def test_with_match(self):
        rule = parse_rule("disk:torn_write:0.2:state.jsonl")
        assert rule.match == "state.jsonl"

    def test_round_trips_through_describe(self):
        text = "connection:reset:0.1"
        assert parse_rule(text).describe() == text

    def test_malformed_rejected(self):
        with pytest.raises(ServiceError, match="malformed chaos rule"):
            parse_rule("disk:enospc")
        with pytest.raises(ServiceError, match="bad chaos rate"):
            parse_rule("disk:enospc:lots")
