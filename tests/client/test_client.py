"""Resilient-client tests: backoff, breaker, Retry-After, real wire."""

import random

import pytest

from repro.client import (
    CircuitBreaker,
    CircuitOpenError,
    ReproClient,
    RetryPolicy,
)
from repro.errors import TransientError
from repro.perf.loadgen import HostedServer
from repro.server.app import ServerConfig
from repro.server.quotas import QuotaSpec


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_full_jitter_stays_inside_the_window(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=2.0)
        rng = random.Random(1)
        for attempt in range(8):
            ceiling = min(2.0, 0.1 * (2 ** attempt))
            for _ in range(20):
                assert 0.0 <= policy.delay(attempt, rng) <= ceiling

    def test_delays_are_seed_deterministic(self):
        policy = RetryPolicy()
        first = [policy.delay(k, random.Random(7)) for k in range(5)]
        second = [policy.delay(k, random.Random(7)) for k in range(5)]
        assert first == second

    def test_retry_after_is_honored_and_capped(self):
        policy = RetryPolicy(base_delay=0.05, retry_after_cap=5.0)
        assert policy.honor_retry_after("2.5") == 2.5
        assert policy.honor_retry_after("600") == 5.0  # hostile server
        assert policy.honor_retry_after("-3") == 0.0
        # Garbage falls back to the base delay, not a crash.
        assert policy.honor_retry_after(None) == 0.05
        assert policy.honor_retry_after("soon") == 0.05

    def test_zero_attempts_rejected(self):
        from repro.client import ClientError
        with pytest.raises(ClientError, match="max_attempts"):
            RetryPolicy(max_attempts=0)


class TestCircuitBreaker:
    def breaker(self, clock) -> CircuitBreaker:
        return CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                              clock=clock)

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"  # threshold not reached
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.fast_failures == 1

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else still fails fast

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_full_timeout(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half-open"


class TestIdempotencyKey:
    def test_stable_across_dict_ordering(self):
        a = {"benchmark": "compress", "scale": 0.2}
        b = {"scale": 0.2, "benchmark": "compress"}
        assert ReproClient.idempotency_key(a) == ReproClient.idempotency_key(b)

    def test_distinct_specs_get_distinct_keys(self):
        a = {"benchmark": "compress", "scale": 0.2}
        b = {"benchmark": "compress", "scale": 0.3}
        assert ReproClient.idempotency_key(a) != ReproClient.idempotency_key(b)


class TestAgainstARealServer:
    SPEC = {"benchmark": "compress", "encoding": "nibble", "scale": 0.2,
            "verify": "stream"}

    @pytest.fixture(scope="class")
    def hosted(self, tmp_path_factory):
        config = ServerConfig(
            host="127.0.0.1", port=0,
            cache_dir=tmp_path_factory.mktemp("client-cache"),
            shards=2, concurrency=2,
            quota=QuotaSpec(rate=500.0, burst=1000),
        )
        with HostedServer(config) as server:
            yield server

    def test_run_job_round_trips(self, hosted):
        outcome = ReproClient(hosted.address, "alpha").run_job(dict(self.SPEC))
        assert outcome.outcome == "completed"
        assert outcome.data  # artifact bytes came back
        assert outcome.key
        assert outcome.events[-1]["kind"] == "completed"

    def test_idempotent_resubmission_deduplicates(self, hosted):
        client = ReproClient(hosted.address, "alpha")
        first = client.run_job(dict(self.SPEC))
        second = client.run_job(dict(self.SPEC))
        assert second.deduplicated
        assert second.job_id == first.job_id
        assert second.data == first.data

    def test_client_span_and_server_share_one_trace(self, hosted):
        from repro import observe
        from repro.observe.recorder import Recorder

        # A fresh spec variant: an idempotency-dedup hit would hand
        # back the first submission's job (and its trace id).
        spec = dict(self.SPEC, scale=0.22)
        with Recorder() as recorder:
            outcome = ReproClient(hosted.address, "alpha").run_job(spec)
        assert outcome.outcome == "completed"
        assert outcome.trace_id and len(outcome.trace_id) == 32
        # The recorded client.job span and the server's acknowledged
        # trace id are the same trace — one id across the wire.
        roots = [span for span in recorder.spans
                 if span.name == "client.job"]
        assert roots and roots[-1].trace_id == outcome.trace_id

    def test_refused_connection_is_transient_then_breaker_opens(self):
        # A port with no listener: every attempt is a network error.
        client = ReproClient(
            ("127.0.0.1", 1),
            policy=RetryPolicy(max_attempts=2, base_delay=0.0),
            breaker=CircuitBreaker(failure_threshold=1, reset_timeout=60.0),
            sleep=lambda _: None,
        )
        with pytest.raises(TransientError):
            client._request("GET", "/healthz")
        assert client.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client._request("GET", "/healthz")
