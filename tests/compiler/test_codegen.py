"""Structural code-generation tests: prologue/epilogue shape, roles,
SDTS template properties."""

from repro.compiler import compile_and_link
from repro.compiler.driver import CompileOptions, compile_source
from repro.compiler.codegen import CodegenConfig
from repro.linker.objfile import InsnRole


def function_ops(program, name):
    start, end = program.function_ranges()[name]
    return program.text[start:end]


class TestPrologueEpilogue:
    SOURCE = """
    int g;
    int helper(int x) { return x + 1; }
    int caller(int x) {
        int a = helper(x);
        int b = helper(a);
        return a + b;
    }
    void main() { g = caller(3); }
    """

    def test_caller_has_gcc_shape_prologue(self):
        program = compile_and_link(self.SOURCE, name="t")
        ops = function_ops(program, "caller")
        prologue = [ti for ti in ops if ti.role is InsnRole.PROLOGUE]
        mnemonics = [ti.mnemonic for ti in prologue]
        assert mnemonics[0] == "stwu"  # stack frame allocation first
        assert "mfspr" in mnemonics  # mflr r0
        assert mnemonics.count("stw") >= 2  # LR save + callee-saved saves

    def test_epilogue_mirrors_prologue(self):
        program = compile_and_link(self.SOURCE, name="t")
        ops = function_ops(program, "caller")
        epilogue = [ti for ti in ops if ti.role is InsnRole.EPILOGUE]
        mnemonics = [ti.mnemonic for ti in epilogue]
        assert mnemonics[-1] == "bclr"  # blr last
        assert "mtspr" in mnemonics  # mtlr r0
        assert "addi" in mnemonics  # stack pointer restore

    def test_leaf_without_state_has_no_frame(self):
        source = "int tiny(int x) { return x + 1; } void main() { tiny(1); }"
        program = compile_and_link(source, name="t")
        ops = function_ops(program, "tiny")
        assert all(ti.role is not InsnRole.PROLOGUE for ti in ops)
        mnemonics = [ti.mnemonic for ti in ops]
        # addi computes the result, an optional mr homes it in r3, blr.
        assert mnemonics[0] == "addi"
        assert mnemonics[-1] == "bclr"
        assert set(mnemonics) <= {"addi", "or", "bclr"}
        assert "stwu" not in mnemonics

    def test_standardized_prologue_saves_all_callee_saved(self):
        options = CompileOptions(codegen=CodegenConfig(standardize_prologue=True))
        module = compile_source(self.SOURCE, options=options)
        caller = module.function("caller")
        prologue_stores = [
            op for op in caller.ops
            if op.role is InsnRole.PROLOGUE and op.mnemonic == "stw"
        ]
        # 18 callee-saved registers (r14-r31) + the LR save.
        assert len(prologue_stores) == 19


class TestTemplateReuse:
    def test_identical_fragments_produce_identical_words(self):
        # The SDTS property the paper builds on: same source shape ->
        # same instruction encodings (modulo allocation, which matches
        # here because the functions are isomorphic).
        source = """
        int g1;
        int g2;
        int f1(int a, int b) { return a * 3 + b; }
        int f2(int a, int b) { return a * 3 + b; }
        void main() { g1 = f1(1, 2); g2 = f2(1, 2); }
        """
        program = compile_and_link(source, name="t")
        ranges = program.function_ranges()
        words1 = [ti.word for ti in function_ops(program, "f1")]
        words2 = [ti.word for ti in function_ops(program, "f2")]
        assert words1 == words2

    def test_li_vs_lis_ori_selection(self):
        source = """
        int g;
        void main() { g = 1103515245; }
        """
        program = compile_and_link(source, name="t")
        mnemonics = [ti.mnemonic for ti in function_ops(program, "main")]
        assert "addis" in mnemonics and "ori" in mnemonics

    def test_immediate_forms_chosen(self):
        source = """
        int g;
        int f(int x) { return x * 10 + 3; }
        void main() { g = f(g); }
        """
        program = compile_and_link(source, name="t")
        mnemonics = {ti.mnemonic for ti in function_ops(program, "f")}
        assert "mulli" in mnemonics
        assert "addi" in mnemonics
        assert "mullw" not in mnemonics


class TestAbiDiscipline:
    def test_r0_never_base_register(self):
        # RA=0 in D-form addressing means literal zero; codegen must
        # never use r0 as a base for loads/stores.
        source = """
        int a[64];
        int f(int v[], int i) { return v[i] + a[i]; }
        void main() { print_int(f(a, 3)); }
        """
        program = compile_and_link(source, name="t")
        for ti in program.text:
            if ti.mnemonic in ("lwz", "lbz", "stw", "stb", "lhz", "sth",
                               "stwu", "lwzu"):
                _, base = ti.instruction.operand("D(rA)")
                assert base != 0, f"{ti.mnemonic} uses r0 as base"

    def test_reserved_registers_never_written(self):
        # r1 only by stwu/addi in prologue/epilogue; r2/r13 never.
        source = """
        int a[64];
        void main() { int i; for (i = 0; i < 64; i = i + 1) { a[i] = i; } }
        """
        program = compile_and_link(source, name="t")
        for ti in program.text:
            spec = ti.instruction.spec
            for operand, value in zip(spec.operands, ti.instruction.values):
                if operand.name == "rT" and spec.mnemonic not in (
                    "stw", "stwu", "stb", "sth",  # rS lives in that field
                ):
                    assert value not in (2, 13)
