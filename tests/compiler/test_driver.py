"""Compilation driver tests."""

import pytest

from repro.compiler import compile_and_link, compile_source
from repro.compiler.driver import CompileOptions
from repro.compiler.codegen import CodegenConfig
from repro.errors import CompileError
from repro.machine.simulator import run_program

SOURCE = """
int total;
void main() {
    int i;
    for (i = 0; i < 5; i = i + 1) { total = total + i; }
    print_int(total);
}
"""


class TestDriver:
    def test_main_required(self):
        with pytest.raises(CompileError, match="main"):
            compile_and_link("int helper() { return 1; }")

    def test_runtime_functions_tagged_library(self):
        module = compile_source(SOURCE)
        by_name = {fn.name: fn for fn in module.functions}
        assert by_name["print_int"].is_library
        assert not by_name["main"].is_library

    def test_runtime_can_be_excluded(self):
        module = compile_source(
            "int f(int x) { return x; }",
            options=CompileOptions(include_runtime=False),
        )
        assert [fn.name for fn in module.functions] == ["f"]

    def test_globals_become_data_items(self):
        module = compile_source("int g = 7; int a[3] = {1, 2}; void main() { }")
        symbols = {item.symbol: item for item in module.data}
        assert symbols["g"].initial == (7).to_bytes(4, "big")
        assert symbols["a"].size == 12
        assert symbols["a"].initial == b"\x00\x00\x00\x01\x00\x00\x00\x02"

    def test_char_initializer_bytes(self):
        module = compile_source('char s[4] = "ab"; void main() { }')
        item = next(i for i in module.data if i.symbol == "s")
        assert item.initial == b"ab\x00"
        assert item.align == 1

    def test_opt_levels_agree_on_output(self):
        o2 = compile_and_link(SOURCE, name="o2")
        o0 = compile_and_link(
            SOURCE, name="o0", options=CompileOptions(opt_level=0)
        )
        assert len(o0.text) >= len(o2.text)
        assert run_program(o0).output_text == run_program(o2).output_text

    def test_standardize_prologue_roundtrip(self):
        options = CompileOptions(
            codegen=CodegenConfig(standardize_prologue=True)
        )
        program = compile_and_link(SOURCE, name="std", options=options)
        assert run_program(program).output_text == "10"

    def test_compile_error_carries_line(self):
        with pytest.raises(CompileError, match="line 3"):
            compile_and_link("void main() {\n int x = 1;\n x = y;\n}")
