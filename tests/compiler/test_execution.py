"""End-to-end language semantics: compile MiniC, run, check output.

These tests pin the C-like semantics of every operator and statement by
observing actual simulated execution — the strongest check that the
lexer/parser/lowering/optimizer/regalloc/codegen stack is sound.
"""

import pytest

from repro.compiler import compile_and_link
from repro.machine.simulator import run_program


def run_main(body, prelude=""):
    source = f"{prelude}\nvoid main() {{ {body} }}"
    program = compile_and_link(source, name="exec-test")
    return run_program(program).output_text


def returns(expression, prelude=""):
    out = run_main(f"print_int({expression});", prelude)
    return int(out)


class TestArithmetic:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 - 3 - 2", 5),
            ("100 / 7", 14),
            ("-100 / 7", -14),
            ("100 % 7", 2),
            ("-100 % 7", -2),
            ("5 & 3", 1),
            ("5 | 3", 7),
            ("5 ^ 3", 6),
            ("~0", -1),
            ("-(3 + 4)", -7),
            ("1 << 10", 1024),
            ("-16 >> 2", -4),
            ("2000000000 + 2000000000", -294967296),  # 32-bit wrap
        ],
    )
    def test_expression(self, expr, expected):
        assert returns(expr) == expected

    def test_large_constants(self):
        assert returns("0x7fffffff") == 2147483647
        assert returns("1103515245") == 1103515245

    def test_division_truncates_toward_zero_at_runtime(self):
        # Computed from variables so the optimizer cannot fold it.
        prelude = "int a; int b;"
        out = run_main(
            "a = 0 - 100; b = 7; print_int(a / b); __outc(32); print_int(a % b);",
            prelude,
        )
        assert out == "-14 -2"


class TestComparisons:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("3 < 4", 1),
            ("4 < 3", 0),
            ("3 <= 3", 1),
            ("3 == 3", 1),
            ("3 != 3", 0),
            ("-1 < 0", 1),
            ("!(3 < 4)", 0),
            ("!0", 1),
        ],
    )
    def test_comparison_values(self, expr, expected):
        prelude = "int x;"
        # Route through a variable to exercise the runtime compare path.
        assert returns(expr) == expected

    def test_short_circuit_and(self):
        prelude = """
        int calls;
        int bump() { calls = calls + 1; return 1; }
        """
        out = run_main(
            "calls = 0; if (0 && bump()) { } print_int(calls);", prelude
        )
        assert out == "0"

    def test_short_circuit_or(self):
        prelude = """
        int calls;
        int bump() { calls = calls + 1; return 1; }
        """
        out = run_main(
            "calls = 0; if (1 || bump()) { } print_int(calls);", prelude
        )
        assert out == "0"

    def test_logical_value_materialization(self):
        prelude = "int a;"
        out = run_main("a = 5; print_int(a > 3 && a < 10);", prelude)
        assert out == "1"


class TestControlFlow:
    def test_if_else_ladder(self):
        prelude = """
        int classify(int x) {
            if (x < 0) { return -1; }
            else if (x == 0) { return 0; }
            else { return 1; }
        }
        """
        out = run_main(
            "print_int(classify(0-5)); print_int(classify(0)); print_int(classify(9));",
            prelude,
        )
        assert out == "-101"

    def test_while_loop(self):
        out = run_main("int i = 0; int s = 0; while (i < 5) { s = s + i; i = i + 1; } print_int(s);")
        assert out == "10"

    def test_do_while_executes_at_least_once(self):
        out = run_main("int i = 10; int n = 0; do { n = n + 1; } while (i < 5); print_int(n);")
        assert out == "1"

    def test_for_with_break_continue(self):
        out = run_main(
            "int s = 0; int i;"
            "for (i = 0; i < 10; i = i + 1) {"
            "  if (i == 3) { continue; }"
            "  if (i == 6) { break; }"
            "  s = s + i;"
            "} print_int(s);"
        )
        assert out == "12"  # 0+1+2+4+5

    def test_nested_loops_break_inner_only(self):
        out = run_main(
            "int n = 0; int i; int j;"
            "for (i = 0; i < 3; i = i + 1) {"
            "  for (j = 0; j < 10; j = j + 1) {"
            "    if (j == 2) { break; }"
            "    n = n + 1;"
            "  }"
            "} print_int(n);"
        )
        assert out == "6"

    def test_ternary(self):
        prelude = "int a;"
        out = run_main("a = 7; print_int(a > 5 ? 100 : 200);", prelude)
        assert out == "100"


class TestSwitch:
    DENSE = """
    int pick(int x) {
        switch (x) {
            case 0: return 10;
            case 1: return 11;
            case 2: return 12;
            case 3: return 13;
            case 4: return 14;
            default: return -1;
        }
    }
    """

    def test_dense_switch_uses_jump_table(self):
        program = compile_and_link(
            self.DENSE + "void main() { print_int(pick(3)); }", name="sw"
        )
        mnemonics = {ti.mnemonic for ti in program.text if ti.function == "pick"}
        assert "bcctr" in mnemonics, "dense switch should compile to a jump table"
        assert len(program.jump_table_slots) >= 5

    def test_dense_switch_values(self):
        out = run_main(
            "int i; for (i = 0 - 1; i < 6; i = i + 1) { print_int(pick(i)); __outc(32); }",
            self.DENSE,
        )
        assert out == "-1 10 11 12 13 14 -1 "

    def test_sparse_switch_compare_chain(self):
        prelude = """
        int pick(int x) {
            switch (x) {
                case 1: return 100;
                case 50: return 200;
                case 1000: return 300;
            }
            return -1;
        }
        """
        program = compile_and_link(
            prelude + "void main() { print_int(pick(50)); }", name="sw2"
        )
        mnemonics = {ti.mnemonic for ti in program.text if ti.function == "pick"}
        assert "bcctr" not in mnemonics
        out = run_main(
            "print_int(pick(1)); print_int(pick(50)); print_int(pick(1000)); print_int(pick(2));",
            prelude,
        )
        assert out == "100200300-1"

    def test_fallthrough(self):
        prelude = """
        int count(int x) {
            int n = 0;
            switch (x) {
                case 2: n = n + 1;
                case 1: n = n + 1;
                case 0: n = n + 1;
            }
            return n;
        }
        """
        out = run_main("print_int(count(2)); print_int(count(1)); print_int(count(0));", prelude)
        assert out == "321"


class TestArraysAndGlobals:
    def test_global_scalar_read_write(self):
        out = run_main("g = 5; g = g * 3; print_int(g);", "int g;")
        assert out == "15"

    def test_int_array_indexing(self):
        prelude = "int a[8];"
        out = run_main(
            "int i; for (i = 0; i < 8; i = i + 1) { a[i] = i * i; } print_int(a[5]);",
            prelude,
        )
        assert out == "25"

    def test_char_array_byte_semantics(self):
        prelude = "char c[4];"
        out = run_main("c[0] = 300; print_int(c[0]);", prelude)
        assert out == "44"  # 300 & 0xff

    def test_initializers(self):
        prelude = 'int a[4] = {7, 8}; char s[8] = "ab"; int g = -3;'
        out = run_main(
            "print_int(a[0] + a[1] + a[2]); print_int(s[1]); print_int(g);",
            prelude,
        )
        assert out == "1598-3"

    def test_array_parameter_read_write(self):
        prelude = """
        int buf[8];
        void fill(int a[], int n, int v) {
            int i;
            for (i = 0; i < n; i = i + 1) { a[i] = v + i; }
        }
        """
        out = run_main("fill(buf, 8, 100); print_int(buf[7]);", prelude)
        assert out == "107"

    def test_char_array_parameter(self):
        prelude = """
        char text[8] = "hello";
        int first(char s[]) { return s[0]; }
        """
        assert returns("first(text)", prelude) == 104

    def test_compound_assign_on_array_element(self):
        prelude = "int a[4];"
        out = run_main("a[2] = 10; a[2] += 5; a[2] *= 2; print_int(a[2]);", prelude)
        assert out == "30"


class TestFunctions:
    def test_recursion(self):
        prelude = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        """
        assert returns("fact(10)", prelude) == 3628800

    def test_mutual_recursion(self):
        prelude = """
        int is_odd(int n);
        """
        # MiniC has no prototypes; define in order instead.
        prelude = """
        int is_even_helper(int n, int parity) {
            if (n == 0) { return parity; }
            return is_even_helper(n - 1, 1 - parity);
        }
        """
        assert returns("is_even_helper(10, 1)", prelude) == 1

    def test_eight_arguments(self):
        prelude = """
        int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
            return a + b + c + d + e + f + g + h;
        }
        """
        assert returns("sum8(1, 2, 3, 4, 5, 6, 7, 8)", prelude) == 36

    def test_deep_call_chain_preserves_locals(self):
        prelude = """
        int leaf(int x) { return x * 2; }
        int mid(int x) {
            int keep = x + 1;
            int r = leaf(x);
            return keep + r;
        }
        """
        assert returns("mid(10)", prelude) == 31

    def test_void_function_call(self):
        prelude = """
        int g;
        void set_g(int v) { g = v; }
        """
        out = run_main("set_g(9); print_int(g);", prelude)
        assert out == "9"

    def test_fall_off_end_returns_zero(self):
        prelude = "int f(int x) { if (x > 0) { return 7; } }"
        assert returns("f(0 - 1)", prelude) == 0


class TestRuntimeLibrary:
    def test_print_int_negative(self):
        assert run_main("print_int(0 - 12345);") == "-12345"

    def test_print_str(self):
        assert run_main("print_str(m);", 'char m[8] = "ok!";') == "ok!"

    def test_library_functions(self):
        out = run_main(
            "print_int(abs(0 - 9)); print_int(min(3, 5)); print_int(max(3, 5));"
            "print_int(gcd(12, 18)); print_int(ipow(2, 10)); print_int(popcount(255));"
        )
        assert out == "935610248"

    def test_sort_and_sum(self):
        prelude = "int a[6] = {5, 2, 9, 1, 7, 3};"
        out = run_main(
            "sort_i(a, 6); print_int(a[0]); print_int(a[5]); print_int(sum_i(a, 6));",
            prelude,
        )
        assert out == "1927"

    def test_rand_is_deterministic(self):
        out1 = run_main("srand(7); print_int(rand()); print_int(rand());")
        out2 = run_main("srand(7); print_int(rand()); print_int(rand());")
        assert out1 == out2
