"""Lexer tests."""

import pytest

from repro.compiler.lexer import tokenize
from repro.errors import CompileError


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo while whileish")
        assert [t.kind for t in tokens[:-1]] == ["kw", "ident", "kw", "ident"]

    def test_decimal_and_hex_numbers(self):
        tokens = tokenize("42 0x2a 0")
        assert [t.value for t in tokens[:-1]] == [42, 42, 0]

    def test_char_literals(self):
        tokens = tokenize("'a' '\\n' '\\0'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 0]

    def test_string_literal_with_escape(self):
        tokens = tokenize('"hi\\n"')
        assert tokens[0].kind == "string"
        assert tokens[0].text == "hi\n"

    def test_operators_longest_match(self):
        assert texts("a <<= b >> c >= d") == ["a", "<<=", "b", ">>", "c", ">=", "d"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_comments(self):
        assert texts("a // comment\nb /* multi\nline */ c") == ["a", "b", "c"]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"abc')

    def test_unterminated_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* forever")

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("a $ b")

    def test_bad_escape(self):
        with pytest.raises(CompileError):
            tokenize("'\\q'")

    def test_hex_prefix_without_digits(self):
        with pytest.raises(CompileError, match="hex"):
            tokenize("0X")
        with pytest.raises(CompileError, match="hex"):
            tokenize("int x = 0x;")
