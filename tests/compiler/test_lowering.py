"""Direct IR-shape tests for AST lowering."""

import pytest

from repro.compiler import ir
from repro.compiler.lowering import lower_unit
from repro.compiler.parser import parse
from repro.compiler.semantics import check
from repro.errors import CompileError


def lower(source):
    unit = parse(source)
    info = check(unit)
    return {fn.name: fn for fn in lower_unit(unit, info)}


def ops_of(fn, kind):
    return [instr for instr in fn.instrs if isinstance(instr, kind)]


class TestExpressions:
    def test_immediates_stay_immediate(self):
        fn = lower("int f(int x) { return x + 3; }")["f"]
        adds = ops_of(fn, ir.Bin)
        assert adds and adds[0].b == ir.Imm(3)

    def test_commutative_imm_moves_right(self):
        fn = lower("int f(int x) { return 3 + x; }")["f"]
        adds = ops_of(fn, ir.Bin)
        assert adds[0].op == "add"
        assert isinstance(adds[0].a, ir.VReg)
        assert adds[0].b == ir.Imm(3)

    def test_compare_fuses_into_cbr(self):
        fn = lower("int f(int x) { if (x < 3) { return 1; } return 0; }")["f"]
        cbrs = ops_of(fn, ir.CBr)
        assert len(cbrs) == 1
        # Condition inverted to branch around the then-block.
        assert cbrs[0].op == "ge"
        assert cbrs[0].b == ir.Imm(3)
        assert not ops_of(fn, ir.CmpSet)

    def test_compare_as_value_uses_cmpset(self):
        fn = lower("int f(int x, int y) { return x < y; }")["f"]
        assert len(ops_of(fn, ir.CmpSet)) == 1

    def test_imm_on_left_of_compare_swaps(self):
        fn = lower("int f(int x) { if (3 < x) { return 1; } return 0; }")["f"]
        cbr = ops_of(fn, ir.CBr)[0]
        # 3 < x becomes x > 3 (then inverted to x <= 3 for the skip).
        assert cbr.b == ir.Imm(3)
        assert cbr.op == "le"


class TestShortCircuit:
    def test_and_emits_two_branches(self):
        fn = lower(
            "int f(int a, int b) { if (a && b) { return 1; } return 0; }"
        )["f"]
        assert len(ops_of(fn, ir.CBr)) == 2

    def test_logical_value_materializes_zero_one(self):
        fn = lower("int f(int a, int b) { return a && b; }")["f"]
        copies = [
            c for c in ops_of(fn, ir.Copy)
            if c.src in (ir.Imm(0), ir.Imm(1))
        ]
        assert len(copies) >= 2


class TestMemory:
    def test_global_scalar_uses_loadsym(self):
        fn = lower("int g; int f() { return g; }")["f"]
        loads = ops_of(fn, ir.LoadSym)
        assert loads and loads[0].symbol == "g" and loads[0].index is None

    def test_global_array_uses_indexed_loadsym(self):
        fn = lower("int a[8]; int f(int i) { return a[i]; }")["f"]
        loads = ops_of(fn, ir.LoadSym)
        assert loads[0].scale == 4 and loads[0].size == 4

    def test_char_array_scale_one(self):
        fn = lower("char s[8]; int f(int i) { return s[i]; }")["f"]
        loads = ops_of(fn, ir.LoadSym)
        assert loads[0].scale == 1 and loads[0].size == 1

    def test_array_param_uses_loadidx(self):
        fn = lower("int f(int v[], int i) { return v[i]; }")["f"]
        assert ops_of(fn, ir.LoadIdx)
        assert not ops_of(fn, ir.LoadSym)

    def test_array_argument_materializes_address(self):
        source = """
        int a[8];
        int g(int v[]) { return v[0]; }
        int f() { return g(a); }
        """
        fn = lower(source)["f"]
        addrs = ops_of(fn, ir.AddrOf)
        assert addrs and addrs[0].symbol == "a"

    def test_compound_array_assign_reuses_index(self):
        fn = lower("int a[8]; void f(int i) { a[i] += 2; }")["f"]
        load = ops_of(fn, ir.LoadSym)[0]
        store = ops_of(fn, ir.StoreSym)[0]
        assert load.index == store.index  # same pinned vreg

    def test_assign_to_array_param_rejected(self):
        with pytest.raises(CompileError, match="array"):
            lower("void f(int v[]) { v = v; }")


class TestControlLowering:
    def test_while_shape(self):
        fn = lower("void f(int n) { while (n > 0) { n = n - 1; } }")["f"]
        labels = ops_of(fn, ir.Label)
        branches = ops_of(fn, ir.Br)
        assert len(labels) >= 2  # head + exit
        assert any(isinstance(i, ir.CBr) for i in fn.instrs)
        assert branches  # back edge

    def test_switch_lowered_to_ir_switch(self):
        source = """
        void f(int x) {
            switch (x) { case 1: break; case 2: break; default: break; }
        }
        """
        fn = lower(source)["f"]
        switches = ops_of(fn, ir.Switch)
        assert len(switches) == 1
        assert sorted(v for v, _ in switches[0].cases) == [1, 2]

    def test_implicit_return_appended(self):
        fn = lower("void f() { }")["f"]
        assert isinstance(fn.instrs[-1], ir.Ret)
        assert fn.instrs[-1].src is None

    def test_int_function_implicit_return_zero(self):
        fn = lower("int f(int x) { if (x) { return 1; } }")["f"]
        rets = ops_of(fn, ir.Ret)
        assert rets[-1].src == ir.Imm(0)

    def test_break_targets_innermost_loop(self):
        source = """
        void f() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 3; j = j + 1) {
                    if (j == 1) { break; }
                }
            }
        }
        """
        fn = lower(source)["f"]
        # Two loops + the break: at least three distinct branch targets.
        targets = {i.target for i in fn.instrs if isinstance(i, (ir.Br, ir.CBr))}
        assert len(targets) >= 3


class TestCalls:
    def test_void_call_has_no_dest(self):
        source = """
        void g(int x) { }
        void f() { g(1); }
        """
        fn = lower(source)["f"]
        calls = ops_of(fn, ir.Call)
        assert calls[0].dest is None

    def test_value_call_gets_dest(self):
        source = """
        int g(int x) { return x; }
        int f() { return g(1) + 2; }
        """
        fn = lower(source)["f"]
        calls = ops_of(fn, ir.Call)
        assert calls[0].dest is not None

    def test_builtin_out_lowered(self):
        fn = lower("void f(int x) { __out(x); __outc(10); __halt(); }")["f"]
        assert len(ops_of(fn, ir.Out)) == 1
        assert len(ops_of(fn, ir.OutC)) == 1
        assert len(ops_of(fn, ir.Halt)) == 1
