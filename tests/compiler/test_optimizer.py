"""Optimizer pass tests on hand-built IR."""

from repro.compiler import ir
from repro.compiler.optimizer import optimize_function


def make_function(instrs, next_vreg=32):
    return ir.IRFunction(
        name="t",
        nparams=0,
        param_is_array=(),
        returns_value=True,
        instrs=instrs,
        next_vreg=next_vreg,
    )


def v(n):
    return ir.VReg(n)


class TestConstantFolding:
    def test_fold_add(self):
        fn = make_function(
            [ir.Bin("add", v(0), ir.Imm(2), ir.Imm(3)), ir.Ret(v(0))]
        )
        optimize_function(fn)
        assert fn.instrs[0] == ir.Ret(ir.Imm(5))

    def test_fold_wraps_32_bits(self):
        fn = make_function(
            [ir.Bin("mul", v(0), ir.Imm(1 << 20), ir.Imm(1 << 20)), ir.Ret(v(0))]
        )
        optimize_function(fn)
        # (2^40) mod 2^32 == 0
        assert fn.instrs[0] == ir.Ret(ir.Imm(0))

    def test_fold_c_division(self):
        fn = make_function(
            [ir.Bin("div", v(0), ir.Imm(-7), ir.Imm(2)), ir.Ret(v(0))]
        )
        optimize_function(fn)
        assert fn.instrs[0] == ir.Ret(ir.Imm(-3))

    def test_division_by_zero_not_folded(self):
        fn = make_function(
            [ir.Bin("div", v(0), ir.Imm(1), ir.Imm(0)), ir.Ret(v(0))]
        )
        optimize_function(fn)
        assert isinstance(fn.instrs[0], ir.Bin)

    def test_fold_compare(self):
        fn = make_function(
            [ir.CmpSet("lt", v(0), ir.Imm(1), ir.Imm(2)), ir.Ret(v(0))]
        )
        optimize_function(fn)
        assert fn.instrs[0] == ir.Ret(ir.Imm(1))


class TestAlgebraic:
    def test_add_zero(self):
        fn = make_function(
            [ir.Copy(v(1), ir.Imm(7)), ir.Bin("add", v(0), v(1), ir.Imm(0)),
             ir.Ret(v(0))]
        )
        optimize_function(fn)
        assert fn.instrs == [ir.Ret(ir.Imm(7))]

    def test_mul_power_of_two_becomes_shift(self):
        fn = make_function(
            [ir.Bin("mul", v(0), v(5), ir.Imm(8)), ir.Ret(v(0))], next_vreg=6
        )
        optimize_function(fn)
        assert fn.instrs[0] == ir.Bin("shl", v(0), v(5), ir.Imm(3))

    def test_mul_zero(self):
        fn = make_function(
            [ir.Bin("mul", v(0), v(5), ir.Imm(0)), ir.Ret(v(0))], next_vreg=6
        )
        optimize_function(fn)
        assert fn.instrs[0] == ir.Ret(ir.Imm(0))

    def test_sub_from_zero_becomes_neg(self):
        fn = make_function(
            [ir.Bin("sub", v(0), ir.Imm(0), v(5)), ir.Ret(v(0))], next_vreg=6
        )
        optimize_function(fn)
        assert fn.instrs[0] == ir.Un("neg", v(0), v(5))


class TestCopyPropagation:
    def test_propagates_within_block(self):
        fn = make_function(
            [
                ir.Copy(v(0), ir.Imm(3)),
                ir.Bin("add", v(1), v(0), ir.Imm(4)),
                ir.Ret(v(1)),
            ]
        )
        optimize_function(fn)
        assert fn.instrs == [ir.Ret(ir.Imm(7))]

    def test_does_not_propagate_across_referenced_labels(self):
        # "L" is a real merge point (branched to from elsewhere), so the
        # copy fact v0=v9 must not survive into its block.
        fn = make_function(
            [
                ir.CBr("eq", v(8), ir.Imm(0), "L"),
                ir.Copy(v(0), v(9)),
                ir.Label("L"),
                ir.Bin("add", v(1), v(0), ir.Imm(1)),
                ir.Ret(v(1)),
            ],
            next_vreg=10,
        )
        optimize_function(fn)
        add = [i for i in fn.instrs if isinstance(i, ir.Bin)]
        assert add and add[0].a == v(0)


class TestDeadCode:
    def test_removes_unused_pure_instruction(self):
        fn = make_function(
            [ir.Bin("add", v(0), ir.Imm(1), ir.Imm(2)), ir.Ret(ir.Imm(0))]
        )
        optimize_function(fn)
        assert fn.instrs == [ir.Ret(ir.Imm(0))]

    def test_keeps_stores_and_calls(self):
        fn = make_function(
            [
                ir.Call(v(0), "g", []),
                ir.StoreSym(ir.Imm(1), "x", None, 1, 4),
                ir.Ret(ir.Imm(0)),
            ]
        )
        optimize_function(fn)
        assert any(isinstance(i, ir.Call) for i in fn.instrs)
        assert any(isinstance(i, ir.StoreSym) for i in fn.instrs)

    def test_removes_unreferenced_labels(self):
        fn = make_function([ir.Label("dead"), ir.Ret(ir.Imm(0))])
        optimize_function(fn)
        assert fn.instrs == [ir.Ret(ir.Imm(0))]


class TestBranchSimplification:
    def test_constant_true_branch_folds_to_taken_path(self):
        # CBr(1<2) -> Br L; the dead Ret(0) disappears; the Br-to-next
        # and the unreferenced label collapse: only Ret(1) remains.
        fn = make_function(
            [
                ir.CBr("lt", ir.Imm(1), ir.Imm(2), "L"),
                ir.Ret(ir.Imm(0)),
                ir.Label("L"),
                ir.Ret(ir.Imm(1)),
            ]
        )
        optimize_function(fn)
        assert fn.instrs == [ir.Ret(ir.Imm(1))]

    def test_constant_false_branch_removed(self):
        fn = make_function(
            [
                ir.CBr("gt", ir.Imm(1), ir.Imm(2), "L"),
                ir.Label("L"),
                ir.Ret(ir.Imm(0)),
            ]
        )
        optimize_function(fn)
        assert not any(isinstance(i, ir.CBr) for i in fn.instrs)

    def test_jump_to_next_removed(self):
        fn = make_function(
            [ir.Br("L"), ir.Label("L"), ir.Ret(ir.Imm(0))]
        )
        optimize_function(fn)
        assert not any(isinstance(i, ir.Br) for i in fn.instrs)

    def test_unreachable_code_removed(self):
        fn = make_function(
            [ir.Ret(ir.Imm(1)), ir.Bin("add", v(0), ir.Imm(1), ir.Imm(1)),
             ir.Label("L"), ir.Ret(ir.Imm(2))]
        )
        # Make the label referenced so it survives.
        fn.instrs.insert(0, ir.CBr("eq", v(9), ir.Imm(0), "L"))
        fn.next_vreg = 10
        optimize_function(fn)
        assert not any(isinstance(i, ir.Bin) for i in fn.instrs)
