"""Parser tests."""

import pytest

from repro.compiler import ast_nodes as ast
from repro.compiler.parser import parse
from repro.errors import CompileError


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse("int x;")
        assert unit.globals[0].name == "x"
        assert unit.globals[0].array_size is None

    def test_global_array_with_initializer(self):
        unit = parse("int a[4] = {1, 2, -3};")
        assert unit.globals[0].init == [1, 2, -3]

    def test_char_array_string_initializer(self):
        unit = parse('char s[8] = "hi";')
        assert unit.globals[0].init == [104, 105, 0]

    def test_string_too_long(self):
        with pytest.raises(CompileError):
            parse('char s[2] = "hi";')

    def test_char_scalar_rejected(self):
        with pytest.raises(CompileError):
            parse("char c;")

    def test_function_with_array_param(self):
        unit = parse("int f(int a[], int n) { return a[n]; }")
        fn = unit.functions[0]
        assert fn.params[0].type.is_array
        assert not fn.params[1].type.is_array

    def test_void_params(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions[0].params == []

    def test_too_many_params(self):
        params = ", ".join(f"int p{i}" for i in range(9))
        with pytest.raises(CompileError):
            parse(f"int f({params}) {{ return 0; }}")


class TestStatements:
    def test_if_else_chain(self):
        unit = parse("int f(int x) { if (x) { return 1; } else { return 2; } }")
        stmt = unit.functions[0].body.body[0]
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_for_with_declaration(self):
        unit = parse("void f() { for (int i = 0; i < 4; i = i + 1) { } }")
        stmt = unit.functions[0].body.body[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.LocalDecl)

    def test_do_while(self):
        unit = parse("void f() { int i = 0; do { i = i + 1; } while (i < 3); }")
        assert isinstance(unit.functions[0].body.body[1], ast.DoWhile)

    def test_switch_with_default(self):
        unit = parse(
            """
            void f(int x) {
                switch (x) {
                    case 1: break;
                    case 2: break;
                    default: break;
                }
            }
            """
        )
        stmt = unit.functions[0].body.body[0]
        assert isinstance(stmt, ast.Switch)
        assert [c.value for c in stmt.cases] == [1, 2]
        assert stmt.default is not None

    def test_duplicate_case_rejected(self):
        with pytest.raises(CompileError):
            parse("void f(int x) { switch (x) { case 1: break; case 1: break; } }")

    def test_multi_declarator(self):
        unit = parse("void f() { int a = 1, b = 2; }")
        block = unit.functions[0].body.body[0]
        assert isinstance(block, ast.Block)
        assert len(block.body) == 2


class TestExpressions:
    def _expr(self, text):
        unit = parse(f"int f(int a, int b, int c) {{ return {text}; }}")
        stmt = unit.functions[0].body.body[0]
        assert isinstance(stmt, ast.Return)
        return stmt.value

    def test_precedence_mul_over_add(self):
        expr = self._expr("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_shift_below_compare(self):
        expr = self._expr("a << 2 < b")
        assert expr.op == "<"

    def test_parentheses(self):
        expr = self._expr("(a + b) * c")
        assert expr.op == "*"

    def test_ternary(self):
        assert isinstance(self._expr("a ? b : c"), ast.Conditional)

    def test_logical_short_circuit_nodes(self):
        expr = self._expr("a && b || c")
        assert isinstance(expr, ast.Logical) and expr.op == "||"

    def test_unary_chain(self):
        expr = self._expr("-~!a")
        assert isinstance(expr, ast.Unary) and expr.op == "-"

    def test_prefix_increment_desugars(self):
        unit = parse("void f() { int i = 0; ++i; }")
        stmt = unit.functions[0].body.body[1]
        assert isinstance(stmt.expr, ast.Assign)
        assert stmt.expr.op == "+"

    def test_compound_assignment(self):
        unit = parse("int g; void f() { g += 3; }")
        assign = unit.functions[0].body.body[0].expr
        assert assign.op == "+"

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(CompileError):
            parse("void f() { 3 = 4; }")

    def test_array_index_requires_name(self):
        with pytest.raises(CompileError):
            parse("void f() { (1 + 2)[0]; }")

    def test_call_with_too_many_args(self):
        args = ", ".join(["1"] * 9)
        with pytest.raises(CompileError):
            parse(f"void f() {{ g({args}); }}")
