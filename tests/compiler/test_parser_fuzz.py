"""Parser/checker robustness: malformed input must fail cleanly.

Whatever garbage arrives, the front end may only raise
:class:`~repro.errors.CompileError` — never an internal exception.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.lexer import tokenize
from repro.compiler.parser import parse
from repro.compiler.semantics import check
from repro.errors import CompileError

_TOKENS = st.sampled_from(
    [
        "int", "char", "void", "if", "else", "while", "for", "return",
        "switch", "case", "default", "break", "continue", "do",
        "x", "y", "main", "f", "0", "1", "42", "'a'", '"s"',
        "+", "-", "*", "/", "%", "=", "==", "<", ">", "&&", "||",
        "(", ")", "{", "}", "[", "]", ";", ",", ":", "?", "!", "~",
    ]
)


class TestLexerRobustness:
    @given(st.text(max_size=200))
    @settings(max_examples=200)
    def test_arbitrary_text_lexes_or_raises_compile_error(self, text):
        try:
            tokens = tokenize(text)
        except CompileError:
            return
        assert tokens[-1].kind == "eof"

    @given(st.binary(max_size=100))
    @settings(max_examples=50)
    def test_binary_soup(self, blob):
        try:
            tokenize(blob.decode("latin-1"))
        except CompileError:
            pass


class TestParserRobustness:
    @given(st.lists(_TOKENS, max_size=40))
    @settings(max_examples=300)
    def test_token_soup_never_crashes(self, tokens):
        source = " ".join(tokens)
        try:
            unit = parse(source)
        except CompileError:
            return
        # If it parsed, semantic checking must also fail cleanly or pass.
        try:
            check(unit)
        except CompileError:
            pass

    @given(st.integers(1, 60))
    @settings(max_examples=30)
    def test_deeply_nested_expressions(self, depth):
        expr = "(" * depth + "1" + ")" * depth
        unit = parse(f"int f() {{ return {expr}; }}")
        check(unit)

    def test_unbalanced_braces(self):
        with pytest.raises(CompileError):
            parse("void f() { if (1) {")

    def test_statement_where_declaration_expected(self):
        with pytest.raises(CompileError):
            parse("return 3;")
