"""Register allocator tests."""

from repro.compiler import ir
from repro.compiler.regalloc import (
    NONVOLATILE_POOL,
    VOLATILE_POOL,
    allocate,
)


def v(n):
    return ir.VReg(n)


def make_function(instrs, nparams=0, next_vreg=64):
    return ir.IRFunction(
        name="t",
        nparams=nparams,
        param_is_array=(False,) * nparams,
        returns_value=True,
        instrs=instrs,
        next_vreg=next_vreg,
    )


class TestBasicAllocation:
    def test_disjoint_lifetimes_can_share_registers(self):
        # v0 dies before v1 is born; both should fit in registers.
        fn = make_function(
            [
                ir.Copy(v(0), ir.Imm(1)),
                ir.Bin("add", v(1), v(0), ir.Imm(1)),
                ir.Copy(v(2), ir.Imm(2)),
                ir.Bin("add", v(3), v(2), ir.Imm(1)),
                ir.Ret(v(3)),
            ]
        )
        allocation = allocate(fn)
        for reg in (0, 1, 2, 3):
            assert allocation.loc(v(reg)).kind == "reg"

    def test_overlapping_lifetimes_get_distinct_registers(self):
        instrs = [ir.Copy(v(i), ir.Imm(i)) for i in range(6)]
        use_all = ir.Bin("add", v(6), v(0), v(1))
        instrs.append(use_all)
        for i in range(2, 6):
            instrs.append(ir.Bin("add", v(6), v(6), v(i)))
        instrs.append(ir.Ret(v(6)))
        fn = make_function(instrs)
        allocation = allocate(fn)
        live_regs = [allocation.loc(v(i)) for i in range(6)]
        regs = [loc.index for loc in live_regs if loc.kind == "reg"]
        assert len(regs) == len(set(regs)), "overlapping vregs must not share"

    def test_spills_when_pressure_exceeds_registers(self):
        count = len(VOLATILE_POOL) + len(NONVOLATILE_POOL) + 4
        instrs = [ir.Copy(v(i), ir.Imm(i)) for i in range(count)]
        total = v(count)
        instrs.append(ir.Copy(total, ir.Imm(0)))
        for i in range(count):
            instrs.append(ir.Bin("add", total, total, v(i)))
        instrs.append(ir.Ret(total))
        fn = make_function(instrs, next_vreg=count + 1)
        allocation = allocate(fn)
        assert allocation.num_spill_slots >= 4


class TestCallConstraints:
    def test_value_live_across_call_gets_nonvolatile(self):
        fn = make_function(
            [
                ir.Copy(v(0), ir.Imm(42)),
                ir.Call(v(1), "g", []),
                ir.Bin("add", v(2), v(0), v(1)),
                ir.Ret(v(2)),
            ]
        )
        allocation = allocate(fn)
        loc = allocation.loc(v(0))
        assert loc.kind == "stack" or loc.index in NONVOLATILE_POOL
        assert allocation.has_calls

    def test_value_dead_at_call_can_be_volatile(self):
        fn = make_function(
            [
                ir.Copy(v(0), ir.Imm(42)),
                ir.Call(v(1), "g", [v(0)]),
                ir.Ret(v(1)),
            ]
        )
        allocation = allocate(fn)
        assert allocation.loc(v(0)).kind == "reg"
        assert allocation.loc(v(0)).index in VOLATILE_POOL

    def test_out_intrinsic_constrains_like_call(self):
        fn = make_function(
            [
                ir.Copy(v(0), ir.Imm(1)),
                ir.Out(ir.Imm(5)),
                ir.Bin("add", v(1), v(0), ir.Imm(1)),
                ir.Ret(v(1)),
            ]
        )
        allocation = allocate(fn)
        loc = allocation.loc(v(0))
        assert loc.kind == "stack" or loc.index in NONVOLATILE_POOL

    def test_used_nonvolatile_sorted_high_to_low(self):
        instrs = []
        for i in range(4):
            instrs.append(ir.Copy(v(i), ir.Imm(i)))
        instrs.append(ir.Call(None, "g", []))
        total = v(4)
        instrs.append(ir.Copy(total, ir.Imm(0)))
        for i in range(4):
            instrs.append(ir.Bin("add", total, total, v(i)))
        instrs.append(ir.Ret(total))
        fn = make_function(instrs, next_vreg=5)
        allocation = allocate(fn)
        assert allocation.used_nonvolatile == sorted(
            allocation.used_nonvolatile, reverse=True
        )
        # GCC-style: allocation starts at r31.
        assert allocation.used_nonvolatile[0] == 31


class TestLiveness:
    def test_loop_carried_value_stays_live(self):
        # v0 is written before the loop and read inside it; its interval
        # must cover the whole loop so it cannot share with v1.
        fn = make_function(
            [
                ir.Copy(v(0), ir.Imm(10)),
                ir.Label("head"),
                ir.Bin("add", v(1), v(1), v(0)),
                ir.CBr("lt", v(1), ir.Imm(100), "head"),
                ir.Ret(v(1)),
            ]
        )
        allocation = allocate(fn)
        loc0 = allocation.loc(v(0))
        loc1 = allocation.loc(v(1))
        assert loc0 != loc1

    def test_parameters_allocated_at_entry(self):
        fn = make_function(
            [ir.Ret(v(0))], nparams=2, next_vreg=2
        )
        allocation = allocate(fn)
        assert v(0) in allocation.location
        assert v(1) in allocation.location
