"""Semantic checker tests."""

import pytest

from repro.compiler.parser import parse
from repro.compiler.semantics import check
from repro.errors import CompileError


def check_source(source):
    return check(parse(source))


class TestSymbols:
    def test_valid_program(self):
        info = check_source("int g; int f(int x) { return x + g; }")
        assert "g" in info.globals
        assert "f" in info.functions

    def test_undeclared_variable(self):
        with pytest.raises(CompileError, match="undeclared"):
            check_source("int f() { return y; }")

    def test_global_redefinition(self):
        with pytest.raises(CompileError, match="redefinition"):
            check_source("int g; int g;")

    def test_function_shadows_global_rejected(self):
        with pytest.raises(CompileError, match="redefinition"):
            check_source("int f; int f() { return 0; }")

    def test_local_shadowing_allowed_across_scopes(self):
        check_source("int f(int x) { { int y = 1; } { int y = 2; } return x; }")

    def test_local_redefinition_same_scope(self):
        with pytest.raises(CompileError, match="redefinition"):
            check_source("int f() { int a = 1; int a = 2; return a; }")

    def test_builtin_name_collision(self):
        with pytest.raises(CompileError):
            check_source("int __out(int x) { return x; }")


class TestTypes:
    def test_array_used_as_value_rejected(self):
        with pytest.raises(CompileError, match="array"):
            check_source("int a[4]; int f() { return a + 1; }")

    def test_indexing_non_array_rejected(self):
        with pytest.raises(CompileError, match="not an array"):
            check_source("int g; int f() { return g[0]; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(CompileError):
            check_source("int a[4]; int b[4]; void f() { a = b; }")


class TestCalls:
    def test_arity_mismatch(self):
        with pytest.raises(CompileError, match="expects"):
            check_source("int f(int x) { return x; } int g() { return f(); }")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            check_source("int f() { return missing(); }")

    def test_array_argument_checked(self):
        check_source(
            "int a[4]; int f(int v[]) { return v[0]; } int g() { return f(a); }"
        )
        with pytest.raises(CompileError, match="array"):
            check_source("int f(int v[]) { return v[0]; } int g() { return f(1); }")

    def test_char_array_not_accepted_for_int_array(self):
        with pytest.raises(CompileError):
            check_source(
                "char c[4]; int f(int v[]) { return v[0]; } int g() { return f(c); }"
            )

    def test_array_param_passed_through(self):
        check_source(
            "int f(int v[]) { return v[0]; } int g(int w[]) { return f(w); }"
        )


class TestControl:
    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break"):
            check_source("void f() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError, match="continue"):
            check_source("void f() { continue; }")

    def test_break_inside_switch_allowed(self):
        check_source("void f(int x) { switch (x) { case 1: break; } }")

    def test_continue_inside_switch_only_rejected(self):
        with pytest.raises(CompileError, match="continue"):
            check_source("void f(int x) { switch (x) { case 1: continue; } }")

    def test_return_value_from_void(self):
        with pytest.raises(CompileError, match="void"):
            check_source("void f() { return 3; }")

    def test_missing_return_value(self):
        with pytest.raises(CompileError, match="value"):
            check_source("int f() { return; }")
