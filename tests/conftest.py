"""Shared fixtures: compiled programs are expensive, so cache them."""

from __future__ import annotations

import pytest

from repro.compiler import compile_and_link
from repro.workloads import BENCHMARK_NAMES, build_benchmark

# A small scale keeps the full test suite fast while preserving every
# structural property the assertions check.
TEST_SCALE = 0.3


@pytest.fixture(scope="session")
def small_suite():
    """The eight benchmarks at test scale (session-cached)."""
    return {name: build_benchmark(name, TEST_SCALE) for name in BENCHMARK_NAMES}


@pytest.fixture(scope="session")
def ijpeg_small(small_suite):
    return small_suite["ijpeg"]


TINY_SOURCE = """
int acc;
int table[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};

int weigh(int x, int y) {
    if (x > y) { return x - y; }
    return y - x;
}

void main() {
    int i;
    acc = 0;
    for (i = 0; i < 16; i = i + 1) {
        acc = acc + weigh(table[i], i);
    }
    print_int(acc);
    print_nl();
}
"""


@pytest.fixture(scope="session")
def tiny_program():
    """A minimal but complete linked program (with runtime library)."""
    return compile_and_link(TINY_SOURCE, name="tiny")
