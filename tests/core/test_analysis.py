"""Dictionary content-analysis tests."""

from repro.core import NibbleEncoding, compress
from repro.core.analysis import analyze_dictionary, classify_instruction
from repro.isa.assembler import assemble_line


def word(text):
    return assemble_line(text).encode()


class TestClassification:
    def test_address_formation(self):
        assert classify_instruction(word("lis r11,64")) == "address"

    def test_constants_and_moves(self):
        assert classify_instruction(word("li r3,5")) == "constant"
        assert classify_instruction(word("mr r4,r3")) == "move"
        assert classify_instruction(word("nop")) == "move"

    def test_memory_and_compares(self):
        assert classify_instruction(word("lwz r3,4(r9)")) == "memory"
        assert classify_instruction(word("stb r3,0(r9)")) == "memory"
        assert classify_instruction(word("cmpwi r3,0")) == "compare"

    def test_control_classes(self):
        assert classify_instruction(word("blr")) == "return"
        assert classify_instruction(word("bctr")) == "branch"
        assert classify_instruction(word("sc")) == "system"
        assert classify_instruction(word("mflr r0")) == "system"

    def test_alu_default(self):
        assert classify_instruction(word("add r3,r4,r5")) == "alu"
        assert classify_instruction(word("addi r3,r4,1")) == "alu"
        assert classify_instruction(word("slwi r3,r4,2")) == "alu"


class TestDictionaryReport:
    def test_mix_sums_to_one(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        report = analyze_dictionary("tiny", compressed.dictionary)
        mix = report.class_mix_by_savings()
        assert abs(sum(mix.values()) - 1.0) < 1e-9

    def test_every_entry_classified(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        report = analyze_dictionary("tiny", compressed.dictionary)
        assert len(report.entries) == len(compressed.dictionary)
        for entry in report.entries:
            assert len(entry.classes) == len(entry.words)

    def test_top_entries_sorted_by_uses(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        report = analyze_dictionary("tiny", compressed.dictionary)
        top = report.top_entries(5)
        uses = [entry.uses for entry in top]
        assert uses == sorted(uses, reverse=True)

    def test_boilerplate_dominates(self, ijpeg_small):
        # The paper's section 1.1 story: compressible code is the SDTS
        # boilerplate (addresses, moves, memory, returns, constants),
        # not the arithmetic itself.
        compressed = compress(ijpeg_small, NibbleEncoding())
        report = analyze_dictionary("ijpeg", compressed.dictionary)
        mix = report.class_mix_by_savings()
        boilerplate = sum(
            mix.get(cls, 0.0)
            for cls in ("address", "move", "constant", "memory", "return")
        )
        assert boilerplate > 0.5
