"""Basic-block segmentation tests."""

from repro.compiler import compile_and_link
from repro.core.basic_blocks import block_id_map, block_ranges, leader_flags


SOURCE = """
int g;
int f(int x) {
    if (x > 0) { g = g + x; }
    return g;
}
void main() { print_int(f(3)); }
"""


class TestLeaders:
    def test_entry_is_leader(self, tiny_program):
        flags = leader_flags(tiny_program)
        assert flags[tiny_program.entry_index]

    def test_branch_targets_are_leaders(self, tiny_program):
        flags = leader_flags(tiny_program)
        for target in tiny_program.branch_target_indices():
            assert flags[target]

    def test_instruction_after_branch_is_leader(self, tiny_program):
        flags = leader_flags(tiny_program)
        for index, ti in enumerate(tiny_program.text[:-1]):
            if ti.instruction.spec.is_branch:
                assert flags[index + 1], f"after branch at {index}"

    def test_function_starts_are_leaders(self, tiny_program):
        flags = leader_flags(tiny_program)
        for start, _ in tiny_program.function_ranges().values():
            assert flags[start]

    def test_jump_table_targets_are_leaders(self):
        program = compile_and_link(
            """
            int pick(int x) {
                switch (x) {
                    case 0: return 1;
                    case 1: return 2;
                    case 2: return 3;
                    case 3: return 4;
                    default: return 0;
                }
            }
            void main() { print_int(pick(2)); }
            """,
            name="jt",
        )
        assert program.jump_table_slots
        flags = leader_flags(program)
        for slot in program.jump_table_slots:
            assert flags[slot.target_index]


class TestRanges:
    def test_ranges_partition_program(self, tiny_program):
        ranges = block_ranges(tiny_program)
        covered = []
        for start, end in ranges:
            assert start < end
            covered.extend(range(start, end))
        assert covered == list(range(len(tiny_program.text)))

    def test_no_branch_inside_block(self, tiny_program):
        for start, end in block_ranges(tiny_program):
            for index in range(start, end - 1):
                assert not tiny_program.text[index].instruction.spec.is_branch

    def test_block_id_map_matches_ranges(self, tiny_program):
        block_of = block_id_map(tiny_program)
        for block_id, (start, end) in enumerate(block_ranges(tiny_program)):
            assert all(block_of[i] == block_id for i in range(start, end))
