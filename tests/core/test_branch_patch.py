"""Branch patching tests: layout, offset rewrite, relaxation, Table 1."""

import pytest

from repro.core import BaselineEncoding, NibbleEncoding, compress
from repro.core.branch_patch import (
    layout,
    offset_usage,
    patch_branches,
)
from repro.core.replace import Token
from repro.errors import BranchRangeError
from repro.isa.instruction import make


def ins_token(mnemonic, *values, target_index=None):
    return Token(
        kind="ins",
        instruction=make(mnemonic, *values),
        orig_index=None,
        target_index=target_index,
    )


class TestLayout:
    def test_addresses_are_cumulative(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        address = 0
        for token in compressed.tokens:
            assert token.address == address
            address += token.size_units

    def test_index_map_points_at_token_starts(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        token_starts = {t.address for t in compressed.tokens}
        for unit in compressed.index_to_unit.values():
            assert unit in token_starts


class TestOffsetPatching:
    def test_branch_offsets_are_unit_scaled(self, tiny_program):
        for encoding in (BaselineEncoding(), NibbleEncoding()):
            compressed = compress(tiny_program, encoding)
            for token in compressed.tokens:
                if not token.is_branch_token:
                    continue
                offset = token.instruction.operand("target")
                target_unit = token.address + offset
                assert target_unit in {t.address for t in compressed.tokens}

    def test_jump_tables_hold_unit_addresses(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        program = tiny_program
        for slot in program.jump_table_slots:
            raw = int.from_bytes(
                compressed.data_image[slot.data_offset : slot.data_offset + 4],
                "big",
            )
            unit = raw - program.text_base
            assert unit == compressed.index_to_unit[slot.target_index]


class TestRelaxation:
    def _far_branch_tokens(self, distance):
        """A bc whose target sits ``distance`` filler instructions away."""
        tokens = [ins_token("bc", 12, 2, 0, target_index=distance)]
        for index in range(1, distance + 1):
            filler = Token(
                kind="ins",
                instruction=make("addi", 3, 3, 1),
                orig_index=index,
            )
            tokens.append(filler)
        tokens[0].target_index = distance  # last filler's orig_index
        return tokens

    def test_in_range_branch_untouched(self):
        tokens = self._far_branch_tokens(10)
        patched, _, relaxations = patch_branches(tokens, BaselineEncoding())
        assert relaxations == 0
        assert patched[0].instruction.mnemonic == "bc"

    def test_out_of_range_branch_relaxed(self):
        # BD field: 14 bits signed -> +/-8191 units; baseline units are
        # 2 bytes, one instruction = 2 units, so ~5000 instructions is
        # out of range.
        tokens = self._far_branch_tokens(5000)
        patched, _, relaxations = patch_branches(tokens, BaselineEncoding())
        assert relaxations == 1
        # The bc inverted over an unconditional b.
        assert patched[0].instruction.mnemonic == "bc"
        assert patched[0].instruction.operand("BO") == 4  # inverted from 12
        assert patched[1].instruction.mnemonic == "b"
        # Semantics check: the inverted bc skips just past the b.
        skip_offset = patched[0].instruction.operand("target")
        assert skip_offset == patched[0].size_units + patched[1].size_units
        # The b reaches the original target.
        target_unit = patched[1].address + patched[1].instruction.operand("target")
        assert target_unit == patched[-1].address

    def test_unconditional_out_of_range_raises(self):
        # A b cannot be relaxed further; force failure with a tiny field
        # by targeting something absurdly far under the nibble encoding.
        token = ins_token("bc", 16, 0, 0)  # bdnz: invertible
        token.token_target = 0
        # bdnz inversion exists, so craft an uninvertible BO instead.
        bad = ins_token("bc", 20, 0, 0)  # BO=20: branch-always
        bad.target_index = 60000
        tokens = [bad]
        for index in range(1, 60001):
            tokens.append(
                Token(kind="ins", instruction=make("addi", 3, 3, 1), orig_index=index)
            )
        with pytest.raises(BranchRangeError):
            patch_branches(tokens, BaselineEncoding())


class TestOffsetUsage:
    def test_table1_counts(self, small_suite):
        for name, program in small_suite.items():
            row = offset_usage(program)
            assert row.static_branches > 0
            # Monotonic: finer resolution needs more bits.
            assert row.too_narrow_2byte <= row.too_narrow_1byte
            assert row.too_narrow_1byte <= row.too_narrow_4bit
            # Paper's point: the vast majority of branches have slack.
            assert row.percent(row.too_narrow_4bit) < 5.0

    def test_branch_fraction_reasonable(self, small_suite):
        # SPEC-like code: roughly 10-25% of static instructions are
        # PC-relative branches.
        for name, program in small_suite.items():
            row = offset_usage(program)
            fraction = row.static_branches / len(program.text)
            assert 0.05 < fraction < 0.35, name
