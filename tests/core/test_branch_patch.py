"""Branch patching tests: layout, offset rewrite, relaxation, Table 1."""

import pytest

from repro.core import BaselineEncoding, NibbleEncoding, compress
from repro.core.branch_patch import (
    layout,
    offset_usage,
    patch_branches,
)
from repro.core.replace import Token
from repro.errors import BranchRangeError
from repro.isa.instruction import make


def ins_token(mnemonic, *values, target_index=None):
    return Token(
        kind="ins",
        instruction=make(mnemonic, *values),
        orig_index=None,
        target_index=target_index,
    )


class TestLayout:
    def test_addresses_are_cumulative(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        address = 0
        for token in compressed.tokens:
            assert token.address == address
            address += token.size_units

    def test_index_map_points_at_token_starts(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        token_starts = {t.address for t in compressed.tokens}
        for unit in compressed.index_to_unit.values():
            assert unit in token_starts


class TestOffsetPatching:
    def test_branch_offsets_are_unit_scaled(self, tiny_program):
        for encoding in (BaselineEncoding(), NibbleEncoding()):
            compressed = compress(tiny_program, encoding)
            for token in compressed.tokens:
                if not token.is_branch_token:
                    continue
                offset = token.instruction.operand("target")
                target_unit = token.address + offset
                assert target_unit in {t.address for t in compressed.tokens}

    def test_jump_tables_hold_unit_addresses(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        program = tiny_program
        for slot in program.jump_table_slots:
            raw = int.from_bytes(
                compressed.data_image[slot.data_offset : slot.data_offset + 4],
                "big",
            )
            unit = raw - program.text_base
            assert unit == compressed.index_to_unit[slot.target_index]


class TestRelaxation:
    def _far_branch_tokens(self, distance):
        """A bc whose target sits ``distance`` filler instructions away."""
        tokens = [ins_token("bc", 12, 2, 0, target_index=distance)]
        for index in range(1, distance + 1):
            filler = Token(
                kind="ins",
                instruction=make("addi", 3, 3, 1),
                orig_index=index,
            )
            tokens.append(filler)
        tokens[0].target_index = distance  # last filler's orig_index
        return tokens

    def test_in_range_branch_untouched(self):
        tokens = self._far_branch_tokens(10)
        patched, _, relaxations = patch_branches(tokens, BaselineEncoding())
        assert relaxations == 0
        assert patched[0].instruction.mnemonic == "bc"

    def test_out_of_range_branch_relaxed(self):
        # BD field: 14 bits signed -> +/-8191 units; baseline units are
        # 2 bytes, one instruction = 2 units, so ~5000 instructions is
        # out of range.
        tokens = self._far_branch_tokens(5000)
        patched, _, relaxations = patch_branches(tokens, BaselineEncoding())
        assert relaxations == 1
        # The bc inverted over an unconditional b.
        assert patched[0].instruction.mnemonic == "bc"
        assert patched[0].instruction.operand("BO") == 4  # inverted from 12
        assert patched[1].instruction.mnemonic == "b"
        # Semantics check: the inverted bc skips just past the b.
        skip_offset = patched[0].instruction.operand("target")
        assert skip_offset == patched[0].size_units + patched[1].size_units
        # The b reaches the original target.
        target_unit = patched[1].address + patched[1].instruction.operand("target")
        assert target_unit == patched[-1].address

    def test_unconditional_out_of_range_raises(self):
        # A b cannot be relaxed further; force failure with a tiny field
        # by targeting something absurdly far under the nibble encoding.
        token = ins_token("bc", 16, 0, 0)  # bdnz: invertible
        token.token_target = 0
        # bdnz inversion exists, so craft an uninvertible BO instead.
        bad = ins_token("bc", 20, 0, 0)  # BO=20: branch-always
        bad.target_index = 60000
        tokens = [bad]
        for index in range(1, 60001):
            tokens.append(
                Token(kind="ins", instruction=make("addi", 3, 3, 1), orig_index=index)
            )
        with pytest.raises(BranchRangeError):
            patch_branches(tokens, BaselineEncoding())


class TestFieldWidthBoundary:
    """Offsets saturating exactly at the field-width boundary.

    The bc BD field is 14 bits signed: [-8192, 8191] units.  Nibble
    rank-0 codewords occupy exactly 1 unit, so streams can be built
    whose branch offset lands exactly on (and exactly past) the edge.
    """

    _INS_UNITS = 9  # nibble: escape nibble + 32-bit word = 9 units

    def _forward_stream(self, offset):
        """bc at unit 0 targeting a token exactly ``offset`` units away."""
        fillers = offset - self._INS_UNITS  # 1-unit cw tokens in between
        tokens = [ins_token("bc", 12, 2, 0, target_index=fillers + 1)]
        for index in range(1, fillers + 1):
            tokens.append(Token(kind="cw", orig_index=index, length=1, rank=0))
        tokens.append(
            Token(kind="ins", instruction=make("addi", 3, 3, 1),
                  orig_index=fillers + 1)
        )
        return tokens

    def test_offset_8191_fits_exactly(self):
        patched, _, relaxations = patch_branches(
            self._forward_stream(8191), NibbleEncoding()
        )
        assert relaxations == 0
        assert patched[0].instruction.operand("target") == 8191

    def test_offset_8192_relaxes(self):
        patched, _, relaxations = patch_branches(
            self._forward_stream(8192), NibbleEncoding()
        )
        assert relaxations == 1
        assert patched[0].instruction.operand("BO") == 4  # inverted
        assert patched[1].instruction.mnemonic == "b"
        # The unconditional b still reaches the original target.
        target = patched[1].address + patched[1].instruction.operand("target")
        assert target == patched[-1].address

    def _backward_stream(self, offset):
        """bc at the end targeting a token ``offset`` units behind it."""
        fillers = offset - self._INS_UNITS
        tokens = [
            Token(kind="ins", instruction=make("addi", 3, 3, 1), orig_index=0)
        ]
        for index in range(1, fillers + 1):
            tokens.append(Token(kind="cw", orig_index=index, length=1, rank=0))
        tokens.append(ins_token("bc", 12, 2, 0, target_index=0))
        tokens[-1].orig_index = fillers + 1
        return tokens

    def test_offset_minus_8192_fits_exactly(self):
        patched, _, relaxations = patch_branches(
            self._backward_stream(8192), NibbleEncoding()
        )
        assert relaxations == 0
        assert patched[-1].instruction.operand("target") == -8192

    def test_offset_minus_8193_relaxes(self):
        patched, _, relaxations = patch_branches(
            self._backward_stream(8193), NibbleEncoding()
        )
        assert relaxations == 1


class TestBranchIntoReplacedSequence:
    """Branches into the *middle* of a dictionary expansion are illegal
    (paper section 3.1.1) and must be rejected, not silently mislaid."""

    def test_backward_branch_into_cw_middle_rejected(self):
        # cw covers original indices 0..3; the bc targets index 2.
        tokens = [
            Token(kind="cw", orig_index=0, length=4, rank=0),
            ins_token("bc", 12, 2, 0, target_index=2),
        ]
        tokens[1].orig_index = 4
        with pytest.raises(BranchRangeError, match="inside an encoded"):
            patch_branches(tokens, BaselineEncoding())

    def test_branch_to_cw_start_allowed(self):
        tokens = [
            Token(kind="cw", orig_index=0, length=4, rank=0),
            ins_token("bc", 12, 2, 0, target_index=0),
        ]
        tokens[1].orig_index = 4
        patched, _, relaxations = patch_branches(tokens, BaselineEncoding())
        assert relaxations == 0
        assert patched[1].instruction.operand("target") == -patched[1].address


class TestJumpTableRewrite:
    """Jump-table slots hold indirect-branch targets; the patcher must
    rewrite them to compressed addresses or reject mid-sequence slots."""

    def _program_with_slot(self, target_index):
        from repro.linker.objfile import InsnRole
        from repro.linker.program import JumpTableSlot, Program, TextInstruction

        text = [
            TextInstruction(make("addi", 3, 3, 1), InsnRole.BODY, "f", False)
            for _ in range(8)
        ]
        return Program(
            name="jt",
            text=text,
            data_image=bytearray(8),
            symbols={},
            jump_table_slots=[JumpTableSlot(4, target_index)],
        )

    def test_slot_rewritten_to_unit_address(self):
        from repro.core.branch_patch import patch_jump_tables

        program = self._program_with_slot(6)
        index_to_unit = {index: index * 2 for index in range(8)}
        image = patch_jump_tables(program, index_to_unit)
        raw = int.from_bytes(image[4:8], "big")
        assert raw == program.text_base + 12

    def test_slot_into_replaced_sequence_rejected(self):
        from repro.core.branch_patch import patch_jump_tables

        program = self._program_with_slot(6)
        # Index 6 was swallowed into a codeword: absent from the map.
        index_to_unit = {index: index * 2 for index in range(8) if index != 6}
        with pytest.raises(BranchRangeError, match="jump table"):
            patch_jump_tables(program, index_to_unit)


class TestOffsetUsage:
    def test_table1_counts(self, small_suite):
        for name, program in small_suite.items():
            row = offset_usage(program)
            assert row.static_branches > 0
            # Monotonic: finer resolution needs more bits.
            assert row.too_narrow_2byte <= row.too_narrow_1byte
            assert row.too_narrow_1byte <= row.too_narrow_4bit
            # Paper's point: the vast majority of branches have slack.
            assert row.percent(row.too_narrow_4bit) < 5.0

    def test_branch_fraction_reasonable(self, small_suite):
        # SPEC-like code: roughly 10-25% of static instructions are
        # PC-relative branches.
        for name, program in small_suite.items():
            row = offset_usage(program)
            fraction = row.static_branches / len(program.text)
            assert 0.05 < fraction < 0.35, name
