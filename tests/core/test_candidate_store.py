"""The indexed candidate store must mirror the reference enumeration.

``enumerate_candidates`` is now a view over :class:`CandidateStore`;
these tests pin it to ``enumerate_candidates_reference`` (the original
dict-building scan) — same candidates, same occurrence lists, and the
same *insertion order*, which downstream consumers rely on for
deterministic tie-breaking.
"""

from repro import observe
from repro.core.candidates import (
    CandidateStore,
    candidate_store,
    compressible_flags,
    enumerate_candidates,
    enumerate_candidates_reference,
)
from repro.service.metrics import MetricsRegistry


def assert_same_enumeration(program, max_entry_len):
    fast = enumerate_candidates(program, max_entry_len)
    reference = enumerate_candidates_reference(program, max_entry_len)
    assert list(fast.keys()) == list(reference.keys())
    for key, candidate in fast.items():
        assert candidate.words == reference[key].words
        assert candidate.positions == reference[key].positions


class TestEnumerationEquality:
    def test_tiny_program(self, tiny_program):
        for max_entry_len in (1, 2, 4, 6):
            assert_same_enumeration(tiny_program, max_entry_len)

    def test_suite_program(self, small_suite):
        assert_same_enumeration(small_suite["compress"], 4)

    def test_every_occurrence_is_compressible(self, tiny_program):
        flags = compressible_flags(tiny_program)
        store = candidate_store(tiny_program)
        for sid in range(len(store)):
            length = store.lengths[sid]
            for position in store.occ[sid]:
                assert all(flags[position : position + length])

    def test_occurrence_counts(self, tiny_program):
        # Every stored candidate repeats (single-occurrence sequences
        # can never save bits and the reference never returns them for
        # lengths >= 2; length-1 entries keep all compressible words).
        store = candidate_store(tiny_program)
        for sid in range(len(store)):
            if store.lengths[sid] > 1:
                assert len(store.occ[sid]) >= 2


class TestStoreStructure:
    def test_cached_on_program(self, tiny_program):
        first = candidate_store(tiny_program)
        assert candidate_store(tiny_program) is first
        assert candidate_store(tiny_program, max_entry_len=2) is not first
        assert ("candidate_store", 4) in tiny_program._analysis_cache

    def test_lex_rank_orders_sequences(self, tiny_program):
        store = candidate_store(tiny_program)
        pairs = sorted(zip(store.lex_rank, store.seq_words))
        assert [words for _, words in pairs] == sorted(store.seq_words)

    def test_direct_construction(self, tiny_program):
        store = CandidateStore(tiny_program, max_entry_len=3)
        assert store.max_entry_len == 3
        assert all(length <= 3 for length in store.lengths)

    def test_candidates_count_metric(self, tiny_program):
        tiny_program._analysis_cache.pop(("candidate_store", 4), None)
        registry = MetricsRegistry()
        with registry.installed():
            store = candidate_store(tiny_program)
        snapshot = registry.as_dict()
        assert snapshot["counters"]["candidates.count"] == len(store)
        # The enumerate stage timer fired under the observe hook too.
        assert snapshot["timers"]["stage.enumerate_candidates"]["count"] == 1

    def test_cached_store_skips_metric(self, tiny_program):
        candidate_store(tiny_program)  # ensure built
        registry = MetricsRegistry()
        with registry.installed():
            candidate_store(tiny_program)
        assert "candidates.count" not in registry.as_dict()["counters"]


class TestObserveMetricChannel:
    def test_metric_callback_roundtrip(self):
        seen = []
        previous = observe.set_metric_callback(
            lambda name, value: seen.append((name, value))
        )
        try:
            observe.metric("example.count", 3)
            observe.metric("example.hit")
        finally:
            observe.set_metric_callback(previous)
        assert seen == [("example.count", 3), ("example.hit", 1)]

    def test_no_callback_is_noop(self):
        previous = observe.set_metric_callback(None)
        try:
            observe.metric("dropped", 5)  # must not raise
        finally:
            observe.set_metric_callback(previous)
