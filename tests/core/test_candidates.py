"""Candidate enumeration tests."""

from repro.core.basic_blocks import block_id_map
from repro.core.candidates import compressible_flags, enumerate_candidates


class TestEnumeration:
    def test_candidates_occur_at_least_twice(self, tiny_program):
        for candidate in enumerate_candidates(tiny_program).values():
            assert len(candidate.positions) >= 2

    def test_positions_match_program_words(self, tiny_program):
        words = tiny_program.words()
        for candidate in enumerate_candidates(tiny_program).values():
            for position in candidate.positions:
                window = tuple(words[position : position + candidate.length])
                assert window == candidate.words

    def test_max_entry_len_respected(self, tiny_program):
        for max_len in (1, 2, 4, 8):
            candidates = enumerate_candidates(tiny_program, max_entry_len=max_len)
            assert all(c.length <= max_len for c in candidates.values())

    def test_no_relative_branches_in_candidates(self, tiny_program):
        allowed = compressible_flags(tiny_program)
        for candidate in enumerate_candidates(tiny_program).values():
            for position in candidate.positions:
                for index in range(position, position + candidate.length):
                    assert allowed[index]

    def test_candidates_stay_within_basic_blocks(self, tiny_program):
        block_of = block_id_map(tiny_program)
        for candidate in enumerate_candidates(tiny_program).values():
            for position in candidate.positions:
                blocks = {
                    block_of[i]
                    for i in range(position, position + candidate.length)
                }
                assert len(blocks) == 1

    def test_relative_branch_words_never_appear(self, tiny_program):
        from repro.isa.instruction import decode

        for candidate in enumerate_candidates(tiny_program).values():
            for word in candidate.words:
                assert not decode(word).spec.is_relative_branch

    def test_single_instruction_candidates_exist(self, tiny_program):
        # The paper's key point vs Liao: single instructions are the
        # most frequent patterns and must be candidates.
        candidates = enumerate_candidates(tiny_program)
        singles = [c for c in candidates.values() if c.length == 1]
        assert singles
        # The most frequent candidate overall should be a single.
        best = max(candidates.values(), key=lambda c: len(c.positions))
        assert best.length == 1
