"""Register-canonicalization analysis tests."""

from repro.core import BaselineEncoding
from repro.core.canon import analyze, canonical_words
from repro.isa.assembler import assemble_line


def words(*lines):
    return tuple(assemble_line(line).encode() for line in lines)


class TestCanonicalForm:
    def test_renaming_merges_isomorphic_sequences(self):
        a = words("add r5,r6,r7", "mr r6,r5")
        b = words("add r9,r10,r11", "mr r10,r9")
        assert canonical_words(a) == canonical_words(b)

    def test_different_opcodes_stay_distinct(self):
        a = words("add r5,r6,r7")
        b = words("subf r5,r6,r7")
        assert canonical_words(a) != canonical_words(b)

    def test_different_immediates_stay_distinct(self):
        a = words("addi r5,r6,1")
        b = words("addi r5,r6,2")
        assert canonical_words(a) != canonical_words(b)

    def test_register_pattern_preserved(self):
        # rT == rA has a different data-flow shape than rT != rA.
        same = words("add r5,r5,r6")
        different = words("add r5,r6,r7")
        assert canonical_words(same) != canonical_words(different)

    def test_r0_and_r1_never_renamed(self):
        # li is addi rT,r0(=zero),imm; sp-relative loads use r1.
        sequence = words("li r9,5", "lwz r9,8(r1)")
        canon = canonical_words(sequence)
        rebuilt = words("li r3,5", "lwz r3,8(r1)")
        assert canon == rebuilt

    def test_idempotent(self):
        sequence = words("add r29,r30,r31", "stw r29,4(r30)")
        once = canonical_words(sequence)
        assert canonical_words(once) == once

    def test_memory_base_registers_renamed(self):
        a = words("lwz r5,4(r20)")
        b = words("lwz r9,4(r22)")
        assert canonical_words(a) == canonical_words(b)


class TestAnalysis:
    def test_report_shape(self, tiny_program):
        report = analyze(tiny_program, BaselineEncoding())
        assert report.distinct_canonical <= report.distinct_exact
        assert report.merge_factor >= 1.0
        assert report.rescued_occurrences >= 0
        assert report.extra_savings_bound_bytes >= 0

    def test_real_program_has_headroom(self, ijpeg_small):
        # Compiled code always has renaming headroom (paper section 5).
        report = analyze(ijpeg_small, BaselineEncoding())
        assert report.merge_factor > 1.1
        assert report.rescued_occurrences > 0
