"""End-to-end compressor tests and size-accounting invariants."""

import pytest

from repro.core import (
    BaselineEncoding,
    NibbleEncoding,
    OneByteEncoding,
    compress,
)
from repro.core.stats import collect_stats


class TestCompressionBasics:
    @pytest.mark.parametrize(
        "encoding_factory",
        [BaselineEncoding, NibbleEncoding, lambda: OneByteEncoding(32)],
    )
    def test_compression_saves_space(self, tiny_program, encoding_factory):
        compressed = compress(tiny_program, encoding_factory())
        assert compressed.compressed_bytes < compressed.original_bytes
        assert 0.0 < compressed.compression_ratio < 1.0

    def test_stream_verifies_bit_exactly(self, tiny_program):
        for encoding in (BaselineEncoding(), NibbleEncoding(), OneByteEncoding(16)):
            compressed = compress(tiny_program, encoding)
            compressed.verify_stream()  # raises on any mismatch

    def test_stream_length_matches_units(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        expected_bits = compressed.total_units() * 4
        assert len(compressed.stream) == (expected_bits + 7) // 8

    def test_dictionary_counted_in_ratio(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        assert (
            compressed.compressed_bytes
            == compressed.stream_bytes + compressed.dictionary_bytes
        )
        assert compressed.dictionary_bytes > 0

    def test_deterministic(self, tiny_program):
        first = compress(tiny_program, BaselineEncoding())
        second = compress(tiny_program, BaselineEncoding())
        assert first.stream == second.stream
        assert [e.words for e in first.dictionary.entries] == [
            e.words for e in second.dictionary.entries
        ]


class TestEncodingComparisons:
    def test_nibble_beats_baseline(self, tiny_program):
        baseline = compress(tiny_program, BaselineEncoding())
        nibble = compress(tiny_program, NibbleEncoding())
        assert nibble.compression_ratio < baseline.compression_ratio

    def test_more_codewords_never_hurt(self, ijpeg_small):
        ratios = [
            compress(
                ijpeg_small, BaselineEncoding(), max_codewords=budget
            ).compression_ratio
            for budget in (16, 128, 1024, 8192)
        ]
        for tighter, looser in zip(ratios, ratios[1:]):
            assert looser <= tighter + 1e-9

    def test_small_dictionary_limits(self, tiny_program):
        compressed = compress(tiny_program, OneByteEncoding(8))
        assert len(compressed.dictionary) <= 8
        assert compressed.dictionary_bytes <= 8 * 16  # <= 4 insns/entry


class TestStats:
    def test_composition_sums_to_one(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        stats = collect_stats(compressed)
        fractions = stats.composition_fractions()
        total = sum(fractions.values())
        # Stream byte padding can leave a sliver unaccounted.
        assert 0.98 <= total <= 1.0 + 1e-9

    def test_escape_plus_index_equals_codeword_bits(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        stats = collect_stats(compressed)
        expected = sum(
            compressed.encoding.codeword_bits(t.rank)
            for t in compressed.tokens
            if t.kind == "cw"
        )
        assert stats.codeword_index_bits + stats.codeword_escape_bits == expected

    def test_entry_length_histogram_matches_dictionary(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding(), max_entry_len=8)
        stats = collect_stats(compressed)
        assert sum(stats.entry_length_histogram.values()) == len(
            compressed.dictionary
        )

    def test_stats_ratio_matches_compressor(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        stats = collect_stats(compressed)
        assert stats.compression_ratio == pytest.approx(
            compressed.compression_ratio
        )
