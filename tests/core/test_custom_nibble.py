"""Generalized nibble-allocation encoding tests."""

import pytest
from hypothesis import given, strategies as st

from repro import bitutils
from repro.core import NibbleEncoding, compress
from repro.core.encodings import CustomNibbleEncoding
from repro.errors import CompressionError
from repro.machine.compressed_sim import run_compressed
from repro.machine.simulator import run_program


class TestAllocationValidation:
    def test_bands_must_sum_to_fifteen(self):
        with pytest.raises(CompressionError, match="sum to 15"):
            CustomNibbleEncoding({1: 8, 2: 8})
        with pytest.raises(CompressionError, match="sum to 15"):
            CustomNibbleEncoding({1: 15, 2: 1})

    def test_figure10_is_the_default_nibble(self):
        default = NibbleEncoding()
        assert default.allocation == {1: 8, 2: 4, 3: 2, 4: 1}
        assert default.capacity == 4680

    def test_capacity_formula(self):
        encoding = CustomNibbleEncoding({1: 5, 2: 10, 3: 0, 4: 0})
        assert encoding.capacity == 5 + 160

    def test_band_boundaries(self):
        encoding = CustomNibbleEncoding({1: 2, 2: 13, 3: 0, 4: 0})
        assert encoding.codeword_bits(0) == 4
        assert encoding.codeword_bits(1) == 4
        assert encoding.codeword_bits(2) == 8
        assert encoding.codeword_bits(2 + 13 * 16 - 1) == 8
        with pytest.raises(CompressionError):
            encoding.codeword_bits(2 + 13 * 16)


@st.composite
def _allocations(draw):
    n1 = draw(st.integers(0, 15))
    n2 = draw(st.integers(0, 15 - n1))
    n3 = draw(st.integers(0, 15 - n1 - n2))
    n4 = 15 - n1 - n2 - n3
    allocation = {1: n1, 2: n2, 3: n3, 4: n4}
    if sum(v * 16 ** (k - 1) for k, v in allocation.items()) == 0:
        allocation = {1: 1, 2: 14, 3: 0, 4: 0}
    return allocation


class TestRoundTrip:
    @given(_allocations(), st.data())
    def test_codewords_roundtrip_for_any_allocation(self, allocation, data):
        encoding = CustomNibbleEncoding(allocation)
        ranks = data.draw(
            st.lists(st.integers(0, encoding.capacity - 1), min_size=1,
                     max_size=20)
        )
        writer = bitutils.BitWriter()
        for rank in ranks:
            encoding.write_codeword(writer, rank)
        reader = bitutils.BitReader(writer.getvalue())
        for rank in ranks:
            assert encoding.read_item(reader) == ("cw", rank)

    @given(_allocations())
    def test_instruction_escape_roundtrips(self, allocation):
        encoding = CustomNibbleEncoding(allocation)
        writer = bitutils.BitWriter()
        encoding.write_instruction(writer, 0x38610008)
        reader = bitutils.BitReader(writer.getvalue())
        assert encoding.read_item(reader) == ("ins", 0x38610008)

    def test_sizes_match_band(self):
        encoding = CustomNibbleEncoding({1: 0, 2: 15, 3: 0, 4: 0})
        writer = bitutils.BitWriter()
        encoding.write_codeword(writer, 0)
        assert writer.bit_length == 8


class TestExecutionWithCustomAllocation:
    @pytest.mark.parametrize(
        "allocation",
        [
            {1: 15, 2: 0, 3: 0, 4: 0},
            {1: 0, 2: 15, 3: 0, 4: 0},
            {1: 5, 2: 10, 3: 0, 4: 0},
            {1: 1, 2: 1, 3: 1, 4: 12},
        ],
        ids=["all-4bit", "all-8bit", "search-winner", "wide"],
    )
    def test_equivalent_execution(self, tiny_program, allocation):
        reference = run_program(tiny_program)
        encoding = CustomNibbleEncoding(allocation)
        compressed = compress(tiny_program, encoding)
        compressed.verify_stream()
        result = run_compressed(compressed)
        assert result.output_text == reference.output_text
