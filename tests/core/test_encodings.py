"""Codeword encoding tests, including the Figure 10 nibble layout."""

import pytest
from hypothesis import given, strategies as st

from repro import bitutils
from repro.core.encodings import (
    BaselineEncoding,
    NibbleEncoding,
    OneByteEncoding,
    make_encoding,
)
from repro.errors import CompressionError
from repro.isa.opcodes import escape_bytes


class TestBaseline:
    def test_capacity_and_sizes(self):
        encoding = BaselineEncoding()
        assert encoding.capacity == 8192
        assert encoding.codeword_bits(0) == 16
        assert encoding.codeword_bits(8191) == 16
        assert encoding.alignment_bits == 16
        assert encoding.instruction_bits == 32

    def test_escape_byte_is_illegal_opcode(self):
        encoding = BaselineEncoding()
        writer = bitutils.BitWriter()
        encoding.write_codeword(writer, 0)
        first_byte = writer.getvalue()[0]
        assert first_byte in escape_bytes()

    def test_codeword_roundtrip_all_escape_groups(self):
        encoding = BaselineEncoding()
        for rank in (0, 255, 256, 511, 4095, 8191):
            writer = bitutils.BitWriter()
            encoding.write_codeword(writer, rank)
            reader = bitutils.BitReader(writer.getvalue())
            assert encoding.read_item(reader) == ("cw", rank)

    def test_instruction_passthrough(self):
        encoding = BaselineEncoding()
        writer = bitutils.BitWriter()
        encoding.write_instruction(writer, 0x38610008)
        reader = bitutils.BitReader(writer.getvalue())
        assert encoding.read_item(reader) == ("ins", 0x38610008)

    def test_capacity_validation(self):
        with pytest.raises(CompressionError):
            BaselineEncoding(8193)
        with pytest.raises(CompressionError):
            BaselineEncoding().codeword_bits(8192)


class TestOneByte:
    def test_codewords_are_escape_bytes(self):
        encoding = OneByteEncoding(32)
        for rank in range(32):
            writer = bitutils.BitWriter()
            encoding.write_codeword(writer, rank)
            assert writer.getvalue()[0] == escape_bytes()[rank]

    def test_roundtrip(self):
        encoding = OneByteEncoding(32)
        for rank in (0, 7, 15, 31):
            writer = bitutils.BitWriter()
            encoding.write_codeword(writer, rank)
            reader = bitutils.BitReader(writer.getvalue())
            assert encoding.read_item(reader) == ("cw", rank)

    def test_at_most_32_codewords(self):
        with pytest.raises(CompressionError):
            OneByteEncoding(33)


class TestNibble:
    def test_figure10_band_sizes(self):
        encoding = NibbleEncoding()
        assert encoding.capacity == 8 + 64 + 512 + 4096 == 4680
        assert encoding.codeword_bits(0) == 4
        assert encoding.codeword_bits(7) == 4
        assert encoding.codeword_bits(8) == 8
        assert encoding.codeword_bits(71) == 8
        assert encoding.codeword_bits(72) == 12
        assert encoding.codeword_bits(583) == 12
        assert encoding.codeword_bits(584) == 16
        assert encoding.codeword_bits(4679) == 16

    def test_uncompressed_instruction_costs_36_bits(self):
        encoding = NibbleEncoding()
        assert encoding.instruction_bits == 36
        writer = bitutils.BitWriter()
        encoding.write_instruction(writer, 0x38610008)
        assert writer.bit_length == 36
        # First nibble is the escape value 15.
        assert writer.getvalue()[0] >> 4 == 15

    @pytest.mark.parametrize("rank", [0, 7, 8, 42, 71, 72, 300, 583, 584, 2000, 4679])
    def test_codeword_roundtrip(self, rank):
        encoding = NibbleEncoding()
        writer = bitutils.BitWriter()
        encoding.write_codeword(writer, rank)
        assert writer.bit_length == encoding.codeword_bits(rank)
        reader = bitutils.BitReader(writer.getvalue())
        assert encoding.read_item(reader) == ("cw", rank)

    @given(st.lists(
        st.one_of(
            st.tuples(st.just("cw"), st.integers(0, 4679)),
            st.tuples(st.just("ins"), st.integers(0, 0xFFFFFFFF)),
        ),
        min_size=1, max_size=40,
    ))
    def test_mixed_stream_roundtrip(self, items):
        encoding = NibbleEncoding()
        writer = bitutils.BitWriter()
        for kind, payload in items:
            if kind == "cw":
                encoding.write_codeword(writer, payload)
            else:
                encoding.write_instruction(writer, payload)
        reader = bitutils.BitReader(writer.getvalue())
        for kind, payload in items:
            assert encoding.read_item(reader) == (kind, payload)


class TestUnits:
    def test_units_conversion(self):
        encoding = NibbleEncoding()
        assert encoding.instruction_units() == 9
        assert encoding.codeword_units(0) == 1
        assert encoding.codeword_units(584) == 4
        baseline = BaselineEncoding()
        assert baseline.instruction_units() == 2
        assert baseline.codeword_units(0) == 1

    def test_misaligned_bits_rejected(self):
        with pytest.raises(CompressionError):
            BaselineEncoding().units(24)


class TestFactory:
    def test_make_encoding(self):
        assert make_encoding("baseline").name == "baseline"
        assert make_encoding("onebyte", 8).capacity == 8
        assert make_encoding("nibble").capacity == 4680
        with pytest.raises(CompressionError):
            make_encoding("huffman")
