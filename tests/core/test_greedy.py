"""Greedy dictionary-builder tests."""

from repro.core import BaselineEncoding, NibbleEncoding
from repro.core.greedy import build_dictionary


class TestSelection:
    def test_replacements_do_not_overlap(self, tiny_program):
        result = build_dictionary(tiny_program, BaselineEncoding())
        seen = set()
        for rep in result.replacements:
            span = set(range(rep.position, rep.position + rep.length))
            assert not span & seen
            seen |= span

    def test_replacements_match_program_words(self, tiny_program):
        words = tiny_program.words()
        result = build_dictionary(tiny_program, BaselineEncoding())
        for rep in result.replacements:
            window = tuple(words[rep.position : rep.position + rep.length])
            assert window == rep.entry_words

    def test_every_dictionary_entry_is_used(self, tiny_program):
        result = build_dictionary(tiny_program, BaselineEncoding())
        used = {rep.entry_words for rep in result.replacements}
        for entry in result.dictionary.entries:
            assert entry.words in used
            assert entry.uses >= 1

    def test_dictionary_ranked_by_usage(self, tiny_program):
        result = build_dictionary(tiny_program, NibbleEncoding())
        uses = [entry.uses for entry in result.dictionary.entries]
        assert uses == sorted(uses, reverse=True)

    def test_max_codewords_respected(self, tiny_program):
        result = build_dictionary(
            tiny_program, BaselineEncoding(), max_codewords=5
        )
        assert len(result.dictionary) <= 5

    def test_every_selection_saved_bytes(self, tiny_program):
        result = build_dictionary(tiny_program, BaselineEncoding())
        assert all(savings > 0 for savings in result.step_savings_bits)

    def test_greedy_savings_non_increasing(self, tiny_program):
        result = build_dictionary(tiny_program, BaselineEncoding())
        savings = result.step_savings_bits
        assert savings == sorted(savings, reverse=True)

    def test_baseline_needs_three_uses_for_singles(self, tiny_program):
        # savings = u*(32-16) - 32 > 0 requires u >= 3 for 1-instruction
        # entries under the baseline encoding.
        result = build_dictionary(
            tiny_program, BaselineEncoding(), max_entry_len=1
        )
        assert all(entry.uses >= 3 for entry in result.dictionary.entries)

    def test_nibble_compresses_pairs(self, tiny_program):
        # Under the nibble scheme even two uses of a single instruction
        # pay off: 2*(36-4) - 32 = 32 bits.
        result = build_dictionary(tiny_program, NibbleEncoding(), max_entry_len=1)
        assert any(entry.uses == 2 for entry in result.dictionary.entries)


class TestEntryLengthEffects:
    def test_longer_entries_allowed_up_to_limit(self, ijpeg_small):
        result = build_dictionary(
            ijpeg_small, BaselineEncoding(), max_entry_len=8
        )
        lengths = {entry.length for entry in result.dictionary.entries}
        assert max(lengths) > 1
        assert max(lengths) <= 8

    def test_compression_improves_with_entry_length_to_four(self, ijpeg_small):
        # The paper's Figure 4 shape, at the greedy-savings level.
        def total_savings(max_len):
            result = build_dictionary(
                ijpeg_small, BaselineEncoding(), max_entry_len=max_len
            )
            return sum(result.step_savings_bits)

        assert total_savings(2) > total_savings(1)
        assert total_savings(4) >= total_savings(2)
