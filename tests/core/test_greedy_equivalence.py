"""Golden equivalence: the fast greedy path must be byte-identical.

The indexed candidate store + incremental greedy loop
(``build_dictionary(..., implementation="fast")``, the default) is a
pure performance refactor: every observable output — dictionary entries
and order, replacement list, per-step savings, and the final serialized
image — must equal :func:`~repro.core.greedy.greedy_reference` exactly,
for every encoding and parameter combination.
"""

from hypothesis import given, settings, strategies as st

from repro.core.compressor import Compressor
from repro.core.encodings import make_encoding
from repro.core.greedy import build_dictionary, greedy_reference
from repro.isa.instruction import make
from repro.linker.objfile import InsnRole
from repro.linker.program import Program, TextInstruction

ENCODING_NAMES = ("baseline", "onebyte", "nibble")


def assert_same_greedy(fast, reference):
    assert fast.dictionary.entries == reference.dictionary.entries
    assert fast.replacements == reference.replacements
    assert fast.step_savings_bits == reference.step_savings_bits


class TestSuiteEquivalence:
    def test_all_encodings_all_programs(self, small_suite):
        for program in small_suite.values():
            for name in ENCODING_NAMES:
                encoding = make_encoding(name)
                fast = build_dictionary(program, encoding)
                reference = greedy_reference(program, encoding)
                assert_same_greedy(fast, reference)

    def test_entry_length_sweep(self, tiny_program):
        encoding = make_encoding("nibble")
        for max_entry_len in (1, 2, 6):
            fast = build_dictionary(
                tiny_program, encoding, max_entry_len=max_entry_len
            )
            reference = greedy_reference(
                tiny_program, encoding, max_entry_len=max_entry_len
            )
            assert_same_greedy(fast, reference)

    def test_small_codeword_budget(self, tiny_program):
        encoding = make_encoding("baseline")
        fast = build_dictionary(tiny_program, encoding, max_codewords=8)
        reference = greedy_reference(tiny_program, encoding, max_codewords=8)
        assert_same_greedy(fast, reference)
        assert len(fast.dictionary.entries) <= 8

    def test_weighted_objective(self, tiny_program):
        # Alternating weights, including zeros: exercises the
        # positive-weight upper bound in the fast path's initial heap.
        weights = [(i * 7) % 5 - 1 for i in range(len(tiny_program.text))]
        encoding = make_encoding("nibble")
        fast = build_dictionary(tiny_program, encoding, position_weights=weights)
        reference = greedy_reference(
            tiny_program, encoding, position_weights=weights
        )
        assert_same_greedy(fast, reference)

    def test_identical_serialized_image(self, tiny_program):
        for name in ENCODING_NAMES:
            encoding = make_encoding(name)
            fast = Compressor(encoding=encoding).compress(tiny_program)
            reference = Compressor(
                encoding=encoding, greedy_implementation="reference"
            ).compress(tiny_program)
            assert fast.stream == reference.stream
            assert fast.dictionary.entries == reference.dictionary.entries
            assert bytes(fast.data_image) == bytes(reference.data_image)
            assert fast.index_to_unit == reference.index_to_unit

    def test_unknown_implementation_rejected(self, tiny_program):
        import pytest

        with pytest.raises(ValueError):
            build_dictionary(
                tiny_program, make_encoding("baseline"), implementation="turbo"
            )


# ----------------------------------------------------------------------
# Property test: random programs, including branches (which split the
# candidate runs into basic blocks and exercise the compressible-flag
# table in the store builder).
# ----------------------------------------------------------------------
_gpr = st.integers(0, 31)
_imm = st.integers(-0x8000, 0x7FFF)
_uimm = st.integers(0, 0xFFFF)

_INSTRUCTIONS = st.one_of(
    st.builds(lambda d, a, i: make("addi", d, a, i), _gpr, _gpr, _imm),
    st.builds(lambda s, a, i: make("ori", a, s, i), _gpr, _gpr, _uimm),
    st.builds(lambda d, a, b: make("add", d, a, b), _gpr, _gpr, _gpr),
    st.builds(lambda d, a, b: make("subf", d, a, b), _gpr, _gpr, _gpr),
)


@st.composite
def _programs(draw):
    chunks = draw(
        st.lists(
            st.tuples(
                st.lists(_INSTRUCTIONS, min_size=1, max_size=4),
                st.integers(1, 3),
            ),
            min_size=1,
            max_size=8,
        )
    )
    instructions = []
    for chunk, repeats in chunks:
        instructions.extend(chunk * repeats)
    text = [
        TextInstruction(ins, InsnRole.BODY, "f", False) for ins in instructions
    ]
    # Replace a few positions with forward unconditional branches:
    # non-compressible instructions that also split basic blocks.
    n = len(text)
    for position in draw(
        st.lists(st.integers(0, n - 1), max_size=3, unique=True)
    ):
        target = draw(st.integers(position, n - 1))
        text[position] = TextInstruction(
            make("b", target - position),
            InsnRole.BODY,
            "f",
            False,
            target_index=target,
        )
    return Program(name="prop", text=text, data_image=bytearray(), symbols={})


@settings(max_examples=60, deadline=None)
@given(_programs(), st.sampled_from(ENCODING_NAMES), st.integers(1, 6))
def test_random_programs_equivalent(program, encoding_name, max_entry_len):
    encoding = make_encoding(encoding_name)
    fast = build_dictionary(program, encoding, max_entry_len=max_entry_len)
    reference = greedy_reference(program, encoding, max_entry_len=max_entry_len)
    assert_same_greedy(fast, reference)
