"""Profile-guided (weighted) greedy objective tests."""

from repro.core import NibbleEncoding, compress
from repro.core.greedy import build_dictionary
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import profile_program, run_program


class TestProfile:
    def test_profile_counts_match_steps(self, tiny_program):
        counts = profile_program(tiny_program)
        reference = run_program(tiny_program)
        assert sum(counts) == reference.steps
        assert counts[tiny_program.entry_index] >= 1

    def test_cold_code_has_zero_count(self, tiny_program):
        counts = profile_program(tiny_program)
        # The runtime links many functions main never calls (gcd, ipow…).
        ranges = tiny_program.function_ranges()
        start, end = ranges["gcd"]
        assert all(counts[i] == 0 for i in range(start, end))


class TestWeightedObjective:
    def test_uniform_weights_match_unweighted(self, tiny_program):
        encoding = NibbleEncoding()
        plain = build_dictionary(tiny_program, encoding)
        uniform = build_dictionary(
            tiny_program, encoding,
            position_weights=[1] * len(tiny_program.text),
        )
        assert [e.words for e in plain.dictionary.entries] == [
            e.words for e in uniform.dictionary.entries
        ]

    def test_weighted_build_still_executes_correctly(self, tiny_program):
        profile = profile_program(tiny_program)
        compressed = compress(
            tiny_program, NibbleEncoding(), position_weights=profile
        )
        compressed.verify_stream()
        result = CompressedSimulator(compressed).run()
        assert result.output_text == run_program(tiny_program).output_text

    def test_traffic_objective_reduces_fetch_bytes(self, ijpeg_small):
        profile = profile_program(ijpeg_small)
        encoding_bits = NibbleEncoding().alignment_bits

        def fetch_bytes(compressed):
            simulator = CompressedSimulator(compressed)
            simulator.run()
            return simulator.stats.bytes_fetched(encoding_bits)

        size_optimized = compress(ijpeg_small, NibbleEncoding())
        traffic_optimized = compress(
            ijpeg_small, NibbleEncoding(), position_weights=profile
        )
        assert fetch_bytes(traffic_optimized) <= fetch_bytes(size_optimized)

    def test_size_objective_wins_on_size(self, ijpeg_small):
        profile = profile_program(ijpeg_small)
        size_optimized = compress(ijpeg_small, NibbleEncoding())
        traffic_optimized = compress(
            ijpeg_small, NibbleEncoding(), position_weights=profile
        )
        assert (
            size_optimized.compression_ratio
            <= traffic_optimized.compression_ratio + 1e-9
        )
