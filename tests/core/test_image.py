"""Compressed-image container tests."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BaselineEncoding, NibbleEncoding, compress
from repro.core.image import (
    CompressedImage,
    ImageCapacityError,
    ImageChecksumError,
    ImageEncodingError,
    ImageError,
    ImageFormatError,
)
from repro.errors import CompressionError
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import run_program


@pytest.fixture(scope="module")
def image(tiny_program):
    compressed = compress(tiny_program, NibbleEncoding())
    return CompressedImage.from_compressed(compressed)


class TestSerialization:
    def test_roundtrip_preserves_everything(self, image):
        again = CompressedImage.from_bytes(image.to_bytes())
        assert again == image

    def test_magic_checked(self):
        with pytest.raises(CompressionError, match="magic"):
            CompressedImage.from_bytes(b"NOPE" + b"\x00" * 40)

    def test_truncation_detected(self, image):
        blob = image.to_bytes()
        with pytest.raises(CompressionError, match="truncated"):
            CompressedImage.from_bytes(blob[: len(blob) // 2])

    def test_trailing_garbage_detected(self, image):
        with pytest.raises(CompressionError, match="trailing"):
            CompressedImage.from_bytes(image.to_bytes() + b"xx")

    def test_version_checked(self, image):
        blob = bytearray(image.to_bytes())
        blob[4] = 99
        with pytest.raises(CompressionError, match="version"):
            CompressedImage.from_bytes(bytes(blob))

    def test_sizes_reported(self, image, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        assert image.stream_bytes == len(compressed.stream)
        assert image.dictionary_bytes == compressed.dictionary_bytes


class TestFailurePaths:
    """Each corruption class raises its own documented exception."""

    def test_bit_flipped_stream_raises_checksum_error(self, image):
        blob = bytearray(image.to_bytes())
        # Flip one bit inside the stream body: the structure still
        # parses (the stream is an opaque length-prefixed field), so
        # only the payload CRC can catch it.
        stream_offset = blob.rindex(image.stream)
        blob[stream_offset + len(image.stream) // 2] ^= 0x10
        with pytest.raises(ImageChecksumError, match="checksum"):
            CompressedImage.from_bytes(bytes(blob))

    def test_wrong_encoding_id_raises_encoding_error(self, image):
        renamed = dataclasses.replace(image, encoding_name="zstd")
        with pytest.raises(ImageEncodingError, match="unknown encoding"):
            CompressedImage.from_bytes(renamed.to_bytes())

    def test_oversized_dictionary_raises_capacity_error(self, image):
        assert len(image.dictionary) > 2
        shrunk = dataclasses.replace(
            image, encoding_name="onebyte", max_codewords=2
        )
        with pytest.raises(ImageCapacityError, match="at most 2"):
            CompressedImage.from_bytes(shrunk.to_bytes())

    def test_failure_types_are_distinct_compression_errors(self):
        kinds = (
            ImageFormatError, ImageChecksumError,
            ImageEncodingError, ImageCapacityError,
        )
        for kind in kinds:
            assert issubclass(kind, ImageError)
            assert issubclass(kind, CompressionError)
        # No subclass relationships among the leaf kinds: callers can
        # catch exactly one failure class.
        for first in kinds:
            for second in kinds:
                if first is not second:
                    assert not issubclass(first, second)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_any_single_bit_flip_is_rejected(self, image, data):
        blob = bytearray(image.to_bytes())
        position = data.draw(st.integers(0, len(blob) - 1))
        bit = data.draw(st.integers(0, 7))
        blob[position] ^= 1 << bit
        with pytest.raises(ImageError):
            CompressedImage.from_bytes(bytes(blob))


class TestExecutionFromImage:
    @pytest.mark.parametrize("encoding_factory", [BaselineEncoding, NibbleEncoding])
    def test_image_runs_identically(self, tiny_program, encoding_factory):
        reference = run_program(tiny_program)
        compressed = compress(tiny_program, encoding_factory())
        image = CompressedImage.from_compressed(compressed)
        blob = image.to_bytes()
        # Full deployment path: bytes -> image -> simulator.
        loaded = CompressedImage.from_bytes(blob)
        simulator = CompressedSimulator.from_image(loaded)
        result = simulator.run()
        assert result.output_text == reference.output_text
        assert result.exit_code == reference.exit_code

    def test_constructor_requires_exactly_one_source(self, tiny_program, image):
        compressed = compress(tiny_program, NibbleEncoding())
        with pytest.raises(ValueError):
            CompressedSimulator(compressed, image=image)
        with pytest.raises(ValueError):
            CompressedSimulator()
