"""Compressed-image container tests."""

import pytest

from repro.core import BaselineEncoding, NibbleEncoding, compress
from repro.core.image import CompressedImage
from repro.errors import CompressionError
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import run_program


@pytest.fixture(scope="module")
def image(tiny_program):
    compressed = compress(tiny_program, NibbleEncoding())
    return CompressedImage.from_compressed(compressed)


class TestSerialization:
    def test_roundtrip_preserves_everything(self, image):
        again = CompressedImage.from_bytes(image.to_bytes())
        assert again == image

    def test_magic_checked(self):
        with pytest.raises(CompressionError, match="magic"):
            CompressedImage.from_bytes(b"NOPE" + b"\x00" * 40)

    def test_truncation_detected(self, image):
        blob = image.to_bytes()
        with pytest.raises(CompressionError, match="truncated"):
            CompressedImage.from_bytes(blob[: len(blob) // 2])

    def test_trailing_garbage_detected(self, image):
        with pytest.raises(CompressionError, match="trailing"):
            CompressedImage.from_bytes(image.to_bytes() + b"xx")

    def test_version_checked(self, image):
        blob = bytearray(image.to_bytes())
        blob[4] = 99
        with pytest.raises(CompressionError, match="version"):
            CompressedImage.from_bytes(bytes(blob))

    def test_sizes_reported(self, image, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        assert image.stream_bytes == len(compressed.stream)
        assert image.dictionary_bytes == compressed.dictionary_bytes


class TestExecutionFromImage:
    @pytest.mark.parametrize("encoding_factory", [BaselineEncoding, NibbleEncoding])
    def test_image_runs_identically(self, tiny_program, encoding_factory):
        reference = run_program(tiny_program)
        compressed = compress(tiny_program, encoding_factory())
        image = CompressedImage.from_compressed(compressed)
        blob = image.to_bytes()
        # Full deployment path: bytes -> image -> simulator.
        loaded = CompressedImage.from_bytes(blob)
        simulator = CompressedSimulator.from_image(loaded)
        result = simulator.run()
        assert result.output_text == reference.output_text
        assert result.exit_code == reference.exit_code

    def test_constructor_requires_exactly_one_source(self, tiny_program, image):
        compressed = compress(tiny_program, NibbleEncoding())
        with pytest.raises(ValueError):
            CompressedSimulator(compressed, image=image)
        with pytest.raises(ValueError):
            CompressedSimulator()
