"""Property tests on token-stream layout invariants.

Random token streams (codewords of random ranks interleaved with
instructions) must lay out into a gapless, ordered address space under
every encoding — the invariant every branch offset in a compressed
program depends on.
"""

from hypothesis import given, strategies as st

from repro.core.branch_patch import layout
from repro.core.encodings import BaselineEncoding, NibbleEncoding, OneByteEncoding
from repro.core.replace import Token
from repro.isa.instruction import make

_ENCODINGS = st.sampled_from(
    [BaselineEncoding(), NibbleEncoding(), OneByteEncoding(32)]
)


@st.composite
def _token_streams(draw):
    encoding = draw(_ENCODINGS)
    count = draw(st.integers(1, 60))
    tokens = []
    orig_index = 0
    for _ in range(count):
        if draw(st.booleans()):
            rank = draw(st.integers(0, min(encoding.capacity, 32) - 1))
            length = draw(st.integers(1, 4))
            tokens.append(
                Token(kind="cw", orig_index=orig_index, length=length, rank=rank)
            )
            orig_index += length
        else:
            tokens.append(
                Token(
                    kind="ins",
                    instruction=make("addi", 3, 3, 1),
                    orig_index=orig_index,
                )
            )
            orig_index += 1
    return encoding, tokens


class TestLayoutInvariants:
    @given(_token_streams())
    def test_addresses_are_gapless_and_ordered(self, case):
        encoding, tokens = case
        layout(tokens, encoding)
        address = 0
        for token in tokens:
            assert token.address == address
            assert token.size_units > 0
            address += token.size_units

    @given(_token_streams())
    def test_index_map_covers_every_token_start(self, case):
        encoding, tokens = case
        index_to_unit = layout(tokens, encoding)
        for token in tokens:
            assert index_to_unit[token.orig_index] == token.address

    @given(_token_streams())
    def test_sizes_match_encoding_tables(self, case):
        encoding, tokens = case
        layout(tokens, encoding)
        for token in tokens:
            if token.kind == "cw":
                assert token.size_units == encoding.codeword_units(token.rank)
            else:
                assert token.size_units == encoding.instruction_units()

    @given(_token_streams())
    def test_total_units_equals_bit_sum(self, case):
        encoding, tokens = case
        layout(tokens, encoding)
        total_bits = sum(
            encoding.codeword_bits(t.rank) if t.kind == "cw"
            else encoding.instruction_bits
            for t in tokens
        )
        total_units = sum(t.size_units for t in tokens)
        assert total_units * encoding.alignment_bits == total_bits
