"""Optimal-replacement DP and exhaustive dictionary search tests."""

from repro.core import BaselineEncoding, compress
from repro.core.greedy import build_dictionary
from repro.core.optimal import exhaustive_dictionary, optimal_replacement


class TestOptimalReplacement:
    def test_empty_dictionary_means_all_escaped(self, tiny_program):
        encoding = BaselineEncoding()
        plan = optimal_replacement(tiny_program, [], encoding)
        assert plan.stream_bits == 32 * len(tiny_program.text)
        assert plan.dictionary_bits == 0

    def test_dictionary_never_hurts(self, tiny_program):
        encoding = BaselineEncoding()
        greedy = build_dictionary(tiny_program, encoding)
        entries = [entry.words for entry in greedy.dictionary.entries]
        baseline_bits = 32 * len(tiny_program.text)
        plan = optimal_replacement(tiny_program, entries, encoding)
        assert plan.total_bits < baseline_bits

    def test_unused_entries_not_charged(self, tiny_program):
        encoding = BaselineEncoding()
        # A sequence that cannot occur (an illegal-opcode word would
        # fail decode, so use an unlikely-but-legal word).
        ghost = (0x3860_7777,)  # li r3,0x7777: plausible but absent
        plan = optimal_replacement(tiny_program, [ghost], encoding)
        assert plan.dictionary_bits == 0
        assert ghost not in plan.used_entries

    def test_dp_at_least_as_good_as_greedy_replacement(self, tiny_program):
        encoding = BaselineEncoding()
        compressed = compress(tiny_program, encoding)
        entries = [entry.words for entry in compressed.dictionary.entries]
        plan = optimal_replacement(tiny_program, entries, encoding)
        greedy_bits = compressed.stream_bits + 8 * compressed.dictionary_bytes
        assert plan.total_bits <= greedy_bits


class TestExhaustiveSearch:
    def test_search_respects_entry_budget(self, tiny_program):
        encoding = BaselineEncoding()
        result = exhaustive_dictionary(
            tiny_program, encoding, pool_size=6, max_entries=2
        )
        assert len(result.dictionary) <= 2
        assert result.subsets_tried == 1 + 6 + 15  # C(6,0)+C(6,1)+C(6,2)

    def test_greedy_is_near_optimal(self, tiny_program):
        # The paper's footnote 1: greedy is near-optimal in practice.
        encoding = BaselineEncoding()
        compressed = compress(tiny_program, encoding)
        greedy_bits = compressed.stream_bits + 8 * compressed.dictionary_bytes
        search = exhaustive_dictionary(tiny_program, encoding, pool_size=10)
        # The exhaustive pool can't include everything greedy can use,
        # so compare against the better of the two: gap must be small.
        best = min(search.plan.total_bits, greedy_bits)
        assert greedy_bits <= 1.05 * best
