"""Redundancy profile (Figure 1) tests."""

from repro.core.profile import coverage_of_top_fraction, encoding_redundancy


class TestRedundancyProfile:
    def test_fractions_sum_to_one(self, tiny_program):
        profile = encoding_redundancy(tiny_program)
        assert profile.unique_fraction + profile.repeated_fraction == 1.0

    def test_counts_consistent(self, tiny_program):
        profile = encoding_redundancy(tiny_program)
        assert profile.total_instructions == len(tiny_program.text)
        assert 0 < profile.distinct_encodings <= profile.total_instructions
        assert (
            profile.instructions_with_unique_encoding <= profile.distinct_encodings
        )

    def test_coverage_monotonic_in_fraction(self, tiny_program):
        c1 = coverage_of_top_fraction(tiny_program, 0.01)
        c10 = coverage_of_top_fraction(tiny_program, 0.10)
        c100 = coverage_of_top_fraction(tiny_program, 1.0)
        assert c1 <= c10 <= c100
        assert c100 == 1.0
