"""Token-stream construction tests."""

from repro.core import BaselineEncoding
from repro.core.greedy import build_dictionary
from repro.core.replace import build_tokens


class TestTokenStream:
    def test_tokens_cover_program_exactly(self, tiny_program):
        result = build_dictionary(tiny_program, BaselineEncoding())
        tokens = build_tokens(tiny_program, result, result.dictionary)
        assert sum(t.length for t in tokens) == len(tiny_program.text)

    def test_token_order_preserves_program_order(self, tiny_program):
        result = build_dictionary(tiny_program, BaselineEncoding())
        tokens = build_tokens(tiny_program, result, result.dictionary)
        position = 0
        for token in tokens:
            assert token.orig_index == position
            position += token.length

    def test_codeword_tokens_reference_dictionary(self, tiny_program):
        result = build_dictionary(tiny_program, BaselineEncoding())
        tokens = build_tokens(tiny_program, result, result.dictionary)
        words = tiny_program.words()
        for token in tokens:
            if token.kind == "cw":
                entry = result.dictionary[token.rank]
                window = tuple(
                    words[token.orig_index : token.orig_index + token.length]
                )
                assert entry.words == window

    def test_instruction_tokens_keep_branch_targets(self, tiny_program):
        result = build_dictionary(tiny_program, BaselineEncoding())
        tokens = build_tokens(tiny_program, result, result.dictionary)
        for token in tokens:
            if token.kind == "ins":
                expected = tiny_program.text[token.orig_index].target_index
                assert token.target_index == expected

    def test_replaced_fraction_positive(self, tiny_program):
        result = build_dictionary(tiny_program, BaselineEncoding())
        tokens = build_tokens(tiny_program, result, result.dictionary)
        codeword_tokens = [t for t in tokens if t.kind == "cw"]
        assert codeword_tokens
        covered = sum(t.length for t in codeword_tokens)
        assert covered / len(tiny_program.text) > 0.25
