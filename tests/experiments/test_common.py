"""Experiment-infrastructure tests."""

import os

from repro.experiments.common import default_scale, pct, render_table


class TestRenderTable:
    def test_alignment_and_header_rule(self):
        out = render_table(
            ["name", "value"],
            [("a", 1), ("long-name", 22)],
            title="T",
        )
        lines = out.split("\n")
        assert lines[0] == "T"
        assert set(lines[2]) == {"-"}
        # Columns align: every row is the same width or shorter.
        assert lines[3].endswith(" 1")
        assert lines[4].endswith("22")

    def test_empty_rows(self):
        out = render_table(["x"], [])
        assert "x" in out

    def test_pct(self):
        assert pct(0.5) == "50.0%"
        assert pct(0.123456) == "12.3%"


class TestDefaultScale:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert default_scale() == 0.25

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_scale() == 1.0
