"""Experiment harness tests: every table/figure runs and shows the
paper's qualitative shape at small scale."""

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments import (
    fig1_redundancy,
    fig4_entry_size,
    fig5_num_codewords,
    fig6_dict_composition,
    fig7_bytes_saved,
    fig8_small_dicts,
    fig9_composition,
    fig11_vs_compress,
    table1_branch_offsets,
    table2_max_codewords,
    table3_prologue,
)

SCALE = 0.3


@pytest.fixture(scope="module", autouse=True)
def _warm_suite(small_suite):
    # Reuse the session-cached programs (suite builder caches by scale).
    return small_suite


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        for artifact in ("fig1", "table1", "fig4", "fig5", "table2", "fig6",
                         "fig7", "fig8", "fig9", "fig11", "table3"):
            assert artifact in REGISTRY

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_render_returns_text(self):
        out = run_experiment("table3", SCALE)
        assert "prologue" in out
        assert "compress" in out


class TestFig1:
    def test_unique_encodings_are_minority(self):
        rows = fig1_redundancy.run(SCALE)
        assert len(rows) == 8
        average = sum(r.unique_instruction_pct for r in rows) / len(rows)
        assert average < 0.30  # paper: < 20% at full scale

    def test_top_10pct_covers_majority(self):
        rows = fig1_redundancy.run(SCALE)
        for row in rows:
            assert row.top10_coverage > 0.35


class TestTable1:
    def test_shape(self):
        rows = table1_branch_offsets.run(SCALE)
        for row in rows:
            assert row.too_narrow_2byte <= row.too_narrow_1byte <= row.too_narrow_4bit
            assert row.percent(row.too_narrow_4bit) < 5.0


class TestFig4:
    def test_entry_length_shape(self):
        rows = fig4_entry_size.run(SCALE)
        for row in rows:
            # Longer entries help up to 4; at 8 the greedy loss means no
            # real further improvement (paper: flat or slightly worse).
            assert row.ratios[2] < row.ratios[1]
            assert row.ratios[4] <= row.ratios[2] + 0.002
            # Beyond 4 instructions the change is marginal either way
            # (paper: flat to slightly worse; our uniform prologue
            # sequences let 8 help slightly on some benchmarks).
            assert abs(row.ratios[8] - row.ratios[4]) < 0.06


class TestFig5:
    def test_monotonic_in_codewords(self):
        rows = fig5_num_codewords.run(SCALE)
        for row in rows:
            budgets = sorted(row.ratios)
            for small, large in zip(budgets, budgets[1:]):
                assert row.ratios[large] <= row.ratios[small] + 1e-9


class TestTable2:
    def test_codeword_counts_track_program_size(self):
        rows = {r.name: r for r in table2_max_codewords.run(SCALE)}
        assert rows["gcc"].max_codewords_used > rows["compress"].max_codewords_used
        for row in rows.values():
            assert 0 < row.max_codewords_used <= 8192


class TestFig6:
    def test_single_instruction_entries_dominate(self):
        rows = fig6_dict_composition.run(SCALE)
        largest = rows[-1]
        assert largest.length_fractions.get(1, 0) > 0.4  # paper: 48-80%

    def test_share_of_singles_grows_with_dict_size(self):
        rows = fig6_dict_composition.run(SCALE)
        assert rows[-1].length_fractions.get(1, 0) >= rows[0].length_fractions.get(1, 0)


class TestFig7:
    def test_single_instruction_savings_substantial(self):
        rows = fig7_bytes_saved.run(SCALE)
        largest = rows[-1]
        total = sum(largest.saved_fraction_by_length.values())
        singles = largest.saved_fraction_by_length.get(1, 0)
        assert singles / total > 0.30  # paper: 48-60%


class TestFig8:
    def test_small_dictionaries_still_save(self):
        rows = fig8_small_dicts.run(SCALE)
        for row in rows:
            assert row.ratios[8] < 1.0
            assert row.ratios[32] <= row.ratios[16] <= row.ratios[8]
        average_32 = sum(r.ratios[32] for r in rows) / len(rows)
        assert average_32 < 0.9  # paper: ~15% reduction on average

    def test_dictionary_fits_512_bytes(self):
        rows = fig8_small_dicts.run(SCALE)
        for row in rows:
            assert row.dictionary_bytes[32] <= 512


class TestFig9:
    def test_composition_shape(self):
        rows = fig9_composition.run(SCALE)
        for stats in rows:
            fractions = stats.composition_fractions()
            codeword_share = fractions["codeword_index"] + fractions["codeword_escape"]
            # Paper: codewords are a major share (~40%) of the result,
            # escape bytes exactly half of codeword bytes for the
            # 2-byte baseline.
            assert codeword_share > 0.2
            assert fractions["codeword_escape"] == pytest.approx(
                fractions["codeword_index"]
            )


class TestFig11:
    def test_nibble_reduction_in_paper_band(self):
        rows = fig11_vs_compress.run(SCALE)
        for row in rows:
            # Paper: 30-50% reduction; synthetic workloads are slightly
            # more compressible, allow 30-65%.
            reduction = 1.0 - row.nibble_ratio
            assert 0.30 < reduction < 0.65, row.name

    def test_gap_to_unix_compress_small(self):
        rows = fig11_vs_compress.run(SCALE)
        for row in rows:
            assert abs(row.gap_points) < 12.0


class TestTable3:
    def test_prologue_epilogue_band(self):
        rows = table3_prologue.run(SCALE)
        for row in rows:
            combined = row.prologue_fraction + row.epilogue_fraction
            assert 0.05 < combined < 0.25  # paper: ~12% typical
