"""Report renderer and repro-experiments CLI tests."""

import pytest

from repro.experiments.cli import main as experiments_main
from repro.experiments.registry import REGISTRY
from repro.experiments.report import EXTENSION_ORDER, PAPER_ORDER, generate_report


class TestReport:
    def test_all_registered_ids_covered_by_report_order(self):
        assert set(PAPER_ORDER + EXTENSION_ORDER) == set(REGISTRY)

    def test_generate_report_subset(self, small_suite):
        report = generate_report(scale=0.3, ids=["table3"])
        assert "prologue" in report
        assert "[table3:" in report

    def test_report_header_mentions_scale(self, small_suite):
        report = generate_report(scale=0.3, ids=["table1"])
        assert "scale 0.3" in report


class TestExperimentsCli:
    def test_list_prints_all(self, capsys):
        assert experiments_main(["--list"]) == 0
        printed = capsys.readouterr().out
        for experiment_id in REGISTRY:
            assert experiment_id in printed

    def test_unknown_id_fails(self, capsys):
        assert experiments_main(["no_such_experiment"]) == 2

    def test_runs_requested_experiment(self, small_suite, capsys):
        assert experiments_main(["table3", "--scale", "0.3"]) == 0
        printed = capsys.readouterr().out
        assert "Table 3" in printed
        assert "[table3 took" in printed
