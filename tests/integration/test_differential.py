"""Differential testing over randomly generated programs.

For a spread of generator seeds: synthesize a fresh MiniC program,
compile it, execute it, compress it with every encoding, execute the
compressed image, and require identical results.  This sweeps program
shapes (switches, loops, call graphs, array traffic) that no
hand-written test enumerates.
"""

import pytest

from repro.compiler import compile_and_link
from repro.core import BaselineEncoding, NibbleEncoding, OneByteEncoding, compress
from repro.core.image import CompressedImage
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import run_program
from repro.workloads.generator import CodeWriter, FunctionFactory, Profile

SEEDS = (11, 23, 47, 91, 137, 255)


def generate_program(seed: int):
    profile = Profile(
        name=f"fuzz{seed}",
        seed=seed,
        target_instructions=1200,
        int_arrays=4,
        char_arrays=2,
        scalars=4,
    )
    factory = FunctionFactory(profile)
    out = CodeWriter()
    factory.emit_globals(out)
    bodies = [factory.gen_function() for _ in range(12)]
    for body in bodies:
        out.line(body)
    out.open("void main()")
    out.line("int i;")
    for index in range(profile.int_arrays):
        array = f"ga_{profile.name}_{index}"
        out.open(f"for (i = 0; i < {profile.array_size}; i = i + 1)")
        out.line(f"{array}[i] = (i * {13 + index}) & 255;")
        out.close()
    for index in range(profile.char_arrays):
        array = f"gc_{profile.name}_{index}"
        out.open(f"for (i = 0; i < {profile.array_size}; i = i + 1)")
        out.line(f"{array}[i] = 32 + (i & 63);")
        out.close()
    out.line("int check = 0;")
    for position, fn in enumerate(factory.functions):
        out.line(
            f"check = check ^ {factory._call_expr(fn, str(position + 2), position)};"
        )
    out.line("print_int(check);")
    out.close()
    return compile_and_link(out.text(), name=profile.name)


@pytest.fixture(scope="module", params=SEEDS)
def fuzz_case(request):
    program = generate_program(request.param)
    reference = run_program(program, max_steps=5_000_000)
    return program, reference


class TestDifferential:
    def test_program_halts_with_output(self, fuzz_case):
        program, reference = fuzz_case
        assert reference.state.halted
        int(reference.output_text)  # a single integer checksum

    @pytest.mark.parametrize(
        "encoding_factory",
        [BaselineEncoding, NibbleEncoding, lambda: OneByteEncoding(32)],
        ids=["baseline", "nibble", "onebyte"],
    )
    def test_compressed_equivalence(self, fuzz_case, encoding_factory):
        program, reference = fuzz_case
        compressed = compress(program, encoding_factory())
        compressed.verify_stream()
        result = CompressedSimulator(compressed).run()
        assert result.output_text == reference.output_text
        assert result.exit_code == reference.exit_code

    def test_image_roundtrip_equivalence(self, fuzz_case):
        program, reference = fuzz_case
        compressed = compress(program, NibbleEncoding())
        blob = CompressedImage.from_compressed(compressed).to_bytes()
        loaded = CompressedImage.from_bytes(blob)
        result = CompressedSimulator.from_image(loaded).run()
        assert result.output_text == reference.output_text
