"""The paper's correctness property, end to end: every benchmark runs
identically as an uncompressed binary and as a compressed image through
the dictionary-expanding fetch stage, for every encoding."""

import pytest

from repro.core import BaselineEncoding, NibbleEncoding, OneByteEncoding, compress
from repro.machine import run_compressed, run_program


@pytest.fixture(scope="module")
def reference_results(small_suite):
    return {name: run_program(prog) for name, prog in small_suite.items()}


@pytest.mark.parametrize(
    "encoding_name,encoding_factory",
    [
        ("baseline", BaselineEncoding),
        ("nibble", NibbleEncoding),
        ("onebyte", lambda: OneByteEncoding(32)),
    ],
)
def test_compressed_execution_equivalent(
    small_suite, reference_results, encoding_name, encoding_factory
):
    for name, program in small_suite.items():
        compressed = compress(program, encoding_factory())
        compressed.verify_stream()
        result = run_compressed(compressed)
        reference = reference_results[name]
        assert result.output_text == reference.output_text, (name, encoding_name)
        assert result.exit_code == reference.exit_code, (name, encoding_name)


def test_compression_ratios_in_paper_band(small_suite):
    for name, program in small_suite.items():
        nibble = compress(program, NibbleEncoding())
        baseline = compress(program, BaselineEncoding())
        assert nibble.compression_ratio < baseline.compression_ratio, name
        assert 0.3 < nibble.compression_ratio < 0.7, name
        assert 0.4 < baseline.compression_ratio < 0.8, name


def test_data_results_identical_not_just_output(small_suite):
    # Deep check on one benchmark: final data segments agree.
    program = small_suite["li"]
    from repro.machine.simulator import Simulator
    from repro.machine.compressed_sim import CompressedSimulator

    reference = Simulator(program)
    reference.run()
    compressed = compress(program, NibbleEncoding())
    compressed_sim = CompressedSimulator(compressed)
    compressed_sim.run()
    length = len(program.data_image)
    # Jump-table slots legitimately differ (they hold code addresses);
    # mask them out.
    exclude = set()
    for slot in program.jump_table_slots:
        exclude.update(range(slot.data_offset, slot.data_offset + 4))
    ref_bytes = reference.memory.snapshot_data(length)
    cmp_bytes = compressed_sim.memory.snapshot_data(length)
    for offset in range(length):
        if offset in exclude:
            continue
        assert ref_bytes[offset] == cmp_bytes[offset], f"data byte {offset}"
