"""Golden equivalence: the simulation fast path must match the reference.

The translation-cache engine (``implementation="fast"``, the default)
is a pure performance refactor of both simulators: for every suite
program and every encoding, running fast and reference to completion
must yield the same exit code, output, step count, register file,
special registers, and data memory.  A hypothesis property extends the
check to random branchy programs.
"""

from hypothesis import given, settings, strategies as st

from repro.core import BaselineEncoding, NibbleEncoding, OneByteEncoding, compress
from repro.isa.instruction import make
from repro.linker.objfile import InsnRole
from repro.linker.program import Program, TextInstruction
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import Simulator

ENCODING_FACTORIES = {
    "baseline": BaselineEncoding,
    "nibble": NibbleEncoding,
    "onebyte": lambda: OneByteEncoding(32),
}


def assert_same_run(fast_sim, reference_sim, context):
    fs, rs = fast_sim.state, reference_sim.state
    assert fs.steps == rs.steps, context
    assert fs.gpr == rs.gpr, context
    assert fs.cr == rs.cr, context
    assert fs.lr == rs.lr, context
    assert fs.ctr == rs.ctr, context
    assert fs.halted == rs.halted, context
    assert fs.exit_code == rs.exit_code, context
    assert fs.output == rs.output, context


def test_suite_golden_uncompressed(small_suite):
    for name, program in small_suite.items():
        fast = Simulator(program, implementation="fast")
        fast_result = fast.run()
        reference = Simulator(program, implementation="reference")
        reference_result = reference.run()
        assert_same_run(fast, reference, name)
        assert fast.pc == reference.pc, name
        assert fast_result.steps == reference_result.steps, name
        assert (
            fast_result.instructions_fetched
            == reference_result.instructions_fetched
        ), name
        length = len(program.data_image)
        assert fast.memory.snapshot_data(length) == reference.memory.snapshot_data(
            length
        ), name


def test_suite_golden_compressed(small_suite):
    for name, program in small_suite.items():
        for encoding_name, factory in ENCODING_FACTORIES.items():
            context = (name, encoding_name)
            compressed = compress(program, factory())
            fast = CompressedSimulator(compressed, implementation="fast")
            fast_result = fast.run()
            reference = CompressedSimulator(
                compressed, implementation="reference"
            )
            reference_result = reference.run()
            assert_same_run(fast, reference, context)
            assert (fast.item_index, fast.micro) == (
                reference.item_index,
                reference.micro,
            ), context
            assert fast.stats == reference.stats, context
            assert (
                fast_result.instructions_fetched
                == reference_result.instructions_fetched
            ), context
            length = len(program.data_image)
            assert fast.memory.snapshot_data(
                length
            ) == reference.memory.snapshot_data(length), context


# ----------------------------------------------------------------------
# Property: random branchy programs.  All branches are forward, so the
# PC increases monotonically and every program reaches the epilogue
# (r0 <- 0; r3 <- exit; sc) regardless of the data path taken.
# ----------------------------------------------------------------------
_gpr = st.integers(0, 31)
_imm = st.integers(-0x8000, 0x7FFF)
_uimm = st.integers(0, 0xFFFF)

_STRAIGHTLINE = st.one_of(
    st.builds(lambda d, a, i: make("addi", d, a, i), _gpr, _gpr, _imm),
    st.builds(lambda s, a, i: make("ori", a, s, i), _gpr, _gpr, _uimm),
    st.builds(lambda d, a, b: make("add", d, a, b), _gpr, _gpr, _gpr),
    st.builds(lambda d, a, b: make("subf", d, a, b), _gpr, _gpr, _gpr),
    st.builds(lambda f, a, i: make("cmpwi", f, a, i), st.integers(0, 3), _gpr, _imm),
)


@st.composite
def _branchy_programs(draw):
    body = list(draw(st.lists(_STRAIGHTLINE, min_size=4, max_size=40)))
    n = len(body)
    text = [TextInstruction(ins, InsnRole.BODY, "f", False) for ins in body]
    # Sprinkle forward branches over the body: conditional (taken,
    # not-taken, and always variants of BO) and unconditional.
    for position in draw(
        st.lists(st.integers(0, n - 1), max_size=6, unique=True)
    ):
        target = draw(st.integers(position + 1, n))
        bo = draw(st.sampled_from([20, 12, 4]))
        if bo == 20:
            ins = make("b", target - position)
        else:
            ins = make("bc", bo, draw(st.integers(0, 15)), target - position)
        text[position] = TextInstruction(
            ins, InsnRole.BODY, "f", False, target_index=target
        )
    exit_code = draw(st.integers(0, 200))
    epilogue = [
        make("addi", 0, 0, 0),
        make("addi", 3, 0, exit_code),
        make("sc"),
    ]
    text.extend(
        TextInstruction(ins, InsnRole.BODY, "f", False) for ins in epilogue
    )
    return Program(name="branchy", text=text, data_image=bytearray(), symbols={})


@settings(max_examples=50, deadline=None)
@given(_branchy_programs())
def test_random_branchy_programs_equivalent(program):
    fast = Simulator(program, implementation="fast")
    fast_result = fast.run()
    reference = Simulator(program, implementation="reference")
    reference_result = reference.run()
    assert fast.state.halted and reference.state.halted
    assert_same_run(fast, reference, program.name)
    assert fast.pc == reference.pc
    assert fast_result.instructions_fetched == reference_result.instructions_fetched
