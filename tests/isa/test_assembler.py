"""Assembler tests: syntax, extended mnemonics, labels."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble_line, assemble_source


class TestBasicSyntax:
    def test_three_register_form(self):
        assert assemble_line("add r3,r4,r5").encode() == 0x7C642A14

    def test_memory_operand(self):
        ins = assemble_line("lwz r9,4(r28)")
        assert ins.operand("D(rA)") == (4, 28)

    def test_negative_displacement(self):
        ins = assemble_line("stwu r1,-32(r1)")
        assert ins.operand("D(rA)") == (-32, 1)

    def test_hex_immediates(self):
        assert assemble_line("ori r3,r3,0xff").operand("UI") == 0xFF

    def test_comments_ignored(self):
        unit = assemble_source("add r3,r4,r5 # comment\n; full line comment\n")
        assert len(unit.instructions) == 1

    def test_sp_alias(self):
        assert assemble_line("addi r3,sp,8").operand("rA") == 1

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble_line("frobnicate r1,r2")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble_line("add r3,r4")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble_line("add r3,r4,r32")


class TestExtendedMnemonics:
    @pytest.mark.parametrize(
        "text,canonical",
        [
            ("li r5,-1", "addi"),
            ("lis r5,16", "addis"),
            ("mr r31,r3", "or"),
            ("nop", "ori"),
            ("blr", "bclr"),
            ("bctr", "bcctr"),
            ("bctrl", "bcctrl"),
            ("mflr r0", "mfspr"),
            ("mtctr r12", "mtspr"),
            ("slwi r4,r4,2", "rlwinm"),
            ("srwi r4,r4,2", "rlwinm"),
            ("clrlwi r11,r9,24", "rlwinm"),
            ("not r3,r4", "nor"),
        ],
    )
    def test_expansion(self, text, canonical):
        assert assemble_line(text).mnemonic == canonical

    def test_conditional_branch_with_cr_field(self):
        ins = assemble_line("ble cr1,+3")
        assert ins.mnemonic == "bc"
        assert ins.operand("BO") == 4
        assert ins.operand("BI") == 5  # cr1, GT bit

    def test_conditional_branch_default_cr0(self):
        ins = assemble_line("beq +2")
        assert ins.operand("BI") == 2

    def test_cmpwi_implicit_cr0(self):
        assert assemble_line("cmpwi r3,5").operand("crfD") == 0

    def test_slwi_encoding_matches_manual(self):
        # slwi r4,r4,2 == rlwinm r4,r4,2,0,29
        ins = assemble_line("slwi r4,r4,2")
        assert (ins.operand("SH"), ins.operand("MB"), ins.operand("ME")) == (2, 0, 29)


class TestLabels:
    def test_forward_and_backward_branches(self):
        unit = assemble_source(
            """
            start:  addi r3,r0,0
            loop:   addi r3,r3,1
                    cmpwi r3,10
                    blt loop
                    b done
                    nop
            done:   blr
            """
        )
        assert unit.labels["start"] == 0
        assert unit.labels["loop"] == 1
        # blt loop: from index 3 back to 1.
        assert unit.instructions[3].operand("target") == -2
        # b done: from index 4 to 6.
        assert unit.instructions[4].operand("target") == 2

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble_source("b nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble_source("a: nop\na: nop")

    def test_multiple_labels_one_line(self):
        unit = assemble_source("a: b2: nop")
        assert unit.labels["a"] == unit.labels["b2"] == 0
