"""Disassembler tests, including the asm -> disasm -> asm round trip."""

from hypothesis import given, strategies as st

from repro.isa.assembler import assemble_line
from repro.isa.disassembler import disassemble, disassemble_words
from repro.isa.instruction import Instruction
from repro.isa.opcodes import INSTRUCTION_SPECS
from repro.isa.fields import OperandKind


class TestFormatting:
    def test_known_forms(self):
        assert disassemble(0x7C0802A6) == "mflr r0"
        assert disassemble(0x4E800020) == "blr"
        assert disassemble(0x552B063E) == "clrlwi r11,r9,24"
        assert disassemble(0x38A0FFFF) == "li r5,-1"
        assert disassemble(0x60000000) == "nop"

    def test_branch_with_index_shows_absolute_target(self):
        # b +4 instructions from index 10 -> byte address (10+4)*4.
        word = assemble_line("b +4").encode()
        assert disassemble(word, index=10) == "b 0x38"

    def test_unknown_word_prints_as_data(self):
        out = disassemble_words([0x00000000])
        assert out == [".word 0x00000000"]

    def test_conditional_with_cr_field(self):
        word = assemble_line("bgt cr1,-7").encode()
        assert disassemble(word) == "bgt cr1,-7"


def _operand_strategy(op):
    if op.kind is OperandKind.GPR:
        return st.integers(0, 31)
    if op.kind is OperandKind.CRF:
        return st.integers(0, 7)
    if op.kind is OperandKind.SIMM or op.kind is OperandKind.REL_TARGET:
        lo = -(1 << (op.field.width - 1))
        return st.integers(lo, -lo - 1)
    if op.kind in (OperandKind.UIMM, OperandKind.UINT):
        return st.integers(0, (1 << op.field.width) - 1)
    if op.kind is OperandKind.SPR:
        return st.sampled_from([8, 9])
    if op.kind is OperandKind.DISP_GPR:
        return st.tuples(st.integers(-32768, 32767), st.integers(0, 31))
    raise AssertionError(op.kind)


@st.composite
def _random_instruction(draw):
    spec = draw(st.sampled_from(INSTRUCTION_SPECS))
    values = []
    for op in spec.operands:
        value = draw(_operand_strategy(op))
        # bc BO values: restrict to the forms the assembler can re-parse.
        if spec.mnemonic in ("bc", "bcl", "bclr", "bcctr", "bcctrl") and op.name == "BO":
            value = draw(st.sampled_from([4, 12, 16, 20]))
        values.append(value)
    return Instruction(spec, tuple(values))


class TestRoundTrip:
    @given(_random_instruction())
    def test_disassemble_then_assemble(self, ins):
        word = ins.encode()
        text = disassemble(word)
        again = assemble_line(text)
        assert again.encode() == word
