"""Field and operand descriptor tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import fields as f
from repro.isa.fields import Field, Operand, OperandKind


class TestField:
    def test_primary_opcode_position(self):
        # addi = opcode 14: 0b001110 in bits 0-5.
        assert f.OPCD.extract(0x38000000) == 14

    def test_deposit_extract_roundtrip(self):
        word = f.RT.deposit(0, 21)
        assert f.RT.extract(word) == 21
        assert f.OPCD.extract(word) == 0

    def test_standard_field_layout(self):
        # The canonical PowerPC positions the whole ISA table relies on.
        assert (f.OPCD.start, f.OPCD.width) == (0, 6)
        assert (f.RT.start, f.RT.width) == (6, 5)
        assert (f.RA.start, f.RA.width) == (11, 5)
        assert (f.RB.start, f.RB.width) == (16, 5)
        assert (f.SI.start, f.SI.width) == (16, 16)
        assert (f.BD.start, f.BD.width) == (16, 14)
        assert (f.LI.start, f.LI.width) == (6, 24)
        assert (f.LK.start, f.LK.width) == (31, 1)
        assert (f.XO10.start, f.XO10.width) == (21, 10)
        assert (f.XO9.start, f.XO9.width) == (22, 9)


class TestSprSplitField:
    def test_lr_encoding(self):
        # SPR 8 (LR): halves swapped -> 0b0100000000 = 0x100.
        assert f.spr_encode(8) == 0x100
        assert f.spr_decode(0x100) == 8

    def test_ctr_encoding(self):
        assert f.spr_decode(f.spr_encode(9)) == 9

    @given(st.integers(0, 1023))
    def test_roundtrip_property(self, spr):
        assert f.spr_decode(f.spr_encode(spr)) == spr

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            f.spr_encode(1024)


class TestOperand:
    def test_signed_operand_encoding(self):
        operand = Operand("SI", OperandKind.SIMM, f.SI)
        word = operand.encode_into(0, -1)
        assert word & 0xFFFF == 0xFFFF
        assert operand.decode_from(word) == -1

    def test_unsigned_operand_encoding(self):
        operand = Operand("UI", OperandKind.UIMM, f.UI)
        assert operand.decode_from(operand.encode_into(0, 0xFFFF)) == 0xFFFF

    def test_signed_overflow_rejected(self):
        operand = Operand("SI", OperandKind.SIMM, f.SI)
        with pytest.raises(ValueError):
            operand.encode_into(0, 0x8000)

    def test_rel_target_sign_extended(self):
        operand = Operand("target", OperandKind.REL_TARGET, f.BD)
        assert operand.decode_from(operand.encode_into(0, -8192)) == -8192
