"""Encode/decode tests, including an exhaustive property round-trip."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa.fields import OperandKind
from repro.isa.instruction import Instruction, decode, make
from repro.isa.opcodes import INSTRUCTION_SPECS


KNOWN_ENCODINGS = {
    # (mnemonic, operands) -> expected word (from PowerPC references)
    ("addi", (3, 1, 8)): 0x38610008,
    ("stwu", (1, (-32, 1))): 0x9421FFE0,
    ("mfspr", (0, 8)): 0x7C0802A6,  # mflr r0
    ("mtspr", (8, 0)): 0x7C0803A6,  # mtlr r0
    ("bclr", (20, 0)): 0x4E800020,  # blr
    ("sc", ()): 0x44000002,
    ("add", (3, 4, 5)): 0x7C642A14,
    ("or", (31, 3, 3)): 0x7C7F1B78,  # mr r31,r3
    ("rlwinm", (11, 9, 0, 24, 31)): 0x552B063E,  # clrlwi r11,r9,24
    ("lbz", (9, (0, 28))): 0x893C0000,
    ("stb", (18, (0, 28))): 0x9A5C0000,
}


class TestKnownEncodings:
    @pytest.mark.parametrize("key,expected", sorted(KNOWN_ENCODINGS.items(),
                                                    key=lambda kv: str(kv[0])))
    def test_encode_matches_reference(self, key, expected):
        mnemonic, values = key
        assert make(mnemonic, *values).encode() == expected

    @pytest.mark.parametrize("key,word", sorted(KNOWN_ENCODINGS.items(),
                                                key=lambda kv: str(kv[0])))
    def test_decode_matches_reference(self, key, word):
        mnemonic, values = key
        ins = decode(word)
        assert ins.mnemonic == mnemonic
        assert ins.values == values


class TestOperandAccess:
    def test_operand_by_name(self):
        ins = make("addi", 3, 1, 8)
        assert ins.operand("rT") == 3
        assert ins.operand("rA") == 1
        assert ins.operand("SI") == 8

    def test_unknown_operand_rejected(self):
        with pytest.raises(KeyError):
            make("addi", 3, 1, 8).operand("rB")

    def test_replace_operand(self):
        ins = make("b", 100)
        assert ins.replace_operand("target", -5).operand("target") == -5

    def test_wrong_arity_rejected(self):
        with pytest.raises(EncodingError):
            make("addi", 3, 1)

    def test_out_of_range_immediate_rejected(self):
        with pytest.raises(EncodingError):
            make("addi", 3, 1, 40000).encode()


def _operand_strategy(op):
    if op.kind is OperandKind.GPR:
        return st.integers(0, 31)
    if op.kind is OperandKind.CRF:
        return st.integers(0, 7)
    if op.kind is OperandKind.SIMM or op.kind is OperandKind.REL_TARGET:
        lo = -(1 << (op.field.width - 1))
        return st.integers(lo, -lo - 1)
    if op.kind is OperandKind.UIMM:
        return st.integers(0, (1 << op.field.width) - 1)
    if op.kind is OperandKind.UINT:
        return st.integers(0, (1 << op.field.width) - 1)
    if op.kind is OperandKind.SPR:
        return st.sampled_from([1, 8, 9])
    if op.kind is OperandKind.DISP_GPR:
        return st.tuples(st.integers(-32768, 32767), st.integers(0, 31))
    raise AssertionError(op.kind)


@st.composite
def _random_instruction(draw):
    spec = draw(st.sampled_from(INSTRUCTION_SPECS))
    values = tuple(draw(_operand_strategy(op)) for op in spec.operands)
    return Instruction(spec, values)


class TestEncodeDecodeProperty:
    @given(_random_instruction())
    def test_roundtrip(self, ins):
        word = ins.encode()
        again = decode(word)
        assert again.mnemonic == ins.mnemonic
        assert again.values == ins.values
