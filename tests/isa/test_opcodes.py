"""Tests for the opcode tables and the illegal-opcode escape space."""

import pytest

from repro.errors import DecodingError
from repro.isa import opcodes
from repro.isa.fields import OPCD


class TestIllegalOpcodes:
    def test_exactly_eight_illegal_opcodes(self):
        # The paper's escape-byte construction depends on this count.
        assert len(opcodes.ILLEGAL_PRIMARY_OPCODES) == 8

    def test_thirty_two_escape_bytes(self):
        escapes = opcodes.escape_bytes()
        assert len(escapes) == 32
        assert len(set(escapes)) == 32

    def test_escape_bytes_decode_to_illegal_opcodes(self):
        for byte in opcodes.escape_bytes():
            assert (byte >> 2) in opcodes.ILLEGAL_PRIMARY_OPCODES

    def test_no_spec_uses_an_illegal_opcode(self):
        for spec in opcodes.INSTRUCTION_SPECS:
            primary = dict(spec.fixed)[OPCD]
            assert primary not in opcodes.ILLEGAL_PRIMARY_OPCODES, spec.mnemonic

    def test_is_illegal_word(self):
        assert opcodes.is_illegal_word(0x00000000)  # opcode 0
        assert not opcodes.is_illegal_word(0x38610008)  # addi


class TestSpecTable:
    def test_mnemonics_unique(self):
        names = [spec.mnemonic for spec in opcodes.INSTRUCTION_SPECS]
        assert len(names) == len(set(names))

    def test_spec_lookup(self):
        assert opcodes.spec_for("addi").mnemonic == "addi"
        with pytest.raises(KeyError):
            opcodes.spec_for("no_such_op")

    def test_branch_classification(self):
        assert opcodes.spec_for("b").is_relative_branch
        assert opcodes.spec_for("bc").is_relative_branch
        assert not opcodes.spec_for("bclr").is_relative_branch
        assert opcodes.spec_for("bclr").is_branch
        assert opcodes.spec_for("sc").is_branch
        assert not opcodes.spec_for("addi").is_branch
        assert opcodes.spec_for("bl").is_call

    def test_decode_known_words(self):
        # Reference encodings from the PowerPC architecture manual.
        assert opcodes.decode_spec(0x7C0802A6).mnemonic == "mfspr"  # mflr r0
        assert opcodes.decode_spec(0x4E800020).mnemonic == "bclr"  # blr
        assert opcodes.decode_spec(0x44000002).mnemonic == "sc"
        assert opcodes.decode_spec(0x9421FFE0).mnemonic == "stwu"

    def test_decode_illegal_opcode_raises(self):
        with pytest.raises(DecodingError):
            opcodes.decode_spec(0x00000000)

    def test_decode_unknown_extended_opcode_raises(self):
        # Opcode 31 with an extended opcode we do not implement.
        word = (31 << 26) | (1023 << 1)
        with pytest.raises(DecodingError):
            opcodes.decode_spec(word)

    def test_every_spec_word_decodes_to_itself(self):
        for spec in opcodes.INSTRUCTION_SPECS:
            assert opcodes.decode_spec(spec.match).mnemonic == spec.mnemonic
