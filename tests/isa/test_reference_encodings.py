"""Broad table of reference encodings from the PowerPC architecture.

Each word below was produced by cross-checking against the instruction
format definitions of the PowerPC architecture manual (primary opcode,
extended opcode, field placement).  This pins the encoder bit-for-bit
across the whole implemented subset — the property every compression
result in this repository ultimately rests on.
"""

import pytest

from repro.isa.assembler import assemble_line
from repro.isa.disassembler import disassemble

# (assembly, expected word)
REFERENCE = [
    # D-form arithmetic
    ("addi r1,r2,3", 0x38220003),
    ("addi r31,r31,-1", 0x3BFFFFFF),
    ("addis r5,r0,1", 0x3CA00001),
    ("mulli r3,r4,7", 0x1C640007),
    ("subfic r3,r4,10", 0x2064000A),
    # D-form logical (note rS in the RT slot, rA as destination)
    ("ori r0,r0,0", 0x60000000),
    ("ori r3,r4,0xffff", 0x6083FFFF),
    ("oris r3,r4,1", 0x64830001),
    ("xori r3,r4,255", 0x688300FF),
    ("xoris r3,r4,255", 0x6C8300FF),
    ("andi. r3,r4,15", 0x7083000F),
    ("andis. r3,r4,15", 0x7483000F),
    # compares
    ("cmpwi cr0,r3,0", 0x2C030000),
    ("cmpwi cr7,r3,-1", 0x2F83FFFF),
    ("cmplwi cr1,r0,8", 0x28800008),
    ("cmpw cr0,r3,r4", 0x7C032000),
    ("cmplw cr0,r3,r4", 0x7C032040),
    # memory
    ("lwz r1,0(r1)", 0x80210000),
    ("lwz r9,4(r28)", 0x813C0004),
    ("lwzu r9,4(r28)", 0x853C0004),
    ("lbz r9,0(r28)", 0x893C0000),
    ("lbzu r9,1(r28)", 0x8D3C0001),
    ("lhz r5,6(r7)", 0xA0A70006),
    ("lha r5,6(r7)", 0xA8A70006),
    ("stw r0,20(r1)", 0x90010014),
    ("stwu r1,-32(r1)", 0x9421FFE0),
    ("stb r18,0(r28)", 0x9A5C0000),
    ("stbu r18,1(r28)", 0x9E5C0001),
    ("sth r5,6(r7)", 0xB0A70006),
    # branches
    ("b +1", 0x48000004),
    ("b -1", 0x4BFFFFFC),
    ("bl +100", 0x48000191),
    ("beq +2", 0x41820008),
    ("bne +2", 0x40820008),
    ("blt -4", 0x4180FFF0),
    ("bge +3", 0x4080000C),
    ("bgt cr1,-7", 0x4185FFE4),
    ("ble cr1,+3", 0x4085000C),
    ("bdnz -4", 0x4200FFF0),
    ("blr", 0x4E800020),
    ("bctr", 0x4E800420),
    ("bctrl", 0x4E800421),
    ("sc", 0x44000002),
    # opcode-31 arithmetic (XO-form)
    ("add r3,r4,r5", 0x7C642A14),
    ("subf r3,r4,r5", 0x7C642850),
    ("neg r3,r4", 0x7C6400D0),
    ("mullw r3,r3,r4", 0x7C6321D6),
    ("divw r3,r3,r4", 0x7C6323D6),
    ("divwu r3,r3,r4", 0x7C632396),
    # opcode-31 logical/shift (X-form; rS in RT slot)
    ("and r3,r4,r5", 0x7C832838),
    ("or r3,r4,r5", 0x7C832B78),
    ("mr r31,r3", 0x7C7F1B78),
    ("xor r3,r4,r5", 0x7C832A78),
    ("nor r3,r4,r5", 0x7C8328F8),
    ("slw r3,r4,r5", 0x7C832830),
    ("srw r3,r4,r5", 0x7C832C30),
    ("sraw r3,r4,r5", 0x7C832E30),
    ("srawi r3,r4,4", 0x7C832670),
    ("extsb r3,r4", 0x7C830774),
    ("extsh r3,r4", 0x7C830734),
    # M-form
    ("clrlwi r11,r9,24", 0x552B063E),
    ("slwi r4,r4,2", 0x5484103A),
    ("srwi r4,r4,2", 0x5484F0BE),
    ("rlwinm r3,r4,5,6,20", 0x548329A8),
    # special registers
    ("mflr r0", 0x7C0802A6),
    ("mtlr r0", 0x7C0803A6),
    ("mfctr r12", 0x7D8902A6),
    ("mtctr r12", 0x7D8903A6),
]


@pytest.mark.parametrize("text,expected", REFERENCE, ids=[t for t, _ in REFERENCE])
def test_reference_encoding(text, expected):
    assert assemble_line(text).encode() == expected


@pytest.mark.parametrize("text,word", REFERENCE, ids=[t for t, _ in REFERENCE])
def test_reference_decodes_back(text, word):
    # Disassemble then re-assemble: identical word.
    assert assemble_line(disassemble(word)).encode() == word
