"""Linker tests: symbol resolution, relocation, jump tables, errors."""

import pytest

from repro.errors import LinkError
from repro.linker.layout import link
from repro.linker.objfile import AsmOp, DataItem, FunctionUnit, ObjectModule
from repro.linker.program import DATA_BASE, TEXT_BASE


def start_unit():
    unit = FunctionUnit("_start")
    unit.add(AsmOp("bl", (0,), target="main"))
    unit.add(AsmOp("addi", (0, 0, 0)))
    unit.add(AsmOp("sc", ()))
    return unit


def main_unit(extra_ops=()):
    unit = FunctionUnit("main")
    for op in extra_ops:
        unit.add(op)
    unit.add(AsmOp("bclr", (20, 0)))
    return unit


class TestSymbolResolution:
    def test_entry_placed_first(self):
        module = ObjectModule("m", functions=[main_unit(), start_unit()])
        program = link([module])
        assert program.entry_index == 0
        assert program.text[0].function == "_start"

    def test_missing_entry(self):
        module = ObjectModule("m", functions=[main_unit()])
        with pytest.raises(LinkError, match="_start"):
            link([module])

    def test_duplicate_function(self):
        module = ObjectModule("m", functions=[start_unit(), main_unit(), main_unit()])
        with pytest.raises(LinkError, match="duplicate"):
            link([module])

    def test_undefined_call_target(self):
        unit = FunctionUnit("main")
        unit.add(AsmOp("bl", (0,), target="nowhere"))
        unit.add(AsmOp("bclr", (20, 0)))
        module = ObjectModule("m", functions=[start_unit(), unit])
        with pytest.raises(LinkError, match="undefined"):
            link([module])

    def test_cross_function_call_offset(self):
        module = ObjectModule("m", functions=[start_unit(), main_unit()])
        program = link([module])
        bl = program.text[0]
        assert bl.target_index == 3  # main starts after the 3 _start ops
        assert bl.instruction.operand("target") == 3

    def test_symbols_have_addresses(self):
        module = ObjectModule("m", functions=[start_unit(), main_unit()])
        program = link([module])
        assert program.symbols["_start"] == TEXT_BASE
        assert program.symbols["main"] == TEXT_BASE + 12


class TestLocalLabels:
    def test_backward_branch(self):
        unit = FunctionUnit("main")
        unit.place_label("top")
        unit.add(AsmOp("addi", (3, 3, 1)))
        unit.add(AsmOp("b", (0,), target="top"))
        unit.add(AsmOp("bclr", (20, 0)))
        module = ObjectModule("m", functions=[start_unit(), unit])
        program = link([module])
        branch = program.text[4]
        assert branch.instruction.operand("target") == -1


class TestData:
    def test_data_layout_and_alignment(self):
        module = ObjectModule(
            "m",
            functions=[start_unit(), main_unit()],
            data=[
                DataItem("bytes", size=3, align=1, initial=b"ab"),
                DataItem("word", size=4, align=4, initial=(42).to_bytes(4, "big")),
            ],
        )
        program = link([module])
        assert program.symbols["bytes"] == DATA_BASE
        assert program.symbols["word"] == DATA_BASE + 4  # aligned past 3 bytes
        assert program.data_image[4:8] == (42).to_bytes(4, "big")

    def test_duplicate_data_symbol(self):
        module = ObjectModule(
            "m",
            functions=[start_unit(), main_unit()],
            data=[DataItem("x", 4), DataItem("x", 4)],
        )
        with pytest.raises(LinkError, match="duplicate"):
            link([module])

    def test_hi_lo_relocation(self):
        unit = FunctionUnit("main")
        unit.add(AsmOp("addis", (9, 0, 0), hi_symbol="obj"))
        unit.add(AsmOp("lwz", (3, (0, 9)), lo_symbol="obj"))
        unit.add(AsmOp("bclr", (20, 0)))
        module = ObjectModule(
            "m", functions=[start_unit(), unit], data=[DataItem("obj", 4)]
        )
        program = link([module])
        addis = program.text[3].instruction
        lwz = program.text[4].instruction
        high = addis.operand("SI")
        low, base = lwz.operand("D(rA)")
        assert ((high << 16) + low) & 0xFFFFFFFF == program.symbols["obj"]

    def test_jump_table_slots_patched(self):
        unit = FunctionUnit("main")
        unit.place_label("L0")
        unit.add(AsmOp("addi", (3, 0, 0)))
        unit.place_label("L1")
        unit.add(AsmOp("addi", (3, 0, 1)))
        unit.add(AsmOp("bclr", (20, 0)))
        table = DataItem(
            "jt", size=8, align=4,
            code_labels={0: ("main", "L0"), 1: ("main", "L1")},
        )
        module = ObjectModule("m", functions=[start_unit(), unit], data=[table])
        program = link([module])
        slot0 = int.from_bytes(program.data_image[0:4], "big")
        slot1 = int.from_bytes(program.data_image[4:8], "big")
        assert slot0 == program.address_of(3)
        assert slot1 == program.address_of(4)
        assert len(program.jump_table_slots) == 2

    def test_unknown_jump_table_label(self):
        table = DataItem("jt", size=4, code_labels={0: ("main", "nope")})
        module = ObjectModule(
            "m", functions=[start_unit(), main_unit()], data=[table]
        )
        with pytest.raises(LinkError, match="unknown label"):
            link([module])


class TestConsistency:
    def test_check_consistency_accepts_linked_program(self, tiny_program):
        tiny_program.check_consistency()

    def test_branch_target_indices_cover_entry(self, tiny_program):
        targets = tiny_program.branch_target_indices()
        assert tiny_program.entry_index in targets

    def test_address_round_trip(self, tiny_program):
        for index in (0, 1, len(tiny_program.text) - 1):
            address = tiny_program.address_of(index)
            assert tiny_program.index_of_address(address) == index

    def test_misaligned_address_rejected(self, tiny_program):
        with pytest.raises(ValueError):
            tiny_program.index_of_address(TEXT_BASE + 2)
