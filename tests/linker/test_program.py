"""Program-container behaviour tests."""

from repro import bitutils
from repro.linker.program import DATA_BASE, STACK_TOP, TEXT_BASE


class TestLayoutConstants:
    def test_memory_map_is_disjoint(self):
        # .text below .data below the stack; the data memory covers
        # [DATA_BASE, STACK_TOP) only.
        assert TEXT_BASE < DATA_BASE < STACK_TOP

    def test_data_base_fixed_independent_of_text(self, tiny_program):
        # Compression shrinks .text; data addresses must not depend on
        # its size (DESIGN.md: code addresses never live in immediates).
        assert tiny_program.data_base == DATA_BASE


class TestAccessors:
    def test_text_size_is_4n(self, tiny_program):
        assert tiny_program.text_size == 4 * len(tiny_program.text)

    def test_text_bytes_matches_words(self, tiny_program):
        data = tiny_program.text_bytes()
        assert bitutils.bytes_to_words(data) == tiny_program.words()

    def test_words_cached_and_stable(self, tiny_program):
        first = tiny_program.words()
        second = tiny_program.words()
        assert first is second  # cached: linked text never mutates

    def test_function_ranges_partition_text(self, tiny_program):
        ranges = sorted(tiny_program.function_ranges().values())
        assert ranges[0][0] == 0
        assert ranges[-1][1] == len(tiny_program.text)
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start

    def test_every_function_named_once(self, tiny_program):
        ranges = tiny_program.function_ranges()
        assert {"_start", "main", "weigh"} <= set(ranges)
        for name, (start, end) in ranges.items():
            assert all(
                ti.function == name for ti in tiny_program.text[start:end]
            )

    def test_library_flags(self, tiny_program):
        ranges = tiny_program.function_ranges()
        start, end = ranges["print_int"]
        assert all(ti.is_library for ti in tiny_program.text[start:end])
        start, end = ranges["main"]
        assert not any(ti.is_library for ti in tiny_program.text[start:end])
