"""The bulk decoder must be invisible except for speed.

Byte-identical items to the reference walk for every encoding and
backend, strict errors routed through the reference walk unchanged
(optimistic fallback), lenient decodes always deferred, and honest
stats.  Tier-1 CI runs without numpy, so every test parametrizes over
:func:`available_backends` rather than assuming the numpy backend.
"""

import pytest

from repro.core.compressor import compress
from repro.core.encodings import make_encoding
from repro.errors import DecompressionError
from repro.machine import bulkdecode
from repro.machine.decompressor import (
    StreamDecoder,
    clear_decode_cache,
    set_decode_cache_enabled,
)

ENCODINGS = ("baseline", "onebyte", "nibble")


@pytest.fixture(autouse=True)
def _fresh():
    clear_decode_cache()
    yield
    clear_decode_cache()


@pytest.fixture(params=bulkdecode.available_backends())
def backend(request):
    previous = bulkdecode.set_backend(request.param)
    yield request.param
    bulkdecode.set_backend(previous)


def _decoder(compressed, **kwargs):
    return StreamDecoder(
        compressed.stream,
        compressed.dictionary,
        compressed.encoding,
        compressed.total_units(),
        **kwargs,
    )


class TestIdentity:
    @pytest.mark.parametrize("encoding_name", ENCODINGS)
    def test_items_identical_to_reference(
        self, tiny_program, encoding_name, backend
    ):
        compressed = compress(tiny_program, make_encoding(encoding_name))
        decoder = _decoder(compressed)
        bulk = bulkdecode.decode_stream(decoder)
        reference = _decoder(compressed).decode_all_reference()
        assert bulk == reference
        assert all(type(item) is type(ref) for item, ref in zip(bulk, reference))

    @pytest.mark.parametrize("encoding_name", ENCODINGS)
    def test_suite_program_identity(self, small_suite, encoding_name, backend):
        program = small_suite["compress"]
        compressed = compress(program, make_encoding(encoding_name))
        decoder = _decoder(compressed)
        assert bulkdecode.decode_stream(decoder) == _decoder(
            compressed
        ).decode_all_reference()

    def test_decode_all_reports_bulk_implementation(self, tiny_program, backend):
        compressed = compress(tiny_program, make_encoding("nibble"))
        previous = set_decode_cache_enabled(False)
        try:
            decoder = _decoder(compressed)
            items = decoder.decode_all()
        finally:
            set_decode_cache_enabled(previous)
        assert decoder.last_implementation == f"bulk-{backend}"
        assert list(items) == _decoder(compressed).decode_all_reference()

    def test_instructions_shared_with_dictionary(self, tiny_program, backend):
        # Codeword expansions alias the predecoded dictionary tuples —
        # the bulk path must not rebuild per-item instruction tuples.
        compressed = compress(tiny_program, make_encoding("nibble"))
        decoder = _decoder(compressed)
        items = bulkdecode.decode_stream(decoder)
        entries = decoder._entries
        for item in items:
            if item.is_codeword:
                assert item.instructions is entries[item.rank]


class TestFallback:
    def test_lenient_always_falls_back(self, tiny_program):
        compressed = compress(tiny_program, make_encoding("nibble"))
        decoder = _decoder(compressed, strict=False)
        with pytest.raises(bulkdecode.BulkFallback):
            bulkdecode.decode_stream(decoder)
        assert "lenient" in bulkdecode.bulk_stats()["last_fallback"]

    @pytest.mark.parametrize("encoding_name", ENCODINGS)
    def test_truncated_stream_error_identical(
        self, tiny_program, encoding_name, backend
    ):
        compressed = compress(tiny_program, make_encoding(encoding_name))
        truncated = compressed.stream[: len(compressed.stream) // 2]

        def attempt(implementation):
            decoder = StreamDecoder(
                truncated,
                compressed.dictionary,
                compressed.encoding,
                compressed.total_units(),
            )
            with pytest.raises(DecompressionError) as excinfo:
                decoder.decode_all(implementation=implementation)
            return excinfo.value

        previous = set_decode_cache_enabled(False)
        try:
            bulk_error = attempt("bulk")
            reference_error = attempt("reference")
        finally:
            set_decode_cache_enabled(previous)
        assert str(bulk_error) == str(reference_error)
        assert bulk_error.unit_address == reference_error.unit_address

    def test_corrupt_stream_error_identical(self, tiny_program, backend):
        compressed = compress(tiny_program, make_encoding("onebyte"))
        # Flip a codeword byte into the escape range mid-stream: the
        # tail no longer decodes to the expected unit count.
        corrupt = bytearray(compressed.stream)
        corrupt[len(corrupt) // 3] ^= 0xFF

        def attempt(implementation):
            decoder = StreamDecoder(
                bytes(corrupt),
                compressed.dictionary,
                compressed.encoding,
                compressed.total_units(),
            )
            try:
                decoder.decode_all(implementation=implementation)
            except DecompressionError as exc:
                return str(exc), exc.unit_address
            return None

        previous = set_decode_cache_enabled(False)
        try:
            assert attempt("bulk") == attempt("reference")
        finally:
            set_decode_cache_enabled(previous)

    def test_fallback_counts_in_stats(self, tiny_program):
        before = bulkdecode.bulk_stats()["fallbacks"]
        decoder = _decoder(
            compress(tiny_program, make_encoding("nibble")), strict=False
        )
        with pytest.raises(bulkdecode.BulkFallback):
            bulkdecode.decode_stream(decoder)
        assert bulkdecode.bulk_stats()["fallbacks"] == before + 1

    def test_fallback_reasons_counted_per_reason(self, tiny_program):
        bulkdecode.reset_bulk_stats()
        decoder = _decoder(
            compress(tiny_program, make_encoding("nibble")), strict=False
        )
        with pytest.raises(bulkdecode.BulkFallback):
            bulkdecode.decode_stream(decoder)
        stats = bulkdecode.bulk_stats()
        assert stats["fallbacks"] == 1
        assert sum(stats["fallback_reasons"].values()) == 1
        (reason,) = stats["fallback_reasons"]
        assert "lenient" in reason
        # The snapshot is a copy: mutating it must not touch the counters.
        stats["fallback_reasons"][reason] = 99
        assert bulkdecode.bulk_stats()["fallback_reasons"][reason] == 1


class TestBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            bulkdecode.set_backend("gpu")

    def test_set_backend_returns_previous(self):
        current = bulkdecode.backend()
        assert bulkdecode.set_backend("python") == current
        bulkdecode.set_backend(current)

    def test_tables_survive_clear(self, tiny_program, backend):
        compressed = compress(tiny_program, make_encoding("nibble"))
        first = bulkdecode.decode_stream(_decoder(compressed))
        bulkdecode.clear_tables()
        second = bulkdecode.decode_stream(_decoder(compressed))
        assert first == second

    def test_empty_stream_decodes_empty(self, tiny_program, backend):
        compressed = compress(tiny_program, make_encoding("nibble"))
        decoder = StreamDecoder(
            b"", compressed.dictionary, compressed.encoding, 0
        )
        assert bulkdecode.decode_stream(decoder) == []
