"""Compressed-program processor tests."""

import pytest

from repro.core import BaselineEncoding, NibbleEncoding, OneByteEncoding, compress
from repro.machine.compressed_sim import CompressedSimulator, run_compressed
from repro.machine.simulator import run_program


class TestEquivalence:
    @pytest.mark.parametrize(
        "encoding_factory",
        [BaselineEncoding, NibbleEncoding, lambda: OneByteEncoding(32)],
    )
    def test_output_identical_to_uncompressed(self, tiny_program, encoding_factory):
        reference = run_program(tiny_program)
        compressed = compress(tiny_program, encoding_factory())
        result = run_compressed(compressed)
        assert result.output_text == reference.output_text
        assert result.exit_code == reference.exit_code

    def test_same_instruction_count_executed(self, tiny_program):
        # Compression never changes the dynamic instruction sequence
        # (when no branch was relaxed).
        reference = run_program(tiny_program)
        compressed = compress(tiny_program, NibbleEncoding())
        assert compressed.relaxations == 0
        result = run_compressed(compressed)
        assert result.steps == reference.steps


class TestFetchStats:
    def test_fetch_traffic_reduced(self, tiny_program):
        reference = run_program(tiny_program)
        compressed = compress(tiny_program, NibbleEncoding())
        simulator = CompressedSimulator(compressed)
        simulator.run()
        uncompressed_bytes = 4 * reference.steps
        compressed_bytes = simulator.stats.bytes_fetched(
            compressed.encoding.alignment_bits
        )
        assert compressed_bytes < uncompressed_bytes

    def test_codeword_expansions_counted(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        simulator = CompressedSimulator(compressed)
        simulator.run()
        assert simulator.stats.codeword_expansions > 0
        assert (
            simulator.stats.instructions_issued
            >= simulator.stats.codeword_expansions
            + simulator.stats.escaped_instructions
        )


class TestAddressing:
    def test_entry_point_reachable(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        simulator = CompressedSimulator(compressed)
        entry_unit = compressed.index_to_unit[tiny_program.entry_index]
        assert simulator.items[simulator.item_index].address == entry_unit

    def test_branch_into_item_interior_rejected(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        simulator = CompressedSimulator(compressed)
        # Find an item wider than one unit and aim inside it.
        wide = next(i for i in simulator.items if i.size_units > 1)
        from repro.errors import DecompressionError

        with pytest.raises(DecompressionError):
            simulator._goto_unit(wide.address + 1)
