"""Control fusion: fused compare+branch must be invisible except for speed.

The trace builder may absorb a trailing compare into the control
closure (``Trace.fused_lead_pc`` / ``fused_lead_key``); these tests
prove the absorption changes nothing observable — branch decisions, CR
side effects, step counts, error locations, fetch statistics, and
profile counts all stay identical to the reference interpreters — and
that the lockstep harness *would* catch a bug in the fused closure, by
planting three different ones and watching them get caught.
"""

from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NibbleEncoding, compress
from repro.errors import SimulationError
from repro.isa.instruction import make
from repro.linker.objfile import InsnRole
from repro.linker.program import Program, TextInstruction
from repro.machine import fastpath, fusion
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.decompressor import StreamDecoder
from repro.machine.simulator import Simulator, profile_program
from repro.verify.fastpath import (
    _same_error,
    lockstep_compressed_traces,
    lockstep_program_traces,
)


@pytest.fixture(autouse=True)
def _default_fusion_config():
    fusion.configure(
        enabled=True, pairs=fusion.DEFAULT_PAIRS,
        control_enabled=True, control_pairs=fusion.DEFAULT_CONTROL_PAIRS,
    )
    fastpath.clear_translation_caches()
    yield
    fusion.configure(
        enabled=True, pairs=fusion.DEFAULT_PAIRS,
        control_enabled=True, control_pairs=fusion.DEFAULT_CONTROL_PAIRS,
    )
    fastpath.clear_translation_caches()


def _program(name, rows):
    """Build a Program from (instruction, branch-target-index|None) rows."""
    text = [
        TextInstruction(ins, InsnRole.BODY, "f", False, target_index=target)
        if target is not None
        else TextInstruction(ins, InsnRole.BODY, "f", False)
        for ins, target in rows
    ]
    return Program(name=name, text=text, data_image=bytearray(), symbols={})


def _branchy_program(exit_code=7):
    """cmpwi+bc on the CR-local fast test path; the branch is taken."""
    return _program("branchy", [
        (make("addi", 3, 0, 5), None),       # 0
        (make("cmpwi", 0, 3, 3), None),      # 1: 5 > 3 -> gt
        (make("bc", 12, 1, 2), 4),           # 2: branch if gt -> index 4
        (make("addi", 4, 0, 111), None),     # 3: skipped when taken
        (make("addi", 4, 4, 222), None),     # 4
        (make("addi", 0, 0, 0), None),       # 5
        (make("addi", 3, 0, exit_code), None),
        (make("sc"), None),
    ])


def _falloff_program(iterations=3):
    """A countdown loop whose final fall-through leaves the stream.

    The compressed fast path raises the fell-off-the-end error *inside*
    the fused compare+branch closure, so its structured step/unit
    fields audit the fused error protocol.
    """
    return _program("falloff", [
        (make("addi", 3, 0, iterations), None),  # 0
        (make("addi", 3, 3, -1), None),          # 1: loop head
        (make("cmpwi", 0, 3, 0), None),          # 2
        (make("bc", 12, 1, -2), 1),              # 3: loop while r3 > 0
    ])


@contextmanager
def _planted(corrupt):
    """Swap ``fusion.compare_feed`` for a corrupted wrapper.

    ``corrupt(feed)`` returns the sabotaged feed closure.  Only the
    fused control path consults ``compare_feed``, so every divergence
    these plants produce is attributable to the fused closure alone.
    """
    real = fusion.compare_feed

    def evil(ins):
        result = real(ins)
        if result is None:
            return None
        feed, crf = result
        return corrupt(feed), crf

    evil.cache_clear = real.cache_clear
    fusion.compare_feed = evil
    fastpath.clear_translation_caches()
    try:
        yield
    finally:
        fusion.compare_feed = real
        fastpath.clear_translation_caches()


def _swap_lt_gt(feed):
    """Correct CR write, wrong returned bits -> wrong branch decision."""
    def bad(state):
        bits = feed(state)
        return {8: 4, 4: 8}.get(bits, bits)
    return bad


def _corrupt_so(feed):
    """Correct branch decision, wrong CR side effect (cr0 SO flipped)."""
    def bad(state):
        bits = feed(state)
        state.cr ^= 1 << 28
        return bits
    return bad


def _missing_final_step(feed):
    """Drop the compare's step on the faulting (eq) iteration only."""
    def bad(state):
        bits = feed(state)
        if bits == 2:
            state.steps -= 1
        return bits
    return bad


class TestFusedControlSemantics:
    def test_traces_fuse_and_match_reference(self):
        program = _branchy_program()
        fast = Simulator(program, implementation="fast")
        fast.run()
        reference = Simulator(program, implementation="reference")
        reference.run()
        assert fast.state.gpr == reference.state.gpr
        assert fast.state.gpr[4] == 222  # branch was taken
        assert fast.state.cr == reference.state.cr
        assert fast.state.steps == reference.state.steps
        cache = fastpath.program_cache(program)
        assert any(
            t.fused_lead_pc is not None for t in cache.traces.values()
        ), "the cmp+bc pair did not fuse"

    def test_fused_falloff_error_matches_reference(self):
        compressed = compress(_falloff_program(), NibbleEncoding())
        result = lockstep_compressed_traces(compressed)
        assert result.ok, result.render()
        fast = CompressedSimulator(compressed, implementation="fast")
        with pytest.raises(SimulationError) as fast_exc:
            fast.run()
        cache = fastpath.stream_cache_for(fast)
        assert any(
            t.fused_lead_key is not None for t in cache.traces.values()
        ), "the cmp+bc pair did not fuse in the stream"
        reference = CompressedSimulator(compressed, implementation="reference")
        with pytest.raises(SimulationError) as ref_exc:
            reference.run()
        assert _same_error(fast_exc.value, ref_exc.value)
        assert fast_exc.value.step == ref_exc.value.step
        assert fast_exc.value.unit_address == ref_exc.value.unit_address

    def test_control_fusion_report_counts_this_program(self):
        program = _branchy_program()
        counts = profile_program(program, max_steps=10_000)
        report = fastpath.control_fusion_report(program, counts)
        assert report["sites"] == 1
        assert report["fused_sites"] == 1
        assert report["dynamic_pairs"] == 1
        assert report["coverage"] == 1.0


class TestPlantedBugs:
    """Each sabotage of the fused closure must be caught by the harness."""

    def test_wrong_branch_decision_is_caught(self):
        program = _branchy_program()
        clean = Simulator(program, implementation="reference")
        clean.run()
        with _planted(_swap_lt_gt):
            buggy = Simulator(program, implementation="fast")
            buggy.run()
            assert buggy.state.gpr[4] == 333  # took the wrong arm
            result = lockstep_program_traces(_branchy_program())
        assert buggy.state.gpr != clean.state.gpr
        assert not result.ok
        assert result.divergence.kind in ("pc", "register", "steps")

    def test_wrong_cr_side_effect_is_caught(self):
        program = _branchy_program()
        clean = Simulator(program, implementation="reference")
        clean.run()
        with _planted(_corrupt_so):
            buggy = Simulator(program, implementation="fast")
            buggy.run()
            # Branch decision unharmed -- only the CR state diverges.
            assert buggy.state.gpr == clean.state.gpr
            assert buggy.state.cr != clean.state.cr
            result = lockstep_program_traces(_branchy_program())
        assert not result.ok
        assert result.divergence.kind == "cr"

    def test_misstepped_fault_is_caught(self):
        compressed = compress(_falloff_program(), NibbleEncoding())
        reference = CompressedSimulator(compressed, implementation="reference")
        with pytest.raises(SimulationError) as ref_exc:
            reference.run()
        with _planted(_missing_final_step):
            fast = CompressedSimulator(compressed, implementation="fast")
            with pytest.raises(SimulationError) as fast_exc:
                fast.run()
            result = lockstep_compressed_traces(compressed)
        assert fast_exc.value.step == ref_exc.value.step - 1
        assert not _same_error(fast_exc.value, ref_exc.value)
        assert not result.ok

    def test_same_error_is_stricter_than_str(self):
        # Identical rendered messages, different structured fields:
        # only the field comparison tells them apart.
        a = SimulationError("boom [step 5]")
        b = SimulationError("boom", step=5)
        assert str(a) == str(b)
        assert not _same_error(a, b)
        assert _same_error(b, SimulationError("boom", step=5))


class TestAccounting:
    def test_fused_control_keeps_instruction_granular_counts(self):
        program = _branchy_program()
        fusion.configure(pairs=(), control_enabled=False)
        Simulator(program, implementation="fast").run()
        cache = fastpath.program_cache(program)
        plain = {
            pc: (t.body_insns, len(t.body), t.steps_cost)
            for pc, t in cache.traces.items()
        }
        fusion.configure(control_enabled=True)
        Simulator(program, implementation="fast").run()
        cache = fastpath.program_cache(program)
        fused_traces = 0
        for pc, trace in cache.traces.items():
            insns, thunks, cost = plain[pc]
            assert trace.body_insns == insns
            assert trace.steps_cost == cost
            if trace.fused_lead_pc is not None:
                fused_traces += 1
                assert len(trace.body) == thunks - 1
            else:
                assert len(trace.body) == thunks
        assert fused_traces > 0

    def test_profile_counts_identical_with_control_fusion(self):
        program = _branchy_program()
        with_fusion = profile_program(program, max_steps=10_000)
        fusion.configure(control_enabled=False)
        without = profile_program(
            program, max_steps=10_000, implementation="fast"
        )
        assert with_fusion == without

    def test_stream_stats_identical_with_control_fusion(self):
        compressed = compress(_branchy_program(), NibbleEncoding())
        fast = CompressedSimulator(compressed, implementation="fast")
        fast.run()
        reference = CompressedSimulator(compressed, implementation="reference")
        reference.run()
        assert fast.stats == reference.stats
        assert fast.state.steps == reference.state.steps


class TestColumnarEquivalence:
    def test_columns_are_byte_equivalent_to_items(self, small_suite):
        for name, program in small_suite.items():
            compressed = compress(program, NibbleEncoding())
            decoder = StreamDecoder(
                compressed.stream,
                compressed.dictionary,
                compressed.encoding,
                compressed.total_units(),
            )
            columns = decoder.decode_all_columnar()
            items = columns.items()
            assert items is columns.items()  # memoized view
            assert list(items) == decoder.decode_all_reference(), name
            assert columns.addresses == [i.address for i in items], name
            assert columns.sizes == [i.size_units for i in items], name
            assert columns.is_codeword == [i.is_codeword for i in items], name
            assert columns.ranks == [i.rank for i in items], name
            assert columns.instructions == [
                i.instructions for i in items
            ], name
            assert columns.index == {
                i.address: n for n, i in enumerate(items)
            }, name

    def test_simulator_item_view_is_lazy_and_identical(self):
        from repro.machine.decompressor import clear_decode_cache

        compressed = compress(_branchy_program(), NibbleEncoding())
        # Drop the shared decode cache: an earlier consumer of the same
        # stream may already have memoized the tuple view on it.
        clear_decode_cache()
        sim = CompressedSimulator(compressed, implementation="fast")
        sim.run()  # fast run never materializes the tuple view
        assert sim._columns._items is None
        view = sim.items
        assert sim._columns._items is not None
        assert list(view) == list(sim._columns.items())


# ----------------------------------------------------------------------
# Property: random compare+branch programs, control fusion on vs off vs
# the reference interpreter, uncompressed and compressed.  Branches are
# forward (the epilogue is always reached); compares hit both the
# CR-local fast test (crf == bi >> 2) and the generic decision path.
# ----------------------------------------------------------------------
@st.composite
def _cmp_branch_programs(draw):
    rows = []
    for _ in range(draw(st.integers(2, 6))):
        reg = draw(st.integers(3, 10))
        rows.append((make("addi", reg, 0, draw(st.integers(-100, 100))), None))
        crf = draw(st.sampled_from([0, 0, 0, 1]))
        rows.append(
            (make("cmpwi", crf, reg, draw(st.integers(-100, 100))), None)
        )
        bo = draw(st.sampled_from([12, 4]))
        bi = (
            4 * crf + draw(st.integers(0, 3))
            if draw(st.booleans())
            else draw(st.integers(0, 7))
        )
        fillers = draw(st.integers(1, 3))
        position = len(rows)
        target = position + 1 + draw(st.integers(1, fillers))
        rows.append((make("bc", bo, bi, target - position), target))
        for _ in range(fillers):
            filler = draw(st.integers(3, 10))
            rows.append((make("addi", filler, filler, 1), None))
    rows += [
        (make("addi", 0, 0, 0), None),
        (make("addi", 3, 0, draw(st.integers(0, 100))), None),
        (make("sc"), None),
    ]
    return _program("cmpbranchy", rows)


@settings(max_examples=30, deadline=None)
@given(_cmp_branch_programs())
def test_random_cmp_branch_programs_equivalent(program):
    fusion.configure(
        enabled=True, pairs=fusion.DEFAULT_PAIRS,
        control_enabled=True, control_pairs=fusion.DEFAULT_CONTROL_PAIRS,
    )
    fastpath.clear_translation_caches()
    fused = Simulator(program, implementation="fast")
    fused.run()
    compressed = compress(program, NibbleEncoding())
    fused_stream = CompressedSimulator(compressed, implementation="fast")
    fused_stream.run()

    fusion.configure(control_enabled=False)
    fastpath.clear_translation_caches()
    plain = Simulator(program, implementation="fast")
    plain.run()
    reference = Simulator(program, implementation="reference")
    reference.run()
    stream_reference = CompressedSimulator(
        compressed, implementation="reference"
    )
    stream_reference.run()

    for candidate in (fused, plain):
        assert candidate.state.gpr == reference.state.gpr
        assert candidate.state.cr == reference.state.cr
        assert candidate.state.steps == reference.state.steps
        assert candidate.state.exit_code == reference.state.exit_code
        assert candidate.pc == reference.pc
    assert fused_stream.state.gpr == stream_reference.state.gpr
    assert fused_stream.state.cr == stream_reference.state.cr
    assert fused_stream.state.steps == stream_reference.state.steps
    assert fused_stream.stats == stream_reference.stats
