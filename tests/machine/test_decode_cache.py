"""The process-wide decode cache must be invisible except for speed.

Cached decodes must be item-for-item identical to fresh decodes, the
cache must serve repeated constructions (hits) and stay out of lenient
decoding, and a full lockstep differential run must behave identically
with the cache on and off.
"""

import pytest

from repro.core.compressor import compress
from repro.core.encodings import make_encoding
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.decompressor import (
    DecodeCache,
    StreamDecoder,
    clear_decode_cache,
    decode_cache_stats,
    set_decode_cache_enabled,
)
from repro.service.metrics import MetricsRegistry
from repro.verify import run_differential


@pytest.fixture()
def compressed(tiny_program):
    return compress(tiny_program, make_encoding("nibble"))


def _decoder(compressed, **kwargs):
    return StreamDecoder(
        compressed.stream,
        compressed.dictionary,
        compressed.encoding,
        compressed.total_units(),
        **kwargs,
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_decode_cache()
    yield
    clear_decode_cache()


class TestCorrectness:
    def test_cached_equals_uncached(self, compressed):
        cached_items, cached_index = _decoder(compressed).decode_all_indexed()
        previous = set_decode_cache_enabled(False)
        try:
            plain_items = _decoder(compressed).decode_all()
        finally:
            set_decode_cache_enabled(previous)
        assert list(cached_items) == plain_items
        assert cached_index == {
            item.address: i for i, item in enumerate(plain_items)
        }

    def test_decode_all_uses_cache(self, compressed):
        first = _decoder(compressed).decode_all()
        second = _decoder(compressed).decode_all()
        assert first == second
        stats = decode_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_simulators_share_one_decode(self, compressed):
        CompressedSimulator(compressed)
        CompressedSimulator(compressed)
        stats = decode_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_differential_with_and_without_cache(self, tiny_program, compressed):
        with_cache = run_differential(tiny_program, compressed)
        assert decode_cache_stats()["misses"] == 1
        repeated = run_differential(tiny_program, compressed)
        assert decode_cache_stats()["hits"] >= 1
        previous = set_decode_cache_enabled(False)
        try:
            without_cache = run_differential(tiny_program, compressed)
        finally:
            set_decode_cache_enabled(previous)
        assert with_cache.ok and repeated.ok and without_cache.ok

    def test_distinct_images_distinct_entries(self, tiny_program):
        for name in ("baseline", "onebyte", "nibble"):
            _decoder(compress(tiny_program, make_encoding(name))).decode_all()
        stats = decode_cache_stats()
        assert stats["entries"] == 3
        assert stats["hits"] == 0


class TestCachePolicy:
    def test_lenient_never_cached(self, compressed):
        _decoder(compressed, strict=False).decode_all()
        assert decode_cache_stats()["entries"] == 0
        with pytest.raises(ValueError):
            _decoder(compressed, strict=False).decode_all_indexed()

    def test_disable_returns_previous_state(self):
        assert set_decode_cache_enabled(False) is True
        assert set_decode_cache_enabled(True) is False

    def test_disabled_cache_stays_empty(self, compressed):
        previous = set_decode_cache_enabled(False)
        try:
            _decoder(compressed).decode_all()
            _decoder(compressed).decode_all()
        finally:
            set_decode_cache_enabled(previous)
        stats = decode_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "entries": 0}

    def test_lru_eviction(self, compressed):
        cache = DecodeCache(capacity=2)
        for token in ("a", "b", "c"):
            assert cache.lookup(token) is None
            cache.store(token, (token,), {0: 0})
        assert len(cache) == 2
        assert cache.lookup("a") is None  # evicted (oldest)
        assert cache.lookup("c") == (("c",), {0: 0})

    def test_clear_resets_counters(self, compressed):
        _decoder(compressed).decode_all()
        _decoder(compressed).decode_all()
        clear_decode_cache()
        assert decode_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestMetrics:
    def test_hits_and_misses_reach_registry(self, compressed):
        registry = MetricsRegistry()
        with registry.installed():
            _decoder(compressed).decode_all()
            _decoder(compressed).decode_all()
        counters = registry.as_dict()["counters"]
        assert counters["decode_cache.misses"] == 1
        assert counters["decode_cache.hits"] == 1
