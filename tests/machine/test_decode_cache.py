"""The process-wide decode cache must be invisible except for speed.

Cached decodes must be item-for-item identical to fresh decodes, the
cache must serve repeated constructions (hits) and stay out of lenient
decoding, and a full lockstep differential run must behave identically
with the cache on and off.
"""

import pytest

from repro.core.compressor import compress
from repro.core.encodings import make_encoding
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.decompressor import (
    DecodeCache,
    StreamDecoder,
    clear_decode_cache,
    decode_cache_stats,
    set_decode_cache_enabled,
)
from repro.service.metrics import MetricsRegistry
from repro.verify import run_differential


@pytest.fixture()
def compressed(tiny_program):
    return compress(tiny_program, make_encoding("nibble"))


def _decoder(compressed, **kwargs):
    return StreamDecoder(
        compressed.stream,
        compressed.dictionary,
        compressed.encoding,
        compressed.total_units(),
        **kwargs,
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_decode_cache()
    yield
    clear_decode_cache()


class TestCorrectness:
    def test_cached_equals_uncached(self, compressed):
        cached_items, cached_index = _decoder(compressed).decode_all_indexed()
        previous = set_decode_cache_enabled(False)
        try:
            plain_items = _decoder(compressed).decode_all()
        finally:
            set_decode_cache_enabled(previous)
        assert list(cached_items) == list(plain_items)
        assert cached_index == {
            item.address: i for i, item in enumerate(plain_items)
        }

    def test_decode_all_uses_cache(self, compressed):
        first = _decoder(compressed).decode_all()
        second = _decoder(compressed).decode_all()
        assert first == second
        stats = decode_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_cache_hit_returns_shared_tuple(self, compressed):
        # No per-hit list copy: both calls hand back the same tuple.
        first = _decoder(compressed).decode_all()
        second = _decoder(compressed).decode_all()
        assert isinstance(first, tuple)
        assert second is first

    def test_simulators_share_one_decode(self, compressed):
        CompressedSimulator(compressed)
        CompressedSimulator(compressed)
        stats = decode_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1

    def test_differential_with_and_without_cache(self, tiny_program, compressed):
        with_cache = run_differential(tiny_program, compressed)
        assert decode_cache_stats()["misses"] == 1
        repeated = run_differential(tiny_program, compressed)
        assert decode_cache_stats()["hits"] >= 1
        previous = set_decode_cache_enabled(False)
        try:
            without_cache = run_differential(tiny_program, compressed)
        finally:
            set_decode_cache_enabled(previous)
        assert with_cache.ok and repeated.ok and without_cache.ok

    def test_distinct_images_distinct_entries(self, tiny_program):
        for name in ("baseline", "onebyte", "nibble"):
            _decoder(compress(tiny_program, make_encoding(name))).decode_all()
        stats = decode_cache_stats()
        assert stats["entries"] == 3
        assert stats["hits"] == 0


class TestCachePolicy:
    def test_lenient_never_cached(self, compressed):
        _decoder(compressed, strict=False).decode_all()
        assert decode_cache_stats()["entries"] == 0
        with pytest.raises(ValueError):
            _decoder(compressed, strict=False).decode_all_indexed()

    def test_disable_returns_previous_state(self):
        assert set_decode_cache_enabled(False) is True
        assert set_decode_cache_enabled(True) is False

    def test_disabled_cache_stays_empty(self, compressed):
        previous = set_decode_cache_enabled(False)
        try:
            _decoder(compressed).decode_all()
            _decoder(compressed).decode_all()
        finally:
            set_decode_cache_enabled(previous)
        stats = decode_cache_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["entries"] == 0
        assert stats["bytes"] == 0

    def test_lru_eviction(self, compressed):
        cache = DecodeCache(capacity=2)
        for token in ("a", "b", "c"):
            assert cache.lookup(token) is None
            cache.store(token, (token,), {0: 0})
        assert len(cache) == 2
        assert cache.lookup("a") is None  # evicted (oldest)
        assert cache.lookup("c") == (("c",), {0: 0})

    def test_byte_accounting(self):
        cache = DecodeCache(capacity=8)
        cache.store("a", ("x", "y"), {}, stream_bytes=100)
        cache.store("b", ("z",), {}, stream_bytes=40)
        # Cost of an entry = stream bytes + item count.
        assert cache.bytes == (100 + 2) + (40 + 1)
        cache.clear()
        assert cache.bytes == 0

    def test_byte_bound_evicts_oldest(self):
        cache = DecodeCache(capacity=8, max_bytes=250)
        cache.store("a", (), {}, stream_bytes=100)
        cache.store("b", (), {}, stream_bytes=100)
        cache.store("c", (), {}, stream_bytes=100)
        assert cache.lookup("a") is None
        assert cache.lookup("b") is not None
        assert cache.lookup("c") is not None
        assert cache.bytes == 200
        assert cache.evictions == 1

    def test_oversized_entry_still_cached(self):
        # A single entry above max_bytes is kept: the bound trims the
        # cache, it never refuses the most recent decode.
        cache = DecodeCache(capacity=8, max_bytes=50)
        cache.store("big", (), {}, stream_bytes=1000)
        assert cache.lookup("big") is not None
        assert len(cache) == 1

    def test_stats_expose_bytes_and_evictions(self, compressed):
        _decoder(compressed).decode_all()
        stats = decode_cache_stats()
        assert set(stats) == {
            "hits", "misses", "entries", "bytes",
            "max_bytes", "capacity", "evictions",
        }
        assert stats["bytes"] >= len(compressed.stream)
        assert stats["evictions"] == 0

    def test_clear_resets_counters(self, compressed):
        _decoder(compressed).decode_all()
        _decoder(compressed).decode_all()
        clear_decode_cache()
        stats = decode_cache_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["entries"] == 0
        assert stats["bytes"] == 0
        assert stats["evictions"] == 0


class TestMetrics:
    def test_hits_and_misses_reach_registry(self, compressed):
        registry = MetricsRegistry()
        with registry.installed():
            _decoder(compressed).decode_all()
            _decoder(compressed).decode_all()
        counters = registry.as_dict()["counters"]
        assert counters["decode_cache.misses"] == 1
        assert counters["decode_cache.hits"] == 1
