"""Stream decoder tests: the compressed fetch engine."""

import pytest

from repro.core import BaselineEncoding, NibbleEncoding, compress
from repro.errors import DecompressionError
from repro.machine.decompressor import StreamDecoder


def decode_items(compressed):
    decoder = StreamDecoder(
        compressed.stream,
        compressed.dictionary,
        compressed.encoding,
        compressed.total_units(),
    )
    return decoder.decode_all()


class TestStreamDecoding:
    @pytest.mark.parametrize("encoding_factory", [BaselineEncoding, NibbleEncoding])
    def test_items_match_tokens(self, tiny_program, encoding_factory):
        compressed = compress(tiny_program, encoding_factory())
        items = decode_items(compressed)
        assert len(items) == len(compressed.tokens)
        for item, token in zip(items, compressed.tokens):
            assert item.address == token.address
            assert item.size_units == token.size_units
            assert item.is_codeword == (token.kind == "cw")
            if token.kind == "cw":
                assert item.rank == token.rank

    def test_codeword_expansion_matches_original_words(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        words = tiny_program.words()
        for item, token in zip(decode_items(compressed), compressed.tokens):
            if item.is_codeword:
                expanded = tuple(ins.encode() for ins in item.instructions)
                original = tuple(
                    words[token.orig_index : token.orig_index + token.length]
                )
                assert expanded == original

    def test_escaped_instructions_decode(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        for item in decode_items(compressed):
            if not item.is_codeword:
                assert len(item.instructions) == 1

    def test_bad_codeword_rank_rejected(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        # Truncate the dictionary so stream codewords dangle.
        from repro.core.dictionary import Dictionary

        broken = Dictionary(compressed.dictionary.entries[:1])
        decoder = StreamDecoder(
            compressed.stream, broken, compressed.encoding, compressed.total_units()
        )
        if len(compressed.dictionary) > 1:
            with pytest.raises(DecompressionError):
                decoder.decode_all()

    def test_wrong_total_units_detected(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        decoder = StreamDecoder(
            compressed.stream,
            compressed.dictionary,
            compressed.encoding,
            compressed.total_units() + 1,
        )
        with pytest.raises((DecompressionError, EOFError)):
            decoder.decode_all()
