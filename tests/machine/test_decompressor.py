"""Stream decoder tests: the compressed fetch engine."""

import pytest

from repro.core import BaselineEncoding, NibbleEncoding, compress
from repro.errors import DecompressionError
from repro.machine.decompressor import StreamDecoder


def decode_items(compressed):
    decoder = StreamDecoder(
        compressed.stream,
        compressed.dictionary,
        compressed.encoding,
        compressed.total_units(),
    )
    return decoder.decode_all()


class TestStreamDecoding:
    @pytest.mark.parametrize("encoding_factory", [BaselineEncoding, NibbleEncoding])
    def test_items_match_tokens(self, tiny_program, encoding_factory):
        compressed = compress(tiny_program, encoding_factory())
        items = decode_items(compressed)
        assert len(items) == len(compressed.tokens)
        for item, token in zip(items, compressed.tokens):
            assert item.address == token.address
            assert item.size_units == token.size_units
            assert item.is_codeword == (token.kind == "cw")
            if token.kind == "cw":
                assert item.rank == token.rank

    def test_codeword_expansion_matches_original_words(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        words = tiny_program.words()
        for item, token in zip(decode_items(compressed), compressed.tokens):
            if item.is_codeword:
                expanded = tuple(ins.encode() for ins in item.instructions)
                original = tuple(
                    words[token.orig_index : token.orig_index + token.length]
                )
                assert expanded == original

    def test_escaped_instructions_decode(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        for item in decode_items(compressed):
            if not item.is_codeword:
                assert len(item.instructions) == 1

    def test_bad_codeword_rank_rejected(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        # Truncate the dictionary so stream codewords dangle.
        from repro.core.dictionary import Dictionary

        broken = Dictionary(compressed.dictionary.entries[:1])
        decoder = StreamDecoder(
            compressed.stream, broken, compressed.encoding, compressed.total_units()
        )
        if len(compressed.dictionary) > 1:
            with pytest.raises(DecompressionError):
                decoder.decode_all()

    def test_wrong_total_units_detected(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        decoder = StreamDecoder(
            compressed.stream,
            compressed.dictionary,
            compressed.encoding,
            compressed.total_units() + 1,
        )
        with pytest.raises((DecompressionError, EOFError)):
            decoder.decode_all()


class TestStrictErrors:
    """Strict-mode failures carry the failing unit address."""

    def test_dangling_rank_names_the_unit(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        from repro.core.dictionary import Dictionary

        if len(compressed.dictionary) < 2:
            pytest.skip("dictionary too small")
        broken = Dictionary(compressed.dictionary.entries[:1])
        decoder = StreamDecoder(
            compressed.stream, broken, compressed.encoding,
            compressed.total_units(),
        )
        with pytest.raises(DecompressionError) as excinfo:
            decoder.decode_all()
        assert excinfo.value.unit_address is not None
        assert f"unit {excinfo.value.unit_address}" in str(excinfo.value)

    def test_truncated_stream_names_the_unit(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        decoder = StreamDecoder(
            compressed.stream[: len(compressed.stream) // 2],
            compressed.dictionary,
            compressed.encoding,
            compressed.total_units(),
        )
        with pytest.raises(DecompressionError) as excinfo:
            decoder.decode_all()
        assert excinfo.value.unit_address is not None


class TestLenientMode:
    """Lenient decode collects diagnostics instead of raising."""

    def test_clean_stream_has_no_diagnostics(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        decoder = StreamDecoder(
            compressed.stream, compressed.dictionary, compressed.encoding,
            compressed.total_units(), strict=False,
        )
        items = decoder.decode_all()
        assert decoder.diagnostics == []
        assert len(items) == len(compressed.tokens)

    def test_dangling_ranks_become_diagnostics(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        from repro.core.dictionary import Dictionary

        if len(compressed.dictionary) < 2:
            pytest.skip("dictionary too small")
        broken = Dictionary(compressed.dictionary.entries[:1])
        decoder = StreamDecoder(
            compressed.stream, broken, compressed.encoding,
            compressed.total_units(), strict=False,
        )
        decoder.decode_all()  # must not raise
        assert decoder.diagnostics
        assert all(d.unit_address >= 0 for d in decoder.diagnostics)

    def test_diagnostics_are_bounded(self, tiny_program):
        compressed = compress(tiny_program, BaselineEncoding())
        from repro.core.dictionary import Dictionary

        decoder = StreamDecoder(
            compressed.stream, Dictionary([]), compressed.encoding,
            compressed.total_units(), strict=False, max_diagnostics=5,
        )
        decoder.decode_all()
        assert len(decoder.diagnostics) <= 6  # budget + final marker
        assert decoder.diagnostics[-1].message == "diagnostic budget exhausted"

    def test_lenient_decode_always_uses_reference_walk(self, tiny_program):
        # Bulk decoding asserts nothing about malformed tails, so
        # lenient decodes must defer to the reference walk even when
        # the stream is perfectly clean.
        compressed = compress(tiny_program, NibbleEncoding())
        decoder = StreamDecoder(
            compressed.stream, compressed.dictionary, compressed.encoding,
            compressed.total_units(), strict=False,
        )
        decoder.decode_all()
        assert decoder.last_implementation == "reference"


class TestLenientTailResync:
    """Resynchronization endgames: budget exhaustion and stream tails."""

    def test_budget_exhausted_at_failing_unit(self, tiny_program):
        # A budget of one fills on the very first failure: the walk
        # must append the marker at that same unit address and stop
        # instead of resynchronizing onward.
        compressed = compress(tiny_program, BaselineEncoding())
        from repro.core.dictionary import Dictionary

        decoder = StreamDecoder(
            compressed.stream, Dictionary([]), compressed.encoding,
            compressed.total_units(), strict=False, max_diagnostics=1,
        )
        decoder.decode_all()
        assert len(decoder.diagnostics) == 2
        failure, marker = decoder.diagnostics
        assert marker.message == "diagnostic budget exhausted"
        assert marker.unit_address == failure.unit_address

    def test_resync_past_stream_end_returns_early(self):
        # Two bytes of garbage cannot hold a 16-bit-aligned baseline
        # item chain four units long: the second resynchronization
        # point lands past ``len(stream) * 8`` and the walk must return
        # what it has — without the trailing unit-count diagnostic that
        # a normally-terminated short walk would emit.
        from repro.core.dictionary import Dictionary

        encoding = BaselineEncoding()
        decoder = StreamDecoder(
            b"\x00\x00", Dictionary([]), encoding, 4, strict=False,
        )
        items = decoder.decode_all()
        assert items == ()
        assert decoder.diagnostics
        assert decoder.diagnostics[-1].message != "diagnostic budget exhausted"
        assert not any(
            d.message.startswith("stream decoded to")
            for d in decoder.diagnostics
        )

    def test_resync_recovers_midstream_corruption(self, tiny_program):
        # Corrupting one interior byte must not take down the tail: the
        # walk resynchronizes and keeps decoding units after the damage.
        compressed = compress(tiny_program, BaselineEncoding())
        corrupt = bytearray(compressed.stream)
        corrupt[len(corrupt) // 2] ^= 0xFF
        decoder = StreamDecoder(
            bytes(corrupt), compressed.dictionary, compressed.encoding,
            compressed.total_units(), strict=False,
        )
        items = decoder.decode_all()
        if decoder.diagnostics:
            first_bad = min(d.unit_address for d in decoder.diagnostics)
            assert any(item.address > first_bad for item in items)
