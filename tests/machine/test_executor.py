"""Per-instruction semantics tests against the execution core."""

import pytest
from hypothesis import given, strategies as st

from repro import bitutils
from repro.isa.assembler import assemble_line
from repro.machine.executor import execute_data
from repro.machine.memory import Memory
from repro.machine.state import MachineState
from repro.linker.program import DATA_BASE


def run(lines, setup=None):
    state = MachineState()
    memory = Memory()
    if setup:
        setup(state, memory)
    for line in lines:
        execute_data(assemble_line(line), state, memory)
    return state, memory


class TestArithmetic:
    def test_addi_signed(self):
        state, _ = run(["li r3,10", "addi r4,r3,-3"])
        assert state.read_signed(4) == 7

    def test_addi_ra_zero_means_literal_zero(self):
        state, _ = run(["li r5,123", "addi r3,r0,7"],
                       setup=lambda s, m: s.write(0, 999))
        assert state.read(3) == 7

    def test_addis(self):
        state, _ = run(["lis r3,4", "ori r3,r3,0x10"])
        assert state.read(3) == 0x40010

    def test_subf_operand_order(self):
        # subf rT,rA,rB computes rB - rA.
        state, _ = run(["li r4,3", "li r5,10", "subf r3,r4,r5"])
        assert state.read_signed(3) == 7

    def test_neg_and_overflow(self):
        state, _ = run(["lis r4,-32768", "neg r3,r4"])  # r4 = 0x80000000
        assert state.read(3) == 0x80000000  # negation wraps

    def test_mullw_wraps(self):
        state, _ = run(["lis r4,1", "lis r5,1", "mullw r3,r4,r5"])
        assert state.read(3) == 0  # 2^16 * 2^16 mod 2^32

    @pytest.mark.parametrize("a,b,q", [(7, 2, 3), (-7, 2, -3), (7, -2, -3)])
    def test_divw_truncates(self, a, b, q):
        state, _ = run(
            [f"li r4,{a}", f"li r5,{b}", "divw r3,r4,r5"]
        )
        assert state.read_signed(3) == q

    def test_divw_by_zero_defined_as_zero(self):
        state, _ = run(["li r4,5", "li r5,0", "divw r3,r4,r5"])
        assert state.read(3) == 0

    def test_mulli(self):
        state, _ = run(["li r4,-3", "mulli r3,r4,100"])
        assert state.read_signed(3) == -300


class TestLogicAndShifts:
    def test_logical_ops(self):
        state, _ = run(
            ["li r4,0x0f0f", "li r5,0x00ff",
             "and r3,r4,r5", "or r6,r4,r5", "xor r7,r4,r5", "nor r8,r4,r5"]
        )
        assert state.read(3) == 0x000F
        assert state.read(6) == 0x0FFF
        assert state.read(7) == 0x0FF0
        assert state.read(8) == 0xFFFFF000

    def test_slw_srw_large_amounts(self):
        state, _ = run(["li r4,1", "li r5,33", "slw r3,r4,r5", "srw r6,r4,r5"])
        assert state.read(3) == 0  # shift >31 yields zero
        assert state.read(6) == 0

    def test_sraw_preserves_sign(self):
        state, _ = run(["li r4,-16", "li r5,2", "sraw r3,r4,r5"])
        assert state.read_signed(3) == -4

    def test_srawi(self):
        state, _ = run(["li r4,-1", "srawi r3,r4,31"])
        assert state.read_signed(3) == -1

    def test_rlwinm_mask_forms(self):
        state, _ = run(["li r4,0x1234", "slwi r3,r4,4", "srwi r5,r4,4",
                        "clrlwi r6,r4,24"])
        assert state.read(3) == 0x12340
        assert state.read(5) == 0x123
        assert state.read(6) == 0x34

    def test_rlwinm_wrapped_mask(self):
        # rlwinm with MB > ME produces a wrapped mask.
        state, _ = run(["li r4,-1", "rlwinm r3,r4,0,31,0"])
        assert state.read(3) == 0x80000001

    def test_extsb_extsh(self):
        state, _ = run(["li r4,0x80", "extsb r3,r4",
                        "li r5,0x8000", "extsh r6,r5"])
        assert state.read_signed(3) == -128
        assert state.read_signed(6) == -32768

    def test_andi_dot_sets_cr0(self):
        state, _ = run(["li r4,0xf0", "andi. r3,r4,0x0f"])
        assert state.read(3) == 0
        assert state.cr_bit(2) == 1  # EQ


class TestCompares:
    def test_cmpwi_signed(self):
        state, _ = run(["li r4,-1", "cmpwi cr1,r4,0"])
        assert state.cr_bit(4) == 1  # cr1 LT

    def test_cmplwi_unsigned(self):
        state, _ = run(["li r4,-1", "cmplwi cr1,r4,0"])
        assert state.cr_bit(4 + 1) == 1  # cr1 GT: 0xffffffff > 0 unsigned

    def test_cmpw_registers(self):
        state, _ = run(["li r4,5", "li r5,5", "cmpw r4,r5"])
        assert state.cr_bit(2) == 1  # cr0 EQ


class TestMemoryAccess:
    def test_load_store_word(self):
        def setup(state, memory):
            state.write(9, DATA_BASE)

        state, memory = run(
            ["li r3,-2", "stw r3,8(r9)", "lwz r4,8(r9)"], setup
        )
        assert state.read(4) == 0xFFFFFFFE

    def test_byte_zero_extension(self):
        def setup(state, memory):
            state.write(9, DATA_BASE)
            memory.store(DATA_BASE, 1, 0xFF)

        state, _ = run(["lbz r3,0(r9)"], setup)
        assert state.read(3) == 0xFF  # not sign-extended

    def test_lha_sign_extends(self):
        def setup(state, memory):
            state.write(9, DATA_BASE)
            memory.store(DATA_BASE, 2, 0x8000)

        state, _ = run(["lha r3,0(r9)"], setup)
        assert state.read_signed(3) == -32768

    def test_stwu_updates_base(self):
        def setup(state, memory):
            state.write(1, DATA_BASE + 64)

        state, memory = run(["li r3,7", "stwu r3,-16(r1)"], setup)
        assert state.read(1) == DATA_BASE + 48
        assert memory.load(DATA_BASE + 48, 4) == 7


class TestSpecialRegisters:
    def test_lr_ctr_moves(self):
        state, _ = run(["li r3,100", "mtlr r3", "li r4,200", "mtctr r4",
                        "mflr r5", "mfctr r6"])
        assert state.read(5) == 100
        assert state.read(6) == 200


class TestPropertySemantics:
    @given(a=st.integers(-(1 << 31), (1 << 31) - 1),
           b=st.integers(-(1 << 15), (1 << 15) - 1))
    def test_addi_matches_wrapped_addition(self, a, b):
        state = MachineState()
        state.write(4, a)
        execute_data(assemble_line(f"addi r3,r4,{b}"), state, Memory())
        assert state.read(3) == bitutils.u32(a + b)

    @given(value=st.integers(0, 0xFFFFFFFF), sh=st.integers(0, 31))
    def test_slwi_matches_shift(self, value, sh):
        if sh == 0:
            return  # slwi 0 is not a valid rlwinm form
        state = MachineState()
        state.write(4, value)
        execute_data(assemble_line(f"slwi r3,r4,{sh}"), state, Memory())
        assert state.read(3) == bitutils.u32(value << sh)
