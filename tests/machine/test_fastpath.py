"""Unit tests for the predecoded translation-cache fast path.

Golden whole-program equivalence lives in
``tests/integration/test_fastpath_equivalence.py``; this file covers
the cache mechanics: thunk memoization, trace construction and
sharing, the step-budget fallback, fetch-hook compatibility, fetch
accounting, profile parity, and observe wiring.
"""

import pytest

from repro import observe
from repro.core import NibbleEncoding, compress
from repro.errors import SimulationError
from repro.isa.instruction import make
from repro.machine import fastpath
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import Simulator, profile_program


@pytest.fixture(autouse=True)
def _fresh_caches():
    fastpath.clear_translation_caches()
    yield
    fastpath.clear_translation_caches()


class TestImplementationSelection:
    def test_fast_is_default(self, tiny_program):
        assert Simulator(tiny_program).implementation == "fast"

    def test_unknown_implementation_rejected(self, tiny_program):
        with pytest.raises(ValueError):
            Simulator(tiny_program, implementation="turbo")

    def test_unknown_compressed_implementation_rejected(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        with pytest.raises(ValueError):
            CompressedSimulator(compressed, implementation="turbo")


class TestBoundThunks:
    def test_thunks_are_memoized_per_instruction(self):
        ins = make("addi", 3, 0, 7)
        assert fastpath.bound_thunk(ins) is fastpath.bound_thunk(make("addi", 3, 0, 7))
        assert fastpath.bound_thunk(ins) is not fastpath.bound_thunk(
            make("addi", 3, 0, 8)
        )

    def test_every_handler_has_a_binder(self):
        from repro.machine.executor import CONTROL_MNEMONICS, _HANDLERS

        missing = set(_HANDLERS) - set(fastpath._BINDERS) - CONTROL_MNEMONICS
        assert not missing, f"handlers without a dedicated binder: {missing}"


class TestProgramTranslationCache:
    def test_cache_is_shared_between_simulators(self, tiny_program):
        Simulator(tiny_program).run()
        cache = fastpath.program_cache(tiny_program)
        misses_after_first = cache.stats()["misses"]
        assert misses_after_first > 0
        Simulator(tiny_program).run()
        stats = cache.stats()
        # The second run replays entirely out of the trace cache.
        assert stats["misses"] == misses_after_first
        assert stats["hits"] > 0
        assert stats["predecode_seconds"] >= 0.0

    def test_trace_stops_at_control_instruction(self, tiny_program):
        cache = fastpath.program_cache(tiny_program)
        trace = cache.trace_at(0)
        assert trace.control is not None
        assert trace.steps_cost == trace.body_insns + 1
        assert len(trace.body) <= trace.body_insns  # fused pairs shrink it
        kinds = cache.kinds
        assert all(kinds[pc] == 0 for pc in range(trace.control_pc))
        assert kinds[trace.control_pc] == 1

    def test_out_of_text_trace_raises_like_reference(self, tiny_program):
        cache = fastpath.program_cache(tiny_program)
        bad = len(tiny_program.text) + 5
        with pytest.raises(SimulationError, match="out of .text"):
            cache.trace_at(bad).control(Simulator(tiny_program).state, None)


class TestBudgetFallback:
    def test_step_budget_error_matches_reference(self, tiny_program):
        fast = Simulator(tiny_program, max_steps=100, implementation="fast")
        reference = Simulator(
            tiny_program, max_steps=100, implementation="reference"
        )
        with pytest.raises(SimulationError) as fast_exc:
            fast.run()
        with pytest.raises(SimulationError) as ref_exc:
            reference.run()
        assert str(fast_exc.value) == str(ref_exc.value)
        assert fast_exc.value.step == ref_exc.value.step
        assert fast.state.gpr == reference.state.gpr
        assert fast.pc == reference.pc

    def test_compressed_budget_error_matches_reference(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        fast = CompressedSimulator(
            compressed, max_steps=100, implementation="fast"
        )
        reference = CompressedSimulator(
            compressed, max_steps=100, implementation="reference"
        )
        with pytest.raises(SimulationError) as fast_exc:
            fast.run()
        with pytest.raises(SimulationError) as ref_exc:
            reference.run()
        assert str(fast_exc.value) == str(ref_exc.value)
        assert fast_exc.value.unit_address == ref_exc.value.unit_address
        assert fast.state.gpr == reference.state.gpr


class TestHooksAndFetchCounts:
    def test_fetch_hook_sequence_identical(self, tiny_program):
        def record(sim):
            events = []
            sim.fetch_hook = lambda address, size: events.append((address, size))
            sim.run()
            return events

        fast = Simulator(tiny_program, implementation="fast")
        reference = Simulator(tiny_program, implementation="reference")
        assert record(fast) == record(reference)

    def test_compressed_fetch_hook_sequence_identical(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())

        def record(sim):
            events = []
            sim.fetch_hook = lambda address, size: events.append((address, size))
            sim.run()
            return events

        fast = CompressedSimulator(compressed, implementation="fast")
        reference = CompressedSimulator(compressed, implementation="reference")
        assert record(fast) == record(reference)

    def test_instructions_fetched_counts_real_fetches(self, tiny_program):
        fast = Simulator(tiny_program, implementation="fast").run()
        reference = Simulator(tiny_program, implementation="reference").run()
        assert fast.instructions_fetched == fast.steps
        assert reference.instructions_fetched == reference.steps
        assert fast.instructions_fetched == reference.instructions_fetched

    def test_compressed_fetch_transactions_match(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        fast_sim = CompressedSimulator(compressed, implementation="fast")
        fast = fast_sim.run()
        ref_sim = CompressedSimulator(compressed, implementation="reference")
        reference = ref_sim.run()
        expected = (
            fast_sim.stats.codeword_expansions
            + fast_sim.stats.escaped_instructions
        )
        assert fast.instructions_fetched == expected
        assert reference.instructions_fetched == expected
        assert fast_sim.stats == ref_sim.stats


class TestProfileProgram:
    def test_profile_counts_identical(self, tiny_program):
        fast_counts = profile_program(tiny_program, implementation="fast")
        ref_counts = profile_program(tiny_program, implementation="reference")
        assert fast_counts == ref_counts
        result = Simulator(tiny_program).run()
        assert sum(fast_counts) == result.steps

    def test_profile_budget_fallback_counts(self, tiny_program):
        with pytest.raises(SimulationError):
            profile_program(tiny_program, max_steps=100, implementation="fast")


class TestStreamTranslationCache:
    def test_stream_cache_shared_by_content(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        CompressedSimulator(compressed).run()
        assert fastpath.translation_cache_stats()["stream_caches"] == 1
        sim = CompressedSimulator(compressed)
        cache = fastpath.stream_cache_for(sim)
        misses_before = cache.misses
        sim.run()
        assert fastpath.translation_cache_stats()["stream_caches"] == 1
        assert cache.misses == misses_before  # warm: no new traces built
        assert cache.hits > 0

    def test_stream_cache_lru_eviction(self, tiny_program):
        from repro.core import BaselineEncoding

        compressed = compress(tiny_program, NibbleEncoding())
        first = fastpath.stream_cache_for(CompressedSimulator(compressed))
        # Make the real entry the least-recently-used one, then force a
        # fresh insert: the registry must evict back down to capacity,
        # dropping the real entry first.
        for fake in range(fastpath.STREAM_CACHE_CAPACITY):
            fastpath._STREAM_CACHES[("digest", fake)] = object()
        other = compress(tiny_program, BaselineEncoding())
        fastpath.stream_cache_for(CompressedSimulator(other))
        assert len(fastpath._STREAM_CACHES) == fastpath.STREAM_CACHE_CAPACITY
        assert (
            fastpath.stream_cache_for(CompressedSimulator(compressed))
            is not first
        )


class TestObserveWiring:
    def test_predecode_stage_and_trace_metrics(self, tiny_program):
        stages = []
        metrics = {}
        old_stage = observe.set_stage_callback(
            lambda name, seconds: stages.append(name)
        )
        old_metric = observe.set_metric_callback(
            lambda name, value: metrics.setdefault(name, 0)
        )
        try:
            tiny_program._analysis_cache.pop("fastpath", None)
            Simulator(tiny_program).run()
        finally:
            observe.set_stage_callback(old_stage)
            observe.set_metric_callback(old_metric)
        assert "sim.predecode" in stages
        assert "sim.trace_cache.hits" in metrics
        assert "sim.trace_cache.misses" in metrics
