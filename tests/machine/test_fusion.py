"""Superinstruction fusion: fused thunks must be invisible except for speed.

Every fused two-instruction thunk must leave (state, memory) exactly
where the two bound thunks would — registers, CR, steps, memory
contents, and the error raised mid-pair — for every fusable mnemonic.
The trace-cache integration must rebuild traces when the fusion config
changes, shrink bodies when pairs fuse, and keep the instruction-level
accounting (``steps_cost``/``issued``/profiles) unchanged.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.isa.instruction import Instruction, make, spec_for
from repro.machine import fastpath, fusion
from repro.machine.memory import DATA_BASE, Memory
from repro.machine.simulator import Simulator, profile_program
from repro.machine.state import MachineState


@pytest.fixture(autouse=True)
def _default_fusion_config():
    fusion.configure(
        enabled=True, pairs=fusion.DEFAULT_PAIRS,
        control_enabled=True, control_pairs=fusion.DEFAULT_CONTROL_PAIRS,
    )
    fastpath.clear_translation_caches()
    yield
    fusion.configure(
        enabled=True, pairs=fusion.DEFAULT_PAIRS,
        control_enabled=True, control_pairs=fusion.DEFAULT_CONTROL_PAIRS,
    )
    fastpath.clear_translation_caches()


def ins(mnemonic, **operands) -> Instruction:
    """Build an instruction with operands given by name."""
    spec = spec_for(mnemonic)
    return Instruction(spec, tuple(operands[op.name] for op in spec.operands))


def _sample_instruction(mnemonic: str, rng: random.Random) -> Instruction:
    """One representative instruction per fusable mnemonic."""
    gpr = lambda: rng.randrange(2, 12)  # noqa: E731 - r0/r1 stay clear
    simm = lambda: rng.randrange(-512, 512)  # noqa: E731
    uimm = lambda: rng.randrange(0, 1 << 16)  # noqa: E731
    disp = rng.randrange(0, 64) * 4
    by_shape = {
        ("rT", "rA", "SI"): lambda: ins(
            mnemonic, rT=gpr(), rA=rng.choice([0, gpr()]), SI=simm()
        ),
        ("rA", "rS", "UI"): lambda: ins(
            mnemonic, rA=gpr(), rS=gpr(), UI=uimm()
        ),
        ("crfD", "rA", "SI"): lambda: ins(
            mnemonic, crfD=rng.randrange(8), rA=gpr(), SI=simm()
        ),
        ("crfD", "rA", "UI"): lambda: ins(
            mnemonic, crfD=rng.randrange(8), rA=gpr(), UI=uimm()
        ),
        ("crfD", "rA", "rB"): lambda: ins(
            mnemonic, crfD=rng.randrange(8), rA=gpr(), rB=gpr()
        ),
        ("rT", "rA", "rB"): lambda: ins(
            mnemonic, rT=gpr(), rA=gpr(), rB=gpr()
        ),
        ("rT", "rA"): lambda: ins(mnemonic, rT=gpr(), rA=gpr()),
        ("rA", "rS", "rB"): lambda: ins(
            mnemonic, rA=gpr(), rS=gpr(), rB=gpr()
        ),
        ("rA", "rS", "SH"): lambda: ins(
            mnemonic, rA=gpr(), rS=gpr(), SH=rng.randrange(32)
        ),
        ("rA", "rS", "SH", "MB", "ME"): lambda: ins(
            mnemonic, rA=gpr(), rS=gpr(), SH=rng.randrange(32),
            MB=rng.randrange(32), ME=rng.randrange(32),
        ),
        ("rA", "rS"): lambda: ins(mnemonic, rA=gpr(), rS=gpr()),
        ("rT", "D(rA)"): lambda: ins(mnemonic, rT=gpr(), **{"D(rA)": (disp, 13)}),
        ("rS", "D(rA)"): lambda: ins(mnemonic, rS=gpr(), **{"D(rA)": (disp, 13)}),
    }
    shape = tuple(op.name for op in spec_for(mnemonic).operands)
    return by_shape[shape]()


def _random_state(rng: random.Random) -> MachineState:
    state = MachineState()
    for reg in range(2, 12):
        state.gpr[reg] = rng.randrange(0, 1 << 32)
    state.gpr[13] = DATA_BASE + 4096  # valid memory base for loads/stores
    state.cr = rng.randrange(0, 1 << 32)
    return state


def _clone(state: MachineState) -> MachineState:
    clone = MachineState()
    clone.gpr[:] = state.gpr
    clone.cr = state.cr
    clone.lr = state.lr
    clone.ctr = state.ctr
    clone.steps = state.steps
    return clone


def _run(thunks, state, memory):
    try:
        for thunk in thunks:
            thunk(state, memory)
        return None
    except SimulationError as exc:
        return exc


class TestFusedSemantics:
    @pytest.mark.parametrize("mnemonic", sorted(fusion.FUSABLE_MNEMONICS))
    def test_every_template_matches_bound_thunks(self, mnemonic):
        """Fuse each mnemonic in both slots against a random partner."""
        rng = random.Random(hash(mnemonic) & 0xFFFF)
        partners = sorted(fusion.FUSABLE_MNEMONICS)
        for trial in range(12):
            other = _sample_instruction(rng.choice(partners), rng)
            this = _sample_instruction(mnemonic, rng)
            pair = (this, other) if trial % 2 == 0 else (other, this)
            fused = fusion.fused_thunk(*pair)
            assert fused is not None
            seq = [fastpath.bound_thunk(i) for i in pair]
            state_f = _random_state(rng)
            state_s = _clone(state_f)
            mem_f = Memory(bytes(range(256)) * 32)
            mem_s = Memory(bytes(range(256)) * 32)
            err_f = _run([fused], state_f, mem_f)
            err_s = _run(seq, state_s, mem_s)
            assert (err_f is None) == (err_s is None)
            if err_f is not None:
                assert str(err_f) == str(err_s)
            assert state_f.gpr == state_s.gpr
            assert state_f.cr == state_s.cr
            assert state_f.steps == state_s.steps
            assert mem_f._bytes == mem_s._bytes

    def test_pure_alu_pair_counts_two_steps(self):
        fused = fusion.fused_thunk(
            make("addis", 3, 0, 1), make("addi", 4, 3, 2)
        )
        state = MachineState()
        fused(state, None)
        assert state.steps == 2
        assert state.gpr[3] == 0x10000
        assert state.gpr[4] == 0x10002

    def test_memory_error_mid_pair_keeps_exact_steps(self):
        # First half executes and counts; the second half faults before
        # its own increment — identical to the sequential engines.
        good = make("addi", 3, 0, 7)
        bad_load = ins("lwz", rT=4, **{"D(rA)": (0, 5)})  # r5 = 0 → bad address
        fused = fusion.fused_thunk(good, bad_load)
        state = MachineState()
        memory = Memory()
        with pytest.raises(SimulationError):
            fused(state, memory)
        assert state.steps == 1
        assert state.gpr[3] == 7
        # Faulting in the FIRST slot leaves steps untouched.
        fused = fusion.fused_thunk(bad_load, good)
        state = MachineState()
        with pytest.raises(SimulationError):
            fused(state, memory)
        assert state.steps == 0
        assert state.gpr[3] == 0

    def test_unfusable_mnemonics_return_none(self):
        divw = make("divw", 3, 4, 5)
        addi = make("addi", 3, 0, 1)
        assert fusion.fused_thunk(divw, addi) is None
        assert fusion.fused_thunk(addi, divw) is None

    def test_fused_thunks_are_memoized(self):
        a, b = make("addi", 3, 0, 1), make("addi", 4, 0, 2)
        assert fusion.fused_thunk(a, b) is fusion.fused_thunk(
            make("addi", 3, 0, 1), make("addi", 4, 0, 2)
        )

    def test_control_mnemonics_never_fusable(self):
        from repro.machine.executor import CONTROL_MNEMONICS

        assert not fusion.FUSABLE_MNEMONICS & CONTROL_MNEMONICS


class TestPlanning:
    def test_configure_returns_previous(self):
        previous = fusion.configure(enabled=False, pairs=[("addi", "add")])
        assert previous["enabled"] is True
        assert previous["pairs"] == tuple(sorted(fusion.DEFAULT_PAIRS))
        assert fusion.active_pairs() == frozenset()  # disabled
        fusion.configure(enabled=True)
        assert fusion.active_pairs() == {("addi", "add")}

    def test_config_key_tracks_state(self):
        on_key = fusion.config_key()
        fusion.configure(enabled=False)
        # Disabling the master switch turns both axes off.
        assert fusion.config_key() == (("off",), ("off",))
        fusion.configure(enabled=True)
        assert fusion.config_key() == on_key
        fusion.configure(pairs=[("addi", "add")])
        assert fusion.config_key() != on_key

    def test_config_key_tracks_control_axis(self):
        on_key = fusion.config_key()
        previous = fusion.configure(control_enabled=False)
        assert previous["control_enabled"] is True
        off_key = fusion.config_key()
        assert off_key != on_key
        assert off_key[0] == on_key[0]  # data axis untouched
        assert off_key[1] == ("off",)
        fusion.configure(control_enabled=True)
        assert fusion.config_key() == on_key
        fusion.configure(control_pairs=[("cmpwi", "bc")])
        assert fusion.config_key() != on_key
        assert fusion.active_control_pairs() == {("cmpwi", "bc")}
        fusion.configure(control_pairs=fusion.DEFAULT_CONTROL_PAIRS)

    def test_plan_from_profile_mines_hot_pairs(self, tiny_program):
        counts = profile_program(tiny_program, max_steps=100_000)
        plan = fusion.plan_from_profile(tiny_program, counts, top_k=8)
        assert 0 < len(plan) <= 8
        mined = fusion.mine_adjacent_pairs(tiny_program, counts)
        # The plan is the top of the mined distribution, fusable only.
        assert list(plan) == [p for p, _ in mined.most_common(8)]
        for a, b in plan:
            assert a in fusion.FUSABLE_MNEMONICS
            assert b in fusion.FUSABLE_MNEMONICS

    def test_stats_shape(self):
        stats = fusion.fusion_stats()
        assert stats["enabled"] is True
        assert ("addi", "add") in {tuple(p) for p in stats["pairs"]}
        assert stats["compiled"] >= 0


class TestTraceIntegration:
    def test_fusion_shrinks_trace_bodies(self, tiny_program):
        fusion.configure(enabled=False)
        Simulator(tiny_program).run()
        cache = fastpath.program_cache(tiny_program)
        unfused = {pc: len(t.body) for pc, t in cache.traces.items()}
        counts = profile_program(tiny_program, max_steps=1_000_000)
        plan = fusion.plan_from_profile(tiny_program, counts)
        fusion.configure(enabled=True, pairs=plan)
        Simulator(tiny_program).run()
        cache = fastpath.program_cache(tiny_program)
        fused = {pc: len(t.body) for pc, t in cache.traces.items()}
        assert any(
            fused[pc] < unfused[pc] for pc in fused if pc in unfused
        ), "profile-chosen plan fused nothing in the hot traces"
        for trace in cache.traces.values():
            assert len(trace.body) <= trace.body_insns

    def test_config_change_invalidates_traces(self, tiny_program):
        Simulator(tiny_program).run()
        cache = fastpath.program_cache(tiny_program)
        assert cache.traces
        fusion.configure(enabled=False)
        cache_after = fastpath.program_cache(tiny_program)
        assert cache_after is cache  # predecode survives
        assert not cache_after.traces  # traces rebuilt under new config

    def test_fused_run_matches_reference(self, tiny_program):
        fast = Simulator(tiny_program, implementation="fast")
        fast.run()
        reference = Simulator(tiny_program, implementation="reference")
        reference.run()
        assert fast.state.gpr == reference.state.gpr
        assert fast.state.steps == reference.state.steps
        assert fast.state.output == reference.state.output
        assert fast.fetches == reference.fetches

    def test_profile_counts_identical_with_fusion(self, tiny_program):
        with_fusion = profile_program(tiny_program, max_steps=1_000_000)
        fusion.configure(enabled=False)
        without = profile_program(
            tiny_program, max_steps=1_000_000, implementation="fast"
        )
        assert with_fusion == without
