"""Instruction-cache model tests."""

import pytest

from repro.core import NibbleEncoding, compress
from repro.errors import SimulationError
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.icache import InstructionCache, attach_to_simulator
from repro.machine.simulator import Simulator


class TestCacheMechanics:
    def test_cold_miss_then_hit(self):
        cache = InstructionCache(256, line_bytes=32, assoc=2)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x101C)  # same 32-byte line

    def test_distinct_lines_miss_separately(self):
        cache = InstructionCache(256, line_bytes=32, assoc=2)
        assert not cache.access(0x1000)
        assert not cache.access(0x1020)

    def test_lru_eviction_order(self):
        # Direct-mapped-per-2-ways, 2 sets: lines mapping to set 0.
        cache = InstructionCache(128, line_bytes=32, assoc=2)
        sets = cache.num_sets
        stride = 32 * sets
        a, b, c = 0, stride, 2 * stride  # all in set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now most recent
        cache.access(c)  # evicts b
        assert cache.access(a)
        assert not cache.access(b)

    def test_access_range_spanning_lines(self):
        cache = InstructionCache(256, line_bytes=32, assoc=2)
        cache.access_range(30, 8)  # crosses a line boundary
        assert cache.stats.accesses == 2

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            InstructionCache(100, line_bytes=32)
        with pytest.raises(SimulationError):
            InstructionCache(32, line_bytes=32, assoc=4)

    def test_miss_rate(self):
        cache = InstructionCache(256, line_bytes=32, assoc=2)
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5


class TestSimulatorIntegration:
    def test_plain_simulator_feeds_cache(self, tiny_program):
        simulator = Simulator(tiny_program)
        cache = attach_to_simulator(
            simulator, InstructionCache(512, 16, 2), 32
        )
        simulator.run()
        assert cache.stats.accesses >= simulator.state.steps

    def test_compressed_stream_has_fewer_misses(self, tiny_program):
        # Denser code -> fewer lines -> fewer misses for the same
        # dynamic instruction stream (the [Chen97a] effect).
        plain = Simulator(tiny_program)
        plain_cache = attach_to_simulator(plain, InstructionCache(128, 16, 2), 32)
        plain.run()

        compressed = compress(tiny_program, NibbleEncoding())
        packed = CompressedSimulator(compressed)
        packed_cache = attach_to_simulator(
            packed, InstructionCache(128, 16, 2),
            compressed.encoding.alignment_bits,
        )
        packed.run()
        assert packed_cache.stats.misses <= plain_cache.stats.misses
