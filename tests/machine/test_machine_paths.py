"""Targeted machine-path tests via compiled programs.

Each test compiles a small MiniC program whose execution must traverse
one specific control-flow mechanism of the simulators (indirect calls,
jump-table defaults, LR discipline under deep recursion, …) and pins
the observable result — on both the plain and the compressed machine.
"""

import pytest

from repro.compiler import compile_and_link
from repro.core import BaselineEncoding, NibbleEncoding, compress
from repro.machine.compressed_sim import run_compressed
from repro.machine.simulator import run_program


def both_ways(source, encoding_factory=NibbleEncoding):
    program = compile_and_link(source, name="path-test")
    reference = run_program(program)
    compressed = compress(program, encoding_factory())
    result = run_compressed(compressed)
    assert result.output_text == reference.output_text
    return reference.output_text


class TestJumpTablePaths:
    SOURCE = """
    int route(int x) {
        switch (x) {
            case 0: return 100;
            case 1: return 101;
            case 2: return 102;
            case 3: return 103;
            case 4: return 104;
            case 5: return 105;
        }
        return -1;
    }
    void main() {
        int i;
        for (i = 0 - 2; i < 8; i = i + 1) {
            print_int(route(i));
            __outc(32);
        }
    }
    """

    def test_every_slot_and_both_out_of_range_sides(self):
        out = both_ways(self.SOURCE)
        assert out == "-1 -1 100 101 102 103 104 105 -1 -1 "

    def test_jump_table_under_baseline_alignment(self):
        # 2-byte units: table entries hold odd-unit addresses too.
        both_ways(self.SOURCE, BaselineEncoding)


class TestCallDiscipline:
    def test_deep_recursion_restores_lr(self):
        source = """
        int depth(int n) {
            if (n == 0) { return 0; }
            return 1 + depth(n - 1);
        }
        void main() { print_int(depth(200)); }
        """
        assert both_ways(source) == "200"

    def test_call_chain_through_three_frames(self):
        source = """
        int c(int x) { return x * 2; }
        int b(int x) { int k = x + 1; return k + c(x); }
        int a(int x) { int k = x + 2; return k + b(x); }
        void main() { print_int(a(10)); }
        """
        # a: 12 + b(10); b: 11 + c(10)=20 -> 31; total 43.
        assert both_ways(source) == "43"

    def test_arguments_preserved_across_inner_calls(self):
        source = """
        int id(int x) { return x; }
        int combine(int a, int b, int c, int d) {
            return id(a) * 1000 + id(b) * 100 + id(c) * 10 + id(d);
        }
        void main() { print_int(combine(1, 2, 3, 4)); }
        """
        assert both_ways(source) == "1234"


class TestConditionRegisterPaths:
    def test_cr_survives_between_compare_and_branch(self):
        source = """
        int g;
        void main() {
            int i;
            int n = 0;
            for (i = 0 - 5; i <= 5; i = i + 1) {
                if (i < 0) { n = n - 1; }
                else if (i == 0) { n = n * 10; }
                else { n = n + 2; }
            }
            print_int(n);
        }
        """
        # -5 then *10 -> -50, then +2 five times -> -40.
        assert both_ways(source) == "-40"

    def test_unsigned_bound_check_in_switch(self):
        # The jump-table bounds check uses cmplwi: negative selectors
        # must fall to default via the unsigned comparison.
        source = """
        int pick(int x) {
            switch (x) {
                case 0: return 1;
                case 1: return 2;
                case 2: return 3;
                case 3: return 4;
            }
            return 99;
        }
        void main() { print_int(pick(0 - 1)); }
        """
        assert both_ways(source) == "99"


class TestDataPaths:
    def test_byte_and_word_traffic_interleaved(self):
        source = """
        char raw[16];
        int cooked[16];
        void main() {
            int i;
            for (i = 0; i < 16; i = i + 1) { raw[i] = 250 + i; }
            for (i = 0; i < 16; i = i + 1) { cooked[i] = raw[i] * 2; }
            print_int(cooked[0]); __outc(32);
            print_int(cooked[6]); __outc(32);
            print_int(cooked[15]);
        }
        """
        # raw wraps at 256: 250..255,0..9 -> x2.
        assert both_ways(source) == "500 0 18"

    def test_spilled_locals_roundtrip_through_frame(self):
        # More live locals than allocatable registers forces spills.
        names = [f"v{i}" for i in range(24)]
        decls = " ".join(f"int {n} = {i + 1};" for i, n in enumerate(names))
        total = " + ".join(names)
        source = f"""
        int sink(int x) {{ return x; }}
        void main() {{
            {decls}
            sink(0);
            print_int({total});
        }}
        """
        assert both_ways(source) == str(sum(range(1, 25)))
