"""Data-memory tests."""

import pytest

from repro.errors import SimulationError
from repro.linker.program import DATA_BASE, STACK_TOP
from repro.machine.memory import Memory


class TestMemory:
    def test_initial_image_loaded(self):
        memory = Memory(b"\x01\x02\x03\x04")
        assert memory.load(DATA_BASE, 4) == 0x01020304

    def test_uninitialized_reads_zero(self):
        memory = Memory()
        assert memory.load(DATA_BASE + 100, 4) == 0

    def test_store_load_roundtrip_sizes(self):
        memory = Memory()
        memory.store(DATA_BASE, 4, 0xDEADBEEF)
        assert memory.load(DATA_BASE, 4) == 0xDEADBEEF
        memory.store(DATA_BASE + 8, 1, 0x1FF)  # truncates to a byte
        assert memory.load(DATA_BASE + 8, 1) == 0xFF
        memory.store(DATA_BASE + 12, 2, 0xABCD)
        assert memory.load(DATA_BASE + 12, 2) == 0xABCD

    def test_big_endian_byte_order(self):
        memory = Memory()
        memory.store(DATA_BASE, 4, 0x11223344)
        assert memory.load(DATA_BASE, 1) == 0x11
        assert memory.load(DATA_BASE + 3, 1) == 0x44

    def test_out_of_range_below(self):
        memory = Memory()
        with pytest.raises(SimulationError):
            memory.load(DATA_BASE - 4, 4)

    def test_out_of_range_above(self):
        memory = Memory()
        with pytest.raises(SimulationError):
            memory.load(STACK_TOP - 2, 4)

    def test_stack_region_usable(self):
        memory = Memory()
        memory.store(STACK_TOP - 64, 4, 7)
        assert memory.load(STACK_TOP - 64, 4) == 7
