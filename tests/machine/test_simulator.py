"""Uncompressed simulator tests: control flow, syscalls, limits."""

import pytest

from repro.compiler import compile_and_link
from repro.errors import SimulationError
from repro.machine.simulator import Simulator, branch_decision, run_program
from repro.machine.state import MachineState


class TestBranchDecision:
    def test_branch_always(self):
        assert branch_decision(MachineState(), 20, 0)

    def test_branch_if_true(self):
        state = MachineState()
        state.compare_signed(0, 1, 2)  # LT set
        assert branch_decision(state, 12, 0)
        assert not branch_decision(state, 12, 1)

    def test_branch_if_false(self):
        state = MachineState()
        state.compare_signed(0, 1, 2)
        assert not branch_decision(state, 4, 0)
        assert branch_decision(state, 4, 1)

    def test_bdnz_decrements_and_tests(self):
        state = MachineState()
        state.ctr = 2
        assert branch_decision(state, 16, 0)  # ctr 2 -> 1, branch
        assert state.ctr == 1
        assert not branch_decision(state, 16, 0)  # ctr 1 -> 0, fall through
        assert state.ctr == 0


class TestRunning:
    def test_tiny_program_output(self, tiny_program):
        result = run_program(tiny_program)
        assert result.state.halted
        # sum over |table[i] - i| for the fixture's table.
        assert result.output_text == "60\n"

    def test_step_budget_enforced(self, tiny_program):
        with pytest.raises(SimulationError, match="exceeded"):
            run_program(tiny_program, max_steps=10)

    def test_exit_code_is_r3(self):
        program = compile_and_link(
            "int main() { return 42; }", name="exit-test"
        )
        assert run_program(program).exit_code == 42

    def test_pc_leaving_text_detected(self, tiny_program):
        simulator = Simulator(tiny_program)
        simulator.pc = len(tiny_program.text) + 5
        with pytest.raises(SimulationError):
            simulator.step()

    def test_steps_counted(self, tiny_program):
        result = run_program(tiny_program)
        assert result.steps > len(tiny_program.text) / 4
