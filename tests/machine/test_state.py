"""Machine-state tests: registers, CR fields, output channel."""

from repro.linker.program import STACK_TOP
from repro.machine.state import MachineState


class TestRegisters:
    def test_stack_pointer_initialized(self):
        state = MachineState()
        assert state.read(1) == STACK_TOP - 64

    def test_writes_wrap_to_32_bits(self):
        state = MachineState()
        state.write(3, -1)
        assert state.read(3) == 0xFFFFFFFF
        assert state.read_signed(3) == -1

    def test_write_overflow_wraps(self):
        state = MachineState()
        state.write(3, 1 << 33)
        assert state.read(3) == 0


class TestConditionRegister:
    def test_compare_sets_lt_gt_eq(self):
        state = MachineState()
        state.compare_signed(0, 1, 2)
        assert state.cr_bit(0) == 1  # LT
        assert state.cr_bit(1) == 0  # GT
        assert state.cr_bit(2) == 0  # EQ
        state.compare_signed(0, 2, 2)
        assert state.cr_bit(2) == 1

    def test_cr_fields_independent(self):
        state = MachineState()
        state.compare_signed(0, 1, 2)  # cr0: LT
        state.compare_signed(1, 5, 2)  # cr1: GT
        assert state.cr_bit(0) == 1
        assert state.cr_bit(4 + 1) == 1  # cr1 GT bit is CR bit 5
        state.compare_signed(1, 2, 2)
        assert state.cr_bit(0) == 1, "cr0 must survive a cr1 update"


class TestOutput:
    def test_output_text_formats_ints_and_chars(self):
        state = MachineState()
        state.output.append(("int", -42))
        state.output.append(("char", 10))
        state.output.append(("char", 65))
        assert state.output_text() == "-42\nA"
