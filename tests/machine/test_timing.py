"""Fetch-timing model tests."""

import pytest

from repro.core import NibbleEncoding, compress
from repro.machine.timing import TimingParameters, time_compressed, time_uncompressed


@pytest.fixture(scope="module")
def compressed_tiny(tiny_program):
    return compress(tiny_program, NibbleEncoding())


class TestUncompressedTiming:
    def test_wide_bus_one_cycle_per_instruction(self, tiny_program):
        estimate = time_uncompressed(tiny_program, TimingParameters(bus_bytes=4))
        assert estimate.cpi == 1.0

    def test_narrow_bus_scales_linearly(self, tiny_program):
        one = time_uncompressed(tiny_program, TimingParameters(bus_bytes=1))
        four = time_uncompressed(tiny_program, TimingParameters(bus_bytes=4))
        assert one.cycles == 4 * four.cycles
        assert one.instructions == four.instructions


class TestCompressedTiming:
    def test_narrow_bus_favors_compression(self, tiny_program, compressed_tiny):
        params = TimingParameters(bus_bytes=1)
        plain = time_uncompressed(tiny_program, params)
        packed = time_compressed(compressed_tiny, params)
        assert packed.cycles < plain.cycles

    def test_wide_bus_pays_expansion_latency(self, tiny_program, compressed_tiny):
        params = TimingParameters(bus_bytes=4, expand_latency=1)
        plain = time_uncompressed(tiny_program, params)
        packed = time_compressed(compressed_tiny, params)
        assert packed.cycles > plain.cycles

    def test_zero_latency_wide_bus_near_parity(self, tiny_program, compressed_tiny):
        params = TimingParameters(bus_bytes=4, expand_latency=0)
        plain = time_uncompressed(tiny_program, params)
        packed = time_compressed(compressed_tiny, params)
        # Escape items fetch 4.5 bytes (2 bus cycles vs 1 issue) while
        # codeword items are cheaper: the ratio stays under 2x.
        assert 0.5 < packed.cycles / plain.cycles < 2.0

    def test_instruction_counts_match(self, tiny_program, compressed_tiny):
        params = TimingParameters()
        plain = time_uncompressed(tiny_program, params)
        packed = time_compressed(compressed_tiny, params)
        assert plain.instructions == packed.instructions

    def test_expand_latency_monotone(self, compressed_tiny):
        cheap = time_compressed(compressed_tiny, TimingParameters(expand_latency=0))
        costly = time_compressed(compressed_tiny, TimingParameters(expand_latency=3))
        assert costly.cycles > cheap.cycles
