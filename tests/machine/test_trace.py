"""Execution tracer tests."""

from repro.core import NibbleEncoding, compress
from repro.machine.trace import trace_compressed, trace_program, traces_equivalent


class TestTracing:
    def test_trace_starts_at_entry(self, tiny_program):
        entries = trace_program(tiny_program, limit=3)
        assert entries[0].text.startswith("bl")  # _start: bl main
        assert entries[0].position == 0

    def test_trace_limit_respected(self, tiny_program):
        assert len(trace_program(tiny_program, limit=10)) == 10

    def test_full_trace_length_matches_steps(self, tiny_program):
        from repro.machine.simulator import run_program

        steps = run_program(tiny_program).steps
        entries = trace_program(tiny_program, limit=10**9)
        assert len(entries) == steps

    def test_compressed_trace_marks_codewords(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        entries = trace_compressed(compressed, limit=200)
        assert any("cw#" in entry.location for entry in entries)

    def test_traces_equivalent(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        assert traces_equivalent(tiny_program, compressed, limit=500)

    def test_entry_renders(self, tiny_program):
        entry = trace_program(tiny_program, limit=1)[0]
        rendered = str(entry)
        assert "0x" in rendered and "bl" in rendered
