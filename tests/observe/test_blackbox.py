"""Flight-recorder tests: ring bounds, dumps, and crash-hook chaining.

Every test that arms the process-wide recorder uninstalls it again —
the hooks are global state shared with the rest of the suite.
"""

import json
import signal
import sys
import threading

import pytest

from repro import observe
from repro.observe import blackbox
from repro.observe.blackbox import (
    FlightRecorder,
    read_dumps,
    validate_blackbox,
)


@pytest.fixture(autouse=True)
def _always_disarm():
    yield
    blackbox.uninstall()


class TestRing:
    def test_ring_is_bounded_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.note(f"event {index}")
        events = recorder.snapshot()
        assert len(events) == 4
        assert recorder.dropped == 6
        # Oldest evicted first: only the newest four remain.
        assert [e["message"] for e in events] == [
            f"event {index}" for index in range(6, 10)
        ]

    def test_recorder_duck_type_collects_spans_and_metrics(self):
        recorder = FlightRecorder(capacity=16)
        with observe.recorder.Recorder():  # make spans real
            blackbox.install(recorder, signals=False)
            with observe.span("doomed", tenant="alpha"):
                observe.metric("work.units", 3)
        kinds = [event["type"] for event in recorder.snapshot()]
        assert "span" in kinds and "metric" in kinds
        span_events = [
            e for e in recorder.snapshot() if e["type"] == "span"
        ]
        assert span_events[-1]["span"]["name"] == "doomed"


class TestDump:
    def test_dump_round_trips_and_validates(self, tmp_path):
        recorder = FlightRecorder(capacity=8, directory=tmp_path)
        recorder.note("approaching the iceberg", speed="full ahead")
        path = recorder.dump("unit_test", "TestError: boom")
        document = json.loads(path.read_text())
        assert validate_blackbox(document) == []
        assert document["reason"] == "unit_test"
        assert document["error"] == "TestError: boom"
        assert document["events"][-1]["message"] == "approaching the iceberg"

    def test_read_dumps_skips_torn_files(self, tmp_path):
        recorder = FlightRecorder(capacity=8, directory=tmp_path)
        recorder.note("one")
        good = recorder.dump("first")
        torn = tmp_path / "blackbox-999-1-1.json"
        torn.write_text(good.read_text()[: 40])  # torn crash write
        dumps = read_dumps(tmp_path)
        assert len(dumps) == 1
        assert dumps[0]["_path"] == str(good)

    def test_read_dumps_sorted_oldest_first(self, tmp_path):
        recorder = FlightRecorder(capacity=8, directory=tmp_path)
        first = recorder.dump("first")
        second = recorder.dump("second")
        assert [d["reason"] for d in read_dumps(tmp_path)] == [
            "first", "second",
        ]
        assert first != second

    def test_validator_rejects_malformed(self):
        assert validate_blackbox([]) == ["document is not an object"]
        assert any(
            "schema" in problem for problem in validate_blackbox({})
        )
        bad = {
            "schema": 1, "reason": "x", "process": "p", "pid": 1,
            "unix_time": 0.0, "events": [{"type": "nope"}],
        }
        assert any("events[0]" in p for p in validate_blackbox(bad))


class TestInstall:
    def test_crash_dump_is_noop_when_unarmed(self):
        assert blackbox.installed() is None
        assert blackbox.crash_dump("whatever") is None

    def test_install_is_idempotent_and_uninstall_restores(self, tmp_path):
        before_except = sys.excepthook
        before_thread = threading.excepthook
        recorder = FlightRecorder(directory=tmp_path)
        armed = blackbox.install(recorder, signals=False)
        assert armed is recorder
        assert blackbox.install(FlightRecorder(), signals=False) is recorder
        assert sys.excepthook is not before_except
        blackbox.uninstall()
        assert blackbox.installed() is None
        assert sys.excepthook is before_except
        assert threading.excepthook is before_thread

    def test_unhandled_exception_dumps(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        blackbox.install(recorder, signals=False)
        recorder.note("last breadcrumb")
        # Drive the chained excepthook exactly as the interpreter would;
        # swap the underlying hook so the error is not printed.
        previous, blackbox._previous_excepthook = (
            blackbox._previous_excepthook, lambda *a: None,
        )
        try:
            sys.excepthook(ValueError, ValueError("kaboom"), None)
        finally:
            blackbox._previous_excepthook = previous
        dumps = read_dumps(tmp_path)
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "unhandled_exception"
        assert "kaboom" in dumps[0]["error"]
        assert dumps[0]["events"][-1]["message"] == "last breadcrumb"

    def test_thread_exception_dumps(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        blackbox.install(recorder, signals=False)

        def die():
            raise RuntimeError("thread went down")

        # Silence the chained default printer for this one thread.
        previous, blackbox._previous_threading_hook = (
            blackbox._previous_threading_hook, lambda args: None,
        )
        try:
            worker = threading.Thread(target=die, name="doomed-worker")
            worker.start()
            worker.join()
        finally:
            blackbox._previous_threading_hook = previous
        dumps = read_dumps(tmp_path)
        assert dumps and dumps[-1]["reason"] == "unhandled_thread_exception"
        assert "doomed-worker" in dumps[-1]["error"]

    def test_sigterm_dumps_and_chains(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        seen = []
        previous = signal.signal(
            signal.SIGTERM, lambda *a: seen.append("previous")
        )
        try:
            blackbox.install(recorder)
            signal.raise_signal(signal.SIGTERM)
        finally:
            blackbox.uninstall()
            signal.signal(signal.SIGTERM, previous)
        assert seen == ["previous"]  # prior handler still ran
        assert [d["reason"] for d in read_dumps(tmp_path)] == ["sigterm"]

    def test_dump_reports_blackbox_dumps_metric(self, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        with observe.recorder.Recorder() as ambient:
            with observe.span("covering"):
                recorder.dump("metric_check")
        assert ambient.metrics.get("blackbox.dumps") == 1


class TestSimulatedCrashIntegration:
    def test_chaos_crash_point_leaves_a_dump(self, tmp_path):
        from repro.chaos.filesystem import FaultyFilesystem, SimulatedCrash

        recorder = FlightRecorder(directory=tmp_path)
        blackbox.install(recorder, signals=False)
        recorder.note("writing the artifact")
        fs = FaultyFilesystem(crash_after=0)
        with pytest.raises(SimulatedCrash):
            fs.write_atomic(tmp_path / "artifact.bin", b"payload")
        dumps = read_dumps(tmp_path)
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "simulated_crash"
        assert "write point" in dumps[0]["error"]
        assert dumps[0]["events"][-1]["message"] == "writing the artifact"

    def test_chaos_crash_point_without_recorder_still_raises(self, tmp_path):
        from repro.chaos.filesystem import FaultyFilesystem, SimulatedCrash

        fs = FaultyFilesystem(crash_after=0)
        with pytest.raises(SimulatedCrash):
            fs.write_atomic(tmp_path / "artifact.bin", b"payload")
        assert read_dumps(tmp_path) == []
