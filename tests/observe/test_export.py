"""Exporter round-trips: Chrome trace well-formedness, Prometheus text."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import observe
from repro.observe import (
    Recorder,
    Span,
    chrome_trace_from_records,
    make_record,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observe.export import lint_prometheus, prometheus_snapshot
from repro.service.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# Property: every span tree exports to a well-formed Chrome trace.
# ----------------------------------------------------------------------
_NAMES = ["compress", "dict_build", "tokenize", "job", "sim.predecode"]


@st.composite
def span_shapes(draw, depth=0):
    """Random tree *structure*: (name, attr count, children)."""
    name = draw(st.sampled_from(_NAMES))
    attrs = draw(st.integers(min_value=0, max_value=2))
    children = []
    if depth < 3:
        children = draw(st.lists(
            st.deferred(lambda: span_shapes(depth=depth + 1)),
            max_size=3,
        ))
    return (name, attrs, children)


def _realize(shape, start_ns, end_ns):
    """Lay a shape out as a Span with children nested inside, in order."""
    name, attr_count, child_shapes = shape
    node = Span(name, {f"k{i}": i for i in range(attr_count)}, start_ns)
    node.end_ns = end_ns
    if child_shapes:
        slot = (end_ns - start_ns) // (len(child_shapes) + 1)
        cursor = start_ns
        for child_shape in child_shapes:
            child = _realize(child_shape, cursor, cursor + slot)
            child.thread_id = node.thread_id
            node.children.append(child)
            cursor += slot
    return node


@settings(max_examples=60, deadline=None)
@given(st.lists(span_shapes(), min_size=0, max_size=4),
       st.integers(min_value=0, max_value=10**9))
def test_every_emitted_trace_is_well_formed(shapes, origin):
    # Sequential roots, like a real single-threaded recorder: runs in
    # one lane never overlap.
    roots = []
    cursor = origin * 1000
    for shape in shapes:
        width = 8**4 * 1000  # wide enough for depth-3 nesting
        roots.append(_realize(shape, cursor, cursor + width))
        cursor += width
    document = to_chrome_trace(roots)
    assert validate_chrome_trace(document) == []
    # B/E balance double-checked independently of the validator.
    events = document["traceEvents"]
    assert sum(1 for e in events if e["ph"] == "B") == sum(
        1 for e in events if e["ph"] == "E"
    )


def test_real_pipeline_trace_is_well_formed(tiny_program):
    from repro.core.compressor import Compressor
    from repro.core.encodings import NibbleEncoding

    with Recorder() as recorder:
        Compressor(encoding=NibbleEncoding()).compress(tiny_program)
        observe.metric("decode_cache.hits", 3)
    document = to_chrome_trace(recorder.spans, metrics=recorder.metrics)
    assert validate_chrome_trace(document) == []
    assert document["otherData"]["metrics"]["decode_cache.hits"] == 3
    names = {event["name"] for event in document["traceEvents"]}
    assert {"compress", "dict_build", "build_dictionary"} <= names
    begin = next(e for e in document["traceEvents"] if e["name"] == "compress")
    assert begin["args"]["program"] == "tiny"


def test_write_chrome_trace_roundtrip(tmp_path):
    with Recorder() as recorder:
        with observe.span("root", key="value"):
            with observe.span("child"):
                pass
    path = write_chrome_trace(tmp_path / "trace.json", recorder.spans)
    document = json.loads(path.read_text())
    assert validate_chrome_trace(document) == []
    assert document["displayTimeUnit"] == "ms"


class TestValidator:
    def test_rejects_unbalanced(self):
        assert validate_chrome_trace({"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ]}) != []

    def test_rejects_mismatched_names(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
        ]})
        assert any("closes" in problem for problem in problems)

    def test_rejects_backwards_timestamps(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"name": "a", "ph": "B", "ts": 10, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 5, "pid": 1, "tid": 1},
        ]})
        assert any("backwards" in problem for problem in problems)

    def test_rejects_missing_keys(self):
        problems = validate_chrome_trace({"traceEvents": [{"ph": "B"}]})
        assert any("missing keys" in problem for problem in problems)


class TestPrometheus:
    def test_snapshot_families(self):
        registry = MetricsRegistry()
        registry.counter("jobs.completed").inc(7)
        timer = registry.timer("stage.compile")
        for value in (0.01, 0.02, 0.03, 0.5):
            timer.observe(value)
        registry.histogram("job.seconds", bounds=(0.1, 1.0)).observe(0.05)
        text = prometheus_snapshot(registry)
        assert "# TYPE repro_jobs_completed counter" in text
        assert "repro_jobs_completed 7" in text
        assert "# TYPE repro_stage_compile_seconds summary" in text
        assert 'repro_stage_compile_seconds{quantile="0.5"}' in text
        assert 'quantile="0.99"' in text
        assert "repro_stage_compile_seconds_count 4" in text
        assert "repro_stage_compile_seconds_sum 0.56" in text
        assert 'repro_job_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_job_seconds_bucket{le="+Inf"} 1' in text

    def test_accepts_plain_snapshot_dict(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc()
        assert "repro_cache_hits 1" in prometheus_snapshot(registry.as_dict())

    def test_empty_registry(self):
        assert prometheus_snapshot(MetricsRegistry()) == ""

    def test_quantiles_ordered(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        for index in range(100):
            timer.observe(index / 100.0)
        p = timer.percentiles()
        assert p["p50"] <= p["p90"] <= p["p99"]
        assert p["p50"] == pytest.approx(0.49, abs=0.02)
        assert p["p99"] == pytest.approx(0.98, abs=0.02)


class TestPrometheusLabelsAndLint:
    def test_tenant_counters_fold_into_one_labeled_family(self):
        registry = MetricsRegistry()
        registry.counter("server.trace.count.alpha").inc(3)
        registry.counter("server.trace.count.beta").inc(1)
        registry.counter("jobs.completed").inc()
        text = prometheus_snapshot(registry)
        assert 'repro_server_trace_count{tenant="alpha"} 3' in text
        assert 'repro_server_trace_count{tenant="beta"} 1' in text
        # One HELP/TYPE pair for the whole family, not one per tenant.
        assert text.count("# TYPE repro_server_trace_count counter") == 1
        assert text.count("# HELP repro_server_trace_count") == 1

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter('server.trace.count.we"ird\\one').inc()
        text = prometheus_snapshot(registry)
        assert 'tenant="we\\"ird\\\\one"' in text
        assert lint_prometheus(text) == []

    def test_every_family_has_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("profiler.samples").inc(10)
        registry.counter("blackbox.dumps").inc(1)
        registry.counter("server.trace.count.alpha").inc(2)
        registry.timer("job.wall").observe(0.2)
        registry.histogram("job.seconds", bounds=(0.1, 1.0)).observe(0.05)
        text = prometheus_snapshot(registry)
        families = {
            line.split()[3 - 1]
            for line in text.splitlines()
            if line.startswith("# TYPE ")
        }
        helps = {
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# HELP ")
        }
        assert families == helps
        assert lint_prometheus(text) == []

    def test_lint_flags_type_without_help(self):
        problems = lint_prometheus("# TYPE repro_x counter\nrepro_x 1\n")
        assert any("TYPE without HELP" in p for p in problems)

    def test_lint_flags_duplicate_family(self):
        text = (
            "# HELP repro_x one\n# TYPE repro_x counter\nrepro_x 1\n"
            "# HELP repro_x two\n# TYPE repro_x counter\nrepro_x 2\n"
        )
        problems = lint_prometheus(text)
        assert any("duplicate HELP" in p for p in problems)
        assert any("duplicate TYPE" in p for p in problems)

    def test_lint_flags_orphan_sample_and_bad_type(self):
        problems = lint_prometheus("repro_orphan 5\n")
        assert any("no # TYPE" in p for p in problems)
        problems = lint_prometheus(
            "# HELP repro_x thing\n# TYPE repro_x gadget\nrepro_x 1\n"
        )
        assert any("not one of" in p for p in problems)

    def test_lint_accepts_suffixed_summary_samples(self):
        registry = MetricsRegistry()
        registry.timer("stage.compile").observe(0.01)
        registry.histogram("job.seconds", bounds=(0.5,)).observe(0.1)
        assert lint_prometheus(prometheus_snapshot(registry)) == []

    def test_live_server_exposition_is_lint_clean(self):
        # The same registry shape the /metrics route serves.
        registry = MetricsRegistry()
        registry.counter("jobs.submitted").inc(4)
        registry.counter("server.trace.count.alpha").inc(4)
        registry.counter("profiler.samples").inc(970)
        registry.counter("blackbox.dumps").inc(1)
        registry.timer("job.wall").observe(1.2)
        assert lint_prometheus(prometheus_snapshot(registry)) == []


class TestMultiProcessStitch:
    def _record_pair(self):
        """A client record + a server record parented across the gap."""
        with Recorder() as client_side:
            with observe.span("client.job", tenant="alpha"):
                traceparent = observe.current_traceparent()
        with Recorder() as server_side:
            with observe.remote_context(traceparent):
                with observe.span("server.job", job_id="j-1"):
                    with observe.span("compress"):
                        pass
        client_record = make_record(
            "client.job", spans=client_side.spans,
            meta={"process": "client"},
        )
        server_record = make_record(
            "server.job", spans=server_side.spans,
            meta={"process": "server"},
        )
        return client_record, server_record

    def test_flow_arrows_cross_lanes_on_one_trace(self):
        client_record, server_record = self._record_pair()
        assert client_record["trace_id"] == server_record["trace_id"]
        document = chrome_trace_from_records([client_record, server_record])
        assert validate_chrome_trace(document) == []
        events = document["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] in "BE"}
        assert len(pids) == 2  # one lane per record
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert starts[0]["pid"] != finishes[0]["pid"]

    def test_no_arrow_without_cross_record_parent(self):
        with Recorder() as lonely:
            with observe.span("solo"):
                pass
        record = make_record("solo", spans=lonely.spans)
        document = chrome_trace_from_records([record])
        assert validate_chrome_trace(document) == []
        assert not [
            e for e in document["traceEvents"] if e["ph"] in ("s", "f")
        ]

    def test_lanes_are_zero_normalized(self):
        client_record, server_record = self._record_pair()
        document = chrome_trace_from_records([client_record, server_record])
        begins = [e for e in document["traceEvents"] if e["ph"] == "B"]
        for pid in {e["pid"] for e in begins}:
            assert min(e["ts"] for e in begins if e["pid"] == pid) == 0
