"""Run-ledger schema, append/read round-trip, corruption handling."""

import json

import pytest

from repro import observe
from repro.errors import ReproError
from repro.observe import (
    LEDGER_SCHEMA,
    Recorder,
    RunLedger,
    make_record,
    read_ledger,
    validate_record,
)


def _capture_one_run():
    with Recorder() as recorder:
        with observe.span("compress", program="p"):
            with observe.span("dict_build"):
                pass
        observe.metric("candidates.count", 42)
    return recorder


class TestRecord:
    def test_make_record_defaults(self):
        recorder = _capture_one_run()
        record = make_record(
            "compress", program="p", encoding="nibble",
            spans=recorder.spans, metrics=recorder.metrics,
        )
        assert record["schema"] == LEDGER_SCHEMA
        assert record["outcome"] == "ok"
        assert record["metrics"] == {"candidates.count": 42}
        assert record["spans"][0]["name"] == "compress"
        assert record["wall_seconds"] > 0
        assert len(record["run_id"]) == 12
        assert validate_record(record) == []

    def test_run_ids_unique(self):
        first = make_record("compress")
        second = make_record("compress")
        assert first["run_id"] != second["run_id"]

    def test_validate_flags_problems(self):
        assert validate_record({"schema": 99}) != []
        record = make_record("compress")
        record["outcome"] = "maybe"
        assert any("outcome" in p for p in validate_record(record))
        record = make_record("compress", spans=[{"name": "x"}])
        assert any("start_us" in p for p in validate_record(record))


class TestRunLedger:
    def test_append_read_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path / "obs")
        recorder = _capture_one_run()
        record = ledger.append(make_record(
            "compress", program="p", encoding="nibble",
            spans=recorder.spans, metrics=recorder.metrics,
        ))
        ledger.append(make_record("simulate", program="p"))
        loaded = ledger.read()
        assert [r["kind"] for r in loaded] == ["compress", "simulate"]
        assert loaded[0]["run_id"] == record["run_id"]
        assert loaded[0]["spans"][0]["children"][0]["name"] == "dict_build"

    def test_append_rejects_malformed(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with pytest.raises(ReproError, match="malformed"):
            ledger.append({"schema": LEDGER_SCHEMA})
        assert not ledger.path.exists()

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_ledger(tmp_path / "nope.jsonl") == []

    def test_read_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ReproError, match="corrupt"):
            read_ledger(path)

    def test_read_rejects_invalid_record(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps({"schema": LEDGER_SCHEMA}) + "\n")
        with pytest.raises(ReproError, match="invalid record"):
            read_ledger(path)

    def test_default_directory_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBSERVE_DIR", str(tmp_path / "custom"))
        ledger = RunLedger()
        ledger.append(make_record("compress"))
        assert (tmp_path / "custom" / "ledger.jsonl").exists()
