"""Sampling-profiler tests: attribution, export shape, and overhead.

The profiler is wall-clock driven, so tests run it around *real* work
(a busy loop inside a span) at a high sampling rate and assert on
aggregate structure — never on exact sample counts.
"""

import json
import time

import pytest

from repro import observe
from repro.observe import profiler as profiler_module
from repro.observe.profiler import (
    SamplingProfiler,
    profile,
    validate_speedscope,
    write_speedscope,
)


def _busy(seconds: float) -> int:
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSampling:
    def test_samples_land_inside_named_spans(self):
        from repro.observe.recorder import Recorder

        profiler = SamplingProfiler(hz=400)
        profiler.start()
        try:
            # Spans are no-ops without a recorder in effect, so live
            # tracking (and hence attribution) needs one installed.
            with Recorder(), observe.span("hotwork"):
                _busy(0.3)
        finally:
            profiler.stop()
        assert profiler.samples > 0
        report = profiler.attribution()
        assert report["samples"] == profiler.samples
        # The worked time was entirely inside a span; allow slack for
        # samples that land in interpreter/test-runner threads.
        assert report["fraction"] >= 0.5
        assert any(
            line.startswith("span:hotwork;") for line in profiler.collapsed()
        )

    def test_collapsed_lines_are_hot_first(self):
        profiler = SamplingProfiler(hz=400)
        profiler.start()
        try:
            _busy(0.2)
        finally:
            profiler.stop()
        lines = profiler.collapsed()
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == profiler.samples

    def test_context_manager_stops_on_exit(self):
        with profile(hz=400) as profiler:
            assert profiler.running
            _busy(0.05)
        assert not profiler.running

    def test_stop_reports_profiler_samples_metric(self):
        from repro.observe.recorder import Recorder

        with Recorder() as recorder:
            with observe.span("covering"):
                with profile(hz=400) as profiler:
                    _busy(0.1)
        if profiler.samples:
            assert recorder.metrics.get("profiler.samples") == profiler.samples

    def test_trace_markers_become_leaf_frames(self):
        from repro.machine import fastpath

        profiler = SamplingProfiler(hz=200)
        fastpath.enable_trace_tagging()
        try:
            import threading

            fastpath._live_trace[threading.get_ident()] = ("program", 7, True)
            profiler._sample(own_ident=-1)
        finally:
            fastpath.disable_trace_tagging()
        assert any(
            stack[-1] == "trace:program:7:fused"
            for stack in profiler._stacks
            if stack
        )

    def test_bad_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_deep_stacks_truncated_at_root(self):
        profiler = SamplingProfiler(hz=200, max_depth=8)

        def recurse(depth: int):
            if depth == 0:
                profiler._sample(own_ident=-1)
                return
            recurse(depth - 1)

        recurse(40)
        deep = [stack for stack in profiler._stacks if "(truncated)" in stack]
        assert deep
        for stack in deep:
            assert stack[0] == "(truncated)"
            assert len(stack) <= 1 + profiler.max_depth


class TestSpeedscopeExport:
    def test_export_is_valid_and_weights_sum(self, tmp_path):
        with profile(hz=400) as profiler:
            with observe.span("exported"):
                _busy(0.2)
        document = profiler.speedscope("test profile")
        assert validate_speedscope(document) == []
        sampled = document["profiles"][0]
        assert sampled["endValue"] == sum(sampled["weights"])
        path = write_speedscope(tmp_path / "flame.speedscope.json", profiler)
        on_disk = json.loads(path.read_text())
        assert validate_speedscope(on_disk) == []

    def test_validator_rejects_broken_documents(self):
        assert validate_speedscope([]) == ["document is not an object"]
        good = SamplingProfiler(hz=100).speedscope()
        assert validate_speedscope(good) == []  # empty profile is valid
        bad = json.loads(json.dumps(good))
        bad["profiles"][0]["endValue"] = 999
        assert any("endValue" in p for p in validate_speedscope(bad))
        bad = json.loads(json.dumps(good))
        bad["$schema"] = "nope"
        assert any("$schema" in p for p in validate_speedscope(bad))

    def test_default_hz_is_prime(self):
        hz = profiler_module.DEFAULT_HZ
        assert hz > 1
        assert all(hz % d for d in range(2, int(hz ** 0.5) + 1))


class TestOverhead:
    def test_overhead_within_budget_at_default_hz(self):
        """Sampling at the default rate must cost <= ~3% wall time.

        Measured as paired busy-loop iteration throughput with and
        without the profiler; generous slack (10%) keeps the test
        meaningful but not flaky on loaded CI machines.
        """
        def iterations(seconds: float) -> int:
            deadline = time.perf_counter() + seconds
            count = 0
            while time.perf_counter() < deadline:
                sum(range(100))
                count += 1
            return count

        iterations(0.05)  # warm up timers/allocator
        baseline = iterations(0.4)
        with profile():  # DEFAULT_HZ
            profiled = iterations(0.4)
        assert profiled >= baseline * 0.90
