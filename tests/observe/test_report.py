"""Report rendering and ledger diffing."""

from repro.observe import make_record
from repro.observe.report import (
    aggregate_stage_seconds,
    diff_ledgers,
    latest_by_key,
    records_from_bench,
    render_report,
    render_tree,
    top_metrics,
)


def _record(kind="compress", program="p", encoding="nibble", stages=None,
            metrics=None):
    cursor = 0
    spans = []
    children = []
    for name, seconds in (stages or {}).items():
        duration = int(seconds * 1e6)
        children.append(
            {"name": name, "start_us": cursor, "duration_us": duration}
        )
        cursor += duration
    spans.append({
        "name": "root", "start_us": 0, "duration_us": max(cursor, 1),
        "children": children,
    })
    return make_record(
        kind, program=program, encoding=encoding, spans=spans,
        metrics=metrics or {},
    )


class TestRendering:
    def test_render_tree_shows_self_and_total(self):
        record = _record(stages={"a": 0.010, "b": 0.005})
        text = render_tree(record["spans"])
        assert "root" in text
        assert "15.00ms" in text  # root total
        assert "0.00ms" in text   # root self: fully attributed to children
        assert "10.00ms" in text and "5.00ms" in text

    def test_render_report_headers_and_metrics(self):
        record = _record(metrics={"candidates.count": 10, "hits": 99})
        text = render_report([record], top=1)
        assert f"run {record['run_id']}" in text
        assert "kind=compress" in text
        assert "program=p" in text
        assert "top 1 metrics:" in text
        assert "hits" in text and "candidates.count" not in text

    def test_empty(self):
        assert "no ledger records" in render_report([])

    def test_aggregate_and_top_metrics(self):
        record = _record(stages={"a": 0.010})
        totals = aggregate_stage_seconds(record["spans"])
        assert abs(totals["a"] - 0.010) < 1e-9
        assert totals["root"] >= totals["a"]
        ranked = top_metrics(
            [_record(metrics={"m": 1}), _record(metrics={"m": 2, "n": 1})]
        )
        assert ranked[0] == ("m", 3)


class TestDiff:
    def test_latest_record_wins(self):
        old = _record(stages={"a": 0.001})
        new = _record(stages={"a": 0.002})
        grouped = latest_by_key([old, new])
        assert grouped[("compress", "p", "nibble")] is new

    def test_no_regression_within_factor(self):
        base = [_record(stages={"a": 0.010})]
        current = [_record(stages={"a": 0.012})]
        lines, regressions = diff_ledgers(base, current, factor=1.5)
        assert regressions == []
        assert any("1.20x" in line for line in lines)

    def test_flags_stage_regression(self):
        base = [_record(stages={"a": 0.010, "b": 0.010})]
        current = [_record(stages={"a": 0.030, "b": 0.010})]
        lines, regressions = diff_ledgers(base, current, factor=1.5)
        assert any("stage a" in entry for entry in regressions)
        # The untouched stage is not flagged (the root aggregate may be:
        # it inherits the child's growth).
        assert not any("stage b" in entry for entry in regressions)

    def test_small_absolute_growth_ignored(self):
        base = [_record(stages={"a": 0.0001})]
        current = [_record(stages={"a": 0.0009})]
        _, regressions = diff_ledgers(
            base, current, factor=1.5, min_seconds=0.002
        )
        assert regressions == []

    def test_unmatched_runs_reported_not_flagged(self):
        base = [_record(program="p")]
        current = [_record(program="q", stages={"a": 0.01})]
        lines, regressions = diff_ledgers(base, current)
        assert regressions == []
        assert any("no baseline run" in line for line in lines)

    def test_one_sided_stage_reported(self):
        base = [_record(stages={"a": 0.01})]
        current = [_record(stages={"b": 0.01})]
        lines, regressions = diff_ledgers(base, current)
        assert regressions == []
        assert any("only on current" in line for line in lines)
        assert any("only on baseline" in line for line in lines)


class TestBenchConversion:
    BENCH = {
        "schema": 1,
        "runs": {
            "key": {
                "programs": {
                    "gcc": {
                        "encodings": {
                            "nibble": {
                                "stage_seconds": {"dict_build": 0.05,
                                                  "tokenize": 0.01},
                                "compress_seconds": 0.07,
                                "candidates_count": 1234,
                            }
                        }
                    }
                }
            }
        },
    }

    def test_records_from_bench_document(self):
        records = records_from_bench(self.BENCH)
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "bench.compress"
        assert record["program"] == "gcc"
        assert record["encoding"] == "nibble"
        assert record["metrics"]["candidates.count"] == 1234
        totals = aggregate_stage_seconds(record["spans"])
        assert abs(totals["dict_build"] - 0.05) < 1e-6

    def test_diffable_against_ledger_records(self):
        baseline = records_from_bench(self.BENCH)
        current = [_record(kind="bench.compress", program="gcc",
                           stages={"dict_build": 0.2, "tokenize": 0.01})]
        _, regressions = diff_ledgers(baseline, current, factor=1.5)
        assert any("dict_build" in regression for regression in regressions)
