"""Span nesting, recorder scoping, and the flat-callback compat shim."""

import re
import threading

import pytest

import repro.observe
from repro import observe
from repro.core.compressor import Compressor
from repro.core.encodings import NibbleEncoding
from repro.observe import Recorder


class TestSpanBasics:
    def test_noop_without_recorder(self):
        with observe.span("anything") as node:
            assert node is None  # no recorder: nothing allocated

    def test_nesting(self):
        with Recorder() as recorder:
            with observe.span("root", level=0):
                with observe.span("child-a"):
                    with observe.span("grandchild"):
                        pass
                with observe.span("child-b"):
                    pass
        assert len(recorder.spans) == 1
        root = recorder.spans[0]
        assert root.name == "root"
        assert root.attrs == {"level": 0}
        assert [child.name for child in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"

    def test_durations_and_self_time(self):
        with Recorder() as recorder:
            with observe.span("root"):
                with observe.span("child"):
                    pass
        root = recorder.spans[0]
        child = root.children[0]
        assert root.duration_seconds >= child.duration_seconds > 0
        assert root.self_seconds == pytest.approx(
            root.duration_seconds - child.duration_seconds
        )

    def test_exception_still_closes_span(self):
        with Recorder() as recorder:
            with pytest.raises(ValueError):
                with observe.span("root"):
                    raise ValueError("boom")
        assert recorder.spans[0].end_ns is not None

    def test_current_span(self):
        assert observe.current_span() is None
        with Recorder():
            with observe.span("outer"):
                assert observe.current_span().name == "outer"
                with observe.span("inner"):
                    assert observe.current_span().name == "inner"
        assert observe.current_span() is None

    def test_to_dict_roundtrip(self):
        with Recorder() as recorder:
            with observe.span("root", program="x"):
                with observe.span("child"):
                    pass
        doc = recorder.spans[0].to_dict()
        rebuilt = observe.Span.from_dict(doc)
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"program": "x"}
        assert rebuilt.children[0].name == "child"
        assert rebuilt.to_dict() == doc


class TestRecorderScoping:
    def test_metrics_routed_to_recorder(self):
        with Recorder() as recorder:
            observe.metric("hits", 2)
            observe.metric("hits", 3)
        observe.metric("hits", 100)  # after uninstall: dropped
        assert recorder.metrics == {"hits": 5}

    def test_two_recorders_same_context_both_complete(self):
        outer = Recorder()
        inner = Recorder()
        with outer:
            with inner:
                with observe.span("run"):
                    observe.metric("m")
        assert [s.name for s in outer.spans] == ["run"]
        assert [s.name for s in inner.spans] == ["run"]
        assert outer.metrics == inner.metrics == {"m": 1}

    def test_snapshot_at_root_start_wins(self):
        # A recorder installed after a root span opened does not see it;
        # a recorder uninstalled before the root closes still does.
        early = Recorder()
        late = Recorder()
        early.install()
        with observe.span("run"):
            early.uninstall()
            late.install()
            observe.metric("m")  # inside the tree: follows the snapshot
        late.uninstall()
        assert [s.name for s in early.spans] == ["run"]
        assert early.metrics == {"m": 1}
        assert late.spans == []
        assert late.metrics == {}

    def test_process_wide_recorder_sees_other_threads(self):
        recorder = Recorder().install(process_wide=True)
        try:
            def work():
                with observe.span("thread-run"):
                    pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        finally:
            recorder.uninstall()
        assert [s.name for s in recorder.spans] == ["thread-run"]

    def test_concurrent_context_recorders_disjoint_by_run(self):
        """The acceptance-criterion race test at recorder level.

        Two threads each install their own context-scoped recorder and
        run a real compress; each recorder must capture its own run
        completely and nothing from its neighbour.
        """
        from repro import workloads

        # Fresh programs: memoized ones may already carry candidate
        # stores, which would swallow the candidates.count metric.
        workloads.clear_cache()
        programs = {"a": workloads.build_benchmark("compress", 0.2),
                    "b": workloads.build_benchmark("li", 0.2)}
        recorders = {}
        barrier = threading.Barrier(2)
        errors = []

        def work(key):
            try:
                recorder = Recorder(name=key)
                recorders[key] = recorder
                with recorder:
                    barrier.wait(timeout=30)
                    Compressor(encoding=NibbleEncoding()).compress(
                        programs[key]
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(k,)) for k in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for key, program in (("a", programs["a"]), ("b", programs["b"])):
            spans = recorders[key].spans
            assert len(spans) == 1, "each recorder sees exactly its own run"
            root = spans[0]
            assert root.name == "compress"
            assert root.attrs["program"] == program.name
            names = {node.name for node in root.walk()}
            assert {"dict_build", "tokenize", "branch_patch",
                    "serialize", "jump_tables"} <= names
            # candidates.count is per-program: disjoint metric views too.
            assert recorders[key].metrics["candidates.count"] > 0
        assert (
            recorders["a"].metrics["candidates.count"]
            != recorders["b"].metrics["candidates.count"]
        )


def _docstring_table_names(section: str) -> set:
    """Parse the ``name`` column of one docstring table."""
    doc = repro.observe.__doc__
    sections = ("Stage names currently emitted:",
                "Metric names currently emitted:")
    start = doc.index(section) + len(section)
    end = min(
        (doc.index(other) for other in sections
         if other != section and doc.index(other) > start),
        default=len(doc),
    )
    return set(re.findall(r"^``([a-z_.]+)``", doc[start:end], re.MULTILINE))


class TestCompatShim:
    def test_stage_names_byte_identical_to_docstring_table(self):
        """The legacy callback sees exactly the documented stage names."""
        documented = _docstring_table_names("Stage names currently emitted:")
        documented -= _docstring_table_names("Metric names currently emitted:")
        assert "dict_build" in documented  # table parsed at all

        from repro.machine.fastpath import ProgramTranslationCache

        from repro import workloads

        # A fresh program: per-program analysis caches would otherwise
        # swallow the enumerate_candidates stage on a re-compress.
        workloads.clear_cache()
        program = workloads.build_benchmark("go", 0.2)
        emitted = []
        previous = observe.set_stage_callback(
            lambda name, seconds: emitted.append(name)
        )
        try:
            Compressor(encoding=NibbleEncoding()).compress(program)
            ProgramTranslationCache(program)
        finally:
            observe.set_stage_callback(previous)
        assert emitted, "stages were emitted"
        assert set(emitted) <= documented
        assert set(emitted) == {
            "dict_build", "tokenize", "branch_patch", "serialize",
            "jump_tables", "enumerate_candidates", "build_dictionary",
            "sim.predecode",
        }

    def test_stage_feeds_callback_and_recorder_together(self):
        seen = []
        previous = observe.set_stage_callback(
            lambda name, seconds: seen.append((name, seconds))
        )
        try:
            with Recorder() as recorder:
                with observe.stage("compile"):
                    pass
        finally:
            observe.set_stage_callback(previous)
        assert [name for name, _ in seen] == ["compile"]
        assert seen[0][1] > 0
        assert [s.name for s in recorder.spans] == ["compile"]

    def test_metric_callback_still_works(self):
        counts = {}
        previous = observe.set_metric_callback(
            lambda name, value: counts.__setitem__(
                name, counts.get(name, 0) + value
            )
        )
        try:
            observe.metric("decode_cache.hits", 4)
        finally:
            observe.set_metric_callback(previous)
        assert counts == {"decode_cache.hits": 4}

    def test_library_default_is_noop(self):
        assert observe.get_stage_callback() is None
        assert not observe.recording_active()
        with observe.stage("anything"):
            pass  # must not raise, must not record
