"""repro-bench harness and CLI tests.

Real measurements are run at test scale with single repeats — the
point is the *structure* of the run document, the byte-identical
verdicts, the baseline file round-trip, and the regression guard's
exit behaviour, not the absolute timings.
"""

import json

import pytest

from repro.errors import ReproError
from repro.perf.bench import (
    SCHEMA,
    check_regression,
    load_baseline,
    merge_baseline,
    run_bench,
    run_key,
)
from repro.tools.bench_cli import main


@pytest.fixture(scope="module")
def run_doc(small_suite):
    # small_suite primes the build_benchmark cache at scale 0.3, so
    # this measures without recompiling.
    return run_bench(
        ["compress"],
        0.3,
        ["nibble", "onebyte"],
        repeats=1,
        simulate=True,
        simulate_steps=2_000,
    )


class TestRunBench:
    def test_document_structure(self, run_doc):
        assert run_doc["config"]["programs"] == ["compress"]
        encodings = run_doc["programs"]["compress"]["encodings"]
        assert set(encodings) == {"nibble", "onebyte"}
        for enc_doc in encodings.values():
            assert enc_doc["dict_fast_seconds"] > 0
            assert enc_doc["dict_reference_seconds"] > 0
            assert enc_doc["compress_seconds"] > 0
            assert enc_doc["decode_warm_seconds"] > 0
            assert 0 < enc_doc["compression_ratio"] < 1.5
            assert enc_doc["candidates_count"] > 0
            assert "dict_build" in enc_doc["stage_seconds"]
            assert "build_dictionary" in enc_doc["stage_seconds"]
            assert enc_doc["simulate_instructions"] > 0

    def test_simulation_keys(self, run_doc):
        sim = run_doc["programs"]["compress"]["simulation"]
        assert sim["steps"] > 0
        assert sim["reference_steps_per_second"] > 0
        assert sim["fast_steps_per_second"] > 0
        assert sim["predecode_cold_seconds"] > 0
        assert sim["speedup"] > 0
        assert sim["identical_state"]
        assert sim["trace_cache"]["traces"] > 0
        assert sim["profile_fast_seconds"] > 0
        assert sim["profile_reference_seconds"] > 0
        for enc_doc in run_doc["programs"]["compress"]["encodings"].values():
            assert enc_doc["simulate_fast_insn_per_second"] > 0
            assert enc_doc["simulate_reference_insn_per_second"] > 0
            assert enc_doc["simulate_identical_state"]
            # Legacy headline keys follow the default (fast) engine.
            assert enc_doc["simulate_seconds"] == enc_doc["simulate_fast_seconds"]

    def test_no_fastpath_escape_hatch(self, small_suite):
        doc = run_bench(
            ["compress"],
            0.3,
            ["onebyte"],
            repeats=1,
            simulate_steps=2_000,
            fastpath_enabled=False,
        )
        assert doc["config"]["fastpath"] is False
        sim = doc["programs"]["compress"]["simulation"]
        assert "fast_steps_per_second" not in sim
        assert sim["reference_steps_per_second"] > 0
        enc_doc = doc["programs"]["compress"]["encodings"]["onebyte"]
        assert "simulate_fast_seconds" not in enc_doc
        assert enc_doc["simulate_seconds"] == enc_doc["simulate_reference_seconds"]
        assert doc["aggregate"]["sim_identical_everywhere"] is True
        assert "sim_speedup_largest" not in doc["aggregate"]

    def test_fast_path_is_byte_identical(self, run_doc):
        assert run_doc["aggregate"]["identical_everywhere"]
        for enc_doc in run_doc["programs"]["compress"]["encodings"].values():
            assert enc_doc["identical_greedy"]
            assert enc_doc["identical_image"]

    def test_aggregate_names_largest(self, run_doc):
        assert run_doc["aggregate"]["largest_program"] == "compress"
        assert run_doc["aggregate"]["dict_speedup_min"] > 0
        assert run_doc["aggregate"]["sim_identical_everywhere"] is True
        assert run_doc["aggregate"]["sim_speedup_largest"] > 0
        assert run_doc["aggregate"]["compressed_sim_speedup_largest"] > 0

    def test_decode_keys(self, run_doc):
        for enc_doc in run_doc["programs"]["compress"]["encodings"].values():
            assert enc_doc["decode_bulk_cold_seconds"] > 0
            assert enc_doc["decode_bulk_seconds"] > 0
            assert enc_doc["decode_reference_seconds"] > 0
            assert enc_doc["decode_bulk_speedup"] > 0
            assert enc_doc["decode_identical_items"] is True
            assert enc_doc["decode_items"] > 0
            assert enc_doc["decode_items_per_second"] > 0
            assert enc_doc["decode_backend"] in ("python", "numpy")
        aggregate = run_doc["aggregate"]
        assert aggregate["decode_identical_everywhere"] is True
        assert 0 < aggregate["decode_speedup_min"] <= aggregate["decode_speedup_max"]

    def test_fusion_keys(self, run_doc):
        fusion = run_doc["programs"]["compress"]["simulation"]["fusion"]
        assert fusion["enabled"] is True
        assert fusion["planned_pairs"] > 0
        assert fusion["trace_instructions"] >= fusion["trace_thunks"] > 0
        assert 0.0 <= fusion["body_shrink"] < 1.0

    def test_control_fusion_keys(self, run_doc):
        control = run_doc["programs"]["compress"]["simulation"]["fusion_control"]
        assert control["sites"] >= control["fused_sites"] > 0
        # The tiny simulate_steps bound truncates the profile, so the
        # dynamic weights may be zero here; real dynamic coverage is
        # asserted in tests/machine/test_control_fusion.py.
        assert control["dynamic_pairs"] >= control["dynamic_fused"] >= 0
        assert 0.0 <= control["coverage"] <= 1.0
        assert (
            run_doc["aggregate"]["control_fusion_coverage_min"]
            == control["coverage"]
        )

    def test_columnar_decode_keys(self, run_doc):
        for enc_doc in run_doc["programs"]["compress"]["encodings"].values():
            assert enc_doc["decode_columnar_seconds"] > 0
            assert enc_doc["decode_columnar_items_per_second"] > 0
            assert enc_doc["decode_columnar_speedup"] > 0
            assert enc_doc["decode_columnar_identical"] is True

    def test_bulk_decode_stats_snapshot(self, run_doc):
        bulk = run_doc["bulk_decode"]
        assert bulk["decodes"] > 0
        assert isinstance(bulk["fallback_reasons"], dict)
        assert sum(bulk["fallback_reasons"].values()) == bulk["fallbacks"]

    def test_workers_sweep(self, small_suite):
        doc = run_bench(
            ["compress"], 0.3, ["onebyte"], repeats=1, workers=2, simulate=False
        )
        workers_doc = doc["workers"]
        assert workers_doc["jobs"] == 1
        assert workers_doc["failed"] == 0
        assert workers_doc["wall_seconds"] > 0

    def test_bad_repeats_rejected(self):
        with pytest.raises(ReproError):
            run_bench(["compress"], 0.3, ["onebyte"], repeats=0)

    def test_ledger_records_stage_breakdowns(self, small_suite, tmp_path):
        from repro.observe import RunLedger
        from repro.observe.report import aggregate_stage_seconds

        ledger = RunLedger(tmp_path / "obs")
        run_bench(
            ["compress"], 0.3, ["nibble", "onebyte"], repeats=1,
            simulate=False, ledger=ledger,
        )
        records = ledger.read()
        compresses = [r for r in records if r["kind"] == "bench.compress"]
        assert [r["encoding"] for r in compresses] == ["nibble", "onebyte"]
        for record in compresses:
            assert record["program"] == "compress"
            assert record["meta"]["instructions"] > 0
            stages = aggregate_stage_seconds(record["spans"])
            assert "dict_build" in stages
            assert "build_dictionary" in stages

    def test_ledger_records_decode_and_fusion(self, small_suite, tmp_path):
        from repro.observe import RunLedger, validate_record

        ledger = RunLedger(tmp_path / "obs")
        run_bench(
            ["compress"], 0.3, ["nibble"], repeats=1,
            simulate=True, simulate_steps=2_000, ledger=ledger,
        )
        records = ledger.read()
        for record in records:
            assert validate_record(record) == []

        decode = [r for r in records if r["kind"] == "bench.decode"]
        assert [r["encoding"] for r in decode] == ["nibble"]
        names = [span["name"] for span in decode[0]["spans"]]
        assert names == ["decode.reference", "decode.bulk", "decode.columnar"]
        assert decode[0]["wall_seconds"] > 0
        assert decode[0]["metrics"]["decode.items"] > 0
        assert decode[0]["meta"]["identical"] is True

        fusion = [r for r in records if r["kind"] == "bench.fusion"]
        assert [r["program"] for r in fusion] == ["compress"]
        assert fusion[0]["metrics"]["fusion.planned_pairs"] >= 0
        assert "coverage" in fusion[0]["meta"]["fusion_control"]
        assert "body_shrink" in fusion[0]["meta"]["fusion"]


class TestBaselineFile:
    def test_round_trip(self, tmp_path, run_doc):
        path = tmp_path / "bench.json"
        key = run_key(["compress"], 0.3, ["nibble", "onebyte"])
        document = merge_baseline(load_baseline(path), key, run_doc)
        path.write_text(json.dumps(document))
        loaded = load_baseline(path)
        assert loaded["schema"] == SCHEMA
        assert key in loaded["runs"]

    def test_missing_file_gives_empty_shell(self, tmp_path):
        document = load_baseline(tmp_path / "absent.json")
        assert document == {"schema": SCHEMA, "runs": {}}

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": 99, "runs": {}}))
        with pytest.raises(ReproError):
            load_baseline(path)

    def test_run_key_is_order_insensitive_on_programs(self):
        assert run_key(["li", "compress"], 0.3, ["nibble"]) == run_key(
            ["compress", "li"], 0.3, ["nibble"]
        )


def _doc(seconds):
    return {
        "programs": {
            "compress": {
                "encodings": {"nibble": {"compress_seconds": seconds}}
            }
        }
    }


class TestRegressionGuard:
    def test_within_budget(self):
        assert check_regression(_doc(0.010), _doc(0.008)) == []

    def test_over_budget(self):
        violations = check_regression(_doc(0.030), _doc(0.010))
        assert len(violations) == 1
        assert "compress/nibble" in violations[0]

    def test_factor_is_configurable(self):
        assert check_regression(_doc(0.030), _doc(0.010), factor=4.0) == []

    def test_new_entries_skipped(self):
        current = _doc(1.0)
        current["programs"]["compress"]["encodings"]["onebyte"] = {
            "compress_seconds": 1.0
        }
        assert check_regression(current, _doc(0.9), factor=2.0) == []

    def _sim_doc(self, steps_per_second, insn_per_second):
        return {
            "programs": {
                "compress": {
                    "simulation": {
                        "fast_steps_per_second": steps_per_second,
                        "reference_steps_per_second": 2e5,
                    },
                    "encodings": {
                        "nibble": {
                            "compress_seconds": 0.01,
                            "simulate_fast_insn_per_second": insn_per_second,
                            "simulate_insn_per_second": insn_per_second,
                        }
                    },
                }
            }
        }

    def test_throughput_within_budget(self):
        baseline = self._sim_doc(1e6, 5e5)
        assert check_regression(self._sim_doc(9e5, 4e5), baseline) == []

    def test_throughput_drop_is_violation(self):
        baseline = self._sim_doc(1e6, 5e5)
        violations = check_regression(self._sim_doc(1e5, 5e5), baseline)
        assert len(violations) == 1
        assert "fast_steps_per_second" in violations[0]
        violations = check_regression(self._sim_doc(1e6, 5e4), baseline)
        assert len(violations) == 2  # fast + legacy headline key
        assert any("simulate_fast_insn_per_second" in v for v in violations)

    def test_missing_sim_metrics_skipped(self):
        # A --no-fastpath run compared against a fastpath baseline (or
        # vice versa) must not trip the guard on absent keys.
        assert check_regression(_doc(0.01), self._sim_doc(1e6, 5e5)) == []
        assert check_regression(self._sim_doc(1e6, 5e5), _doc(0.01)) == []

    def _decode_doc(self, items_per_second, speedup):
        return {
            "programs": {
                "compress": {
                    "encodings": {
                        "nibble": {
                            "compress_seconds": 0.01,
                            "decode_items_per_second": items_per_second,
                            "decode_bulk_speedup": speedup,
                        }
                    },
                }
            }
        }

    def test_decode_throughput_guarded(self):
        baseline = self._decode_doc(1e6, 6.0)
        assert check_regression(self._decode_doc(9e5, 5.5), baseline) == []
        violations = check_regression(self._decode_doc(1e5, 6.0), baseline)
        assert len(violations) == 1
        assert "decode_items_per_second" in violations[0]

    def test_decode_speedup_ratio_guarded(self):
        baseline = self._decode_doc(1e6, 6.0)
        violations = check_regression(self._decode_doc(1e6, 1.5), baseline)
        assert len(violations) == 1
        assert "decode bulk speedup" in violations[0]

    def _columnar_doc(self, items_per_second):
        return {
            "programs": {
                "compress": {
                    "encodings": {
                        "nibble": {
                            "compress_seconds": 0.01,
                            "decode_columnar_items_per_second": items_per_second,
                        }
                    },
                }
            }
        }

    def test_columnar_throughput_guarded(self):
        baseline = self._columnar_doc(1e6)
        assert check_regression(self._columnar_doc(9e5), baseline) == []
        violations = check_regression(self._columnar_doc(1e5), baseline)
        assert len(violations) == 1
        assert "decode_columnar_items_per_second" in violations[0]

    def _control_doc(self, coverage):
        return {
            "programs": {
                "compress": {
                    "simulation": {
                        "fusion_control": {"coverage": coverage},
                    },
                    "encodings": {},
                }
            }
        }

    def test_control_fusion_coverage_guarded(self):
        baseline = self._control_doc(1.0)
        assert check_regression(self._control_doc(0.9), baseline) == []
        violations = check_regression(self._control_doc(0.2), baseline)
        assert len(violations) == 1
        assert "control fusion coverage" in violations[0]


class TestCli:
    def test_smoke(self, small_suite, capsys):
        code = main(
            [
                "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
                "--repeats", "1", "--no-simulate", "--no-write",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "byte-identical everywhere: yes" in printed

    def test_writes_and_guards(self, small_suite, tmp_path, capsys):
        output = tmp_path / "bench.json"
        argv = [
            "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
            "--repeats", "1", "--no-simulate", "--no-ledger",
            "-o", str(output),
        ]
        assert main(argv) == 0
        assert output.exists()
        # Same configuration against its own baseline: within budget.
        assert main(argv + ["--baseline", str(output)]) == 0
        assert "guard: within" in capsys.readouterr().out

    def test_guard_failure_exits_3(self, small_suite, tmp_path, capsys):
        output = tmp_path / "bench.json"
        argv = [
            "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
            "--repeats", "1", "--no-simulate", "--no-ledger",
        ]
        assert main(argv + ["-o", str(output)]) == 0
        document = json.loads(output.read_text())
        for run in document["runs"].values():
            for program in run["programs"].values():
                for enc_doc in program["encodings"].values():
                    enc_doc["compress_seconds"] = 1e-9
        output.write_text(json.dumps(document))
        code = main(argv + ["--no-write", "--baseline", str(output)])
        assert code == 3
        assert "REGRESSION" in capsys.readouterr().err

    def test_simulation_lines_printed(self, small_suite, capsys):
        code = main(
            [
                "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
                "--repeats", "1", "--simulate-steps", "2000", "--no-write",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "simulation fast path:" in printed
        assert "steps/s fast vs" in printed
        assert "insn/s fast vs" in printed

    def test_decode_lines_printed(self, small_suite, capsys):
        code = main(
            [
                "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
                "--repeats", "1", "--simulate-steps", "2000", "--no-write",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "bulk decode:" in printed
        assert "items/s bulk" in printed
        assert "fusion: compress:" in printed

    def test_decode_guard_pass_and_fail(self, small_suite, capsys):
        argv = [
            "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
            "--repeats", "1", "--no-simulate", "--no-write", "--no-ledger",
        ]
        assert main(argv + ["--decode-guard", "0.01"]) == 0
        assert "decode guard: bulk >= 0.01x" in capsys.readouterr().out
        # No machine decodes 10000x faster than itself walks.
        assert main(argv + ["--decode-guard", "10000"]) == 3
        assert "DECODE GUARD" in capsys.readouterr().err

    def test_fusion_guard_pass_and_fail(self, small_suite, capsys):
        argv = [
            "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
            "--repeats", "1", "--simulate-steps", "2000", "--no-write",
            "--no-ledger",
        ]
        assert main(argv + ["--fusion-guard", "0.6"]) == 0
        printed = capsys.readouterr().out
        assert "fusion guard: control coverage >= 60%" in printed
        assert "control fusion: compress:" in printed
        # Coverage cannot exceed 1.0, so a >1 floor must always trip.
        assert main(argv + ["--fusion-guard", "1.5"]) == 3
        assert "FUSION GUARD" in capsys.readouterr().err

    def test_fallback_lines_printed(self, small_suite, capsys):
        code = main(
            [
                "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
                "--repeats", "1", "--no-simulate", "--no-write", "--no-ledger",
            ]
        )
        assert code == 0
        assert "bulk decode fallbacks:" in capsys.readouterr().out

    def test_no_fastpath_flag(self, small_suite, capsys):
        code = main(
            [
                "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
                "--repeats", "1", "--simulate-steps", "2000",
                "--no-fastpath", "--no-write",
            ]
        )
        assert code == 0
        assert "simulation fast path:" not in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["-b", "nonexistent"])

    def test_ledger_dir_flag_feeds_observe_diff(self, small_suite, tmp_path,
                                                capsys):
        """Bench ledger records diff cleanly against the bench JSON."""
        from repro.tools.observe_cli import main as observe_main

        output = tmp_path / "bench.json"
        ledger_dir = tmp_path / "obs"
        code = main([
            "-b", "compress", "--scale", "0.3", "--encodings", "onebyte",
            "--repeats", "1", "--no-simulate", "-o", str(output),
            "--ledger-dir", str(ledger_dir),
        ])
        assert code == 0
        assert f"ledger: {ledger_dir}" in capsys.readouterr().out
        # The same run seen two ways can never be a regression.
        assert observe_main([
            "diff", str(output), str(ledger_dir),
        ]) == 0
        assert "no stage regressions" in capsys.readouterr().out
