"""Load-harness tests: measured service block and its regression guards."""

import pytest

from repro.errors import ReproError
from repro.perf.bench import check_regression
from repro.perf.loadgen import LoadConfig, run_load, submit_and_wait
from repro.server.quotas import QuotaSpec


@pytest.fixture(scope="module")
def closed_loop_block():
    """One small closed-loop run shared by the shape assertions."""
    return run_load(LoadConfig(
        benchmarks=["compress"],
        encodings=["nibble"],
        scale=0.2,
        verify="stream",
        mode="closed",
        jobs=8,
        clients=2,
        tenants=["alpha", "beta"],
        hog_burst=4,
        hog_quota=QuotaSpec(rate=1.0, burst=1),
    ))


class TestClosedLoop:
    def test_every_requested_job_completes(self, closed_loop_block):
        jobs = closed_loop_block["jobs"]
        assert jobs["completed"] == jobs["requested"] == 8
        assert jobs["failed"] == 0

    def test_repeat_submissions_hit_the_warm_cache(self, closed_loop_block):
        cache = closed_loop_block["cache"]
        assert cache["measured_hit_rate"] == 1.0
        assert cache["misses"] == 0

    def test_latency_percentiles_are_measured(self, closed_loop_block):
        latency = closed_loop_block["latency"]
        assert latency["count"] == 8
        assert 0 < latency["p50"] <= latency["p90"] <= latency["p99"]
        assert closed_loop_block["throughput_jobs_per_second"] > 0

    def test_hog_tenant_is_throttled_with_429(self, closed_loop_block):
        hog = closed_loop_block["hog"]
        assert hog["accepted"] == 1  # burst allowance
        assert hog["rejected"] == 3
        assert hog["retry_after_seconds"] >= 1
        assert closed_loop_block["jobs"]["rejected_quota"] >= 3

    def test_no_divergences_and_server_stats_snapshot(self, closed_loop_block):
        assert closed_loop_block["divergences"] == 0
        stats = closed_loop_block["server"]["stats"]
        assert stats["counters"]["quota.rejected"] >= 3
        assert stats["cache"]["shards"] == 4


def test_open_loop_measures_the_arrival_process():
    block = run_load(LoadConfig(
        benchmarks=["compress"],
        encodings=["nibble"],
        scale=0.2,
        verify="none",
        mode="open",
        jobs=5,
        rate=100.0,
        tenants=["alpha"],
        hog_burst=2,
    ))
    assert block["mode"] == "open"
    assert block["rate_per_second"] == 100.0
    assert block["jobs"]["completed"] == 5
    assert block["latency"]["count"] == 5


def test_unknown_mode_rejected():
    with pytest.raises(ReproError, match="unknown load mode"):
        run_load(LoadConfig(mode="sideways"))


def test_no_tenants_rejected():
    with pytest.raises(ReproError, match="at least one tenant"):
        run_load(LoadConfig(tenants=[]))


# ----------------------------------------------------------------------
# Regression guards over the service block.
# ----------------------------------------------------------------------
def service_block(p50=0.004, p99=0.009, throughput=400.0) -> dict:
    return {
        "latency": {"p50": p50, "p90": p50 * 1.5, "p99": p99},
        "throughput_jobs_per_second": throughput,
    }


class TestServiceRegressionGuard:
    def test_clean_run_passes(self):
        current = {"programs": {}, "service": service_block()}
        baseline = {"programs": {}, "service": service_block()}
        assert check_regression(current, baseline) == []

    def test_p99_regression_flagged(self):
        current = {"programs": {}, "service": service_block(p99=0.050)}
        baseline = {"programs": {}, "service": service_block(p99=0.009)}
        violations = check_regression(current, baseline, factor=2.0)
        assert len(violations) == 1
        assert "latency p99" in violations[0]

    def test_p50_regression_flagged(self):
        current = {"programs": {}, "service": service_block(p50=0.040)}
        baseline = {"programs": {}, "service": service_block(p50=0.004)}
        violations = check_regression(current, baseline, factor=2.0)
        assert any("latency p50" in v for v in violations)

    def test_throughput_collapse_flagged(self):
        current = {"programs": {}, "service": service_block(throughput=50.0)}
        baseline = {"programs": {}, "service": service_block(throughput=400.0)}
        violations = check_regression(current, baseline, factor=2.0)
        assert any("throughput" in v for v in violations)

    def test_within_factor_is_not_a_regression(self):
        current = {
            "programs": {},
            "service": service_block(p99=0.016, throughput=250.0),
        }
        baseline = {
            "programs": {},
            "service": service_block(p99=0.009, throughput=400.0),
        }
        assert check_regression(current, baseline, factor=2.0) == []

    def test_missing_service_block_is_skipped(self):
        current = {"programs": {}, "service": service_block()}
        baseline = {"programs": {}}
        assert check_regression(current, baseline) == []
        assert check_regression(baseline, current) == []


class TestRetryAfterHonored:
    """Satellite: the load client treats 429 as back-pressure — honor
    Retry-After (capped), resubmit, and report the retry count."""

    SPEC = {"benchmark": "compress", "encoding": "nibble", "scale": 0.2,
            "verify": "none"}

    def hosted(self, tmp_path, quota: QuotaSpec):
        from repro.perf.loadgen import HostedServer
        from repro.server.app import ServerConfig

        return HostedServer(ServerConfig(
            host="127.0.0.1", port=0, cache_dir=tmp_path / "cache",
            shards=2, concurrency=1, quota=quota,
        ))

    def test_throttle_budget_spent_reports_rejected_with_retry_count(
        self, tmp_path
    ):
        sleeps: list[float] = []
        # rate must be > 0; make refill glacial so fake sleeps never
        # let a token accrue during the test.
        with self.hosted(tmp_path, QuotaSpec(rate=0.001, burst=1)) as server:
            outcome, _, detail = submit_and_wait(
                server.address, self.SPEC, "alpha", sleep=sleeps.append
            )
            assert outcome == "completed"
            outcome, _, detail = submit_and_wait(
                server.address, self.SPEC, "alpha",
                max_throttle_retries=3, sleep=sleeps.append,
            )
        assert outcome == "rejected"
        assert detail["reason"] == "quota"
        assert detail["submit_retries"] == 3
        assert detail["retry_after"] is not None
        # Every honored wait obeyed the header but stayed capped.
        from repro.perf.loadgen import RETRY_AFTER_CAP
        assert len(sleeps) == 3
        assert all(0.0 <= delay <= RETRY_AFTER_CAP for delay in sleeps)

    def test_throttled_submission_eventually_lands(self, tmp_path):
        # A fast-refilling quota: the first submit drains the burst,
        # the second gets 429 and honors (fake) waits while real time
        # refills the bucket between polls.
        with self.hosted(tmp_path, QuotaSpec(rate=200.0, burst=1)) as server:
            first = submit_and_wait(
                server.address, self.SPEC, "alpha", sleep=lambda _: None
            )
            assert first[0] == "completed"
            outcome, _, detail = submit_and_wait(
                server.address, self.SPEC, "alpha",
                max_throttle_retries=200, sleep=lambda _: None,
            )
        assert outcome == "completed"
        assert detail["submit_retries"] >= 0  # reported either way
