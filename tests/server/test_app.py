"""End-to-end server tests over real HTTP.

Drives a :class:`CompressionServer` hosted on its own thread (the same
:class:`~repro.perf.loadgen.HostedServer` the load harness uses) with
stdlib clients: SSE stage events must arrive in span order, over-quota
tenants must get 429 + ``Retry-After``, artifacts must round-trip, and
a restart must resume interrupted ledger jobs.
"""

import pytest

from repro.core.image import CompressedImage
from repro.perf.loadgen import (
    HostedServer,
    _request,
    stream_events,
    submit_and_wait,
)
from repro.server.app import ServerConfig
from repro.server.ledger import JobLedger
from repro.server.quotas import QuotaSpec

SCALE = 0.2
SPEC = {"benchmark": "compress", "encoding": "nibble", "scale": SCALE,
        "verify": "stream"}

#: Pipeline stages every built (non-cache-hit) job streams, in the
#: order they start.
EXPECTED_ORDER = ["compress", "dict_build", "serialize"]


@pytest.fixture(scope="module")
def hosted(tmp_path_factory):
    root = tmp_path_factory.mktemp("server")
    config = ServerConfig(
        host="127.0.0.1",
        port=0,
        cache_dir=root / "cache",
        shards=2,
        concurrency=2,
        quota=QuotaSpec(rate=500.0, burst=1000),
        tenant_quotas={"hog": QuotaSpec(rate=1.0, burst=2)},
    )
    with HostedServer(config) as server:
        yield server


@pytest.fixture(scope="module")
def address(hosted):
    return hosted.address


class TestSubmitAndStream:
    def test_built_job_streams_stages_in_span_order(self, address):
        outcome, _, data = submit_and_wait(address, SPEC, "alpha")
        assert outcome == "completed"
        assert data["cache_hit"] is False

        # Replay the full stream from the start: queued → started →
        # stage* → completed, with stage events in depth-first span
        # (= start) order and strictly increasing seq.
        status, _, submitted = _request(
            address, "POST", "/v1/jobs", body=SPEC, tenant="alpha"
        )
        assert status == 202
        events = stream_events(address, submitted["job_id"], "alpha")
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[1] == "started"
        assert kinds[-1] == "completed"
        assert set(kinds[2:-1]) == {"stage"}
        stages = [e["data"] for e in events if e["kind"] == "stage"]
        seqs = [stage["seq"] for stage in stages]
        assert seqs == sorted(seqs) == list(range(len(stages)))

    def test_cache_hit_streams_single_job_span(self, address):
        submit_and_wait(address, SPEC, "alpha")  # ensure built
        outcome, _, data = submit_and_wait(address, SPEC, "alpha")
        assert outcome == "completed"
        assert data["cache_hit"] is True

        status, _, submitted = _request(
            address, "POST", "/v1/jobs", body=SPEC, tenant="alpha"
        )
        assert status == 202
        events = stream_events(address, submitted["job_id"], "alpha")
        stages = [e["data"] for e in events if e["kind"] == "stage"]
        assert [s["name"] for s in stages] == ["job"]
        assert stages[0]["attrs"]["cache_hit"] is True

    def test_stage_order_matches_span_tree(self, address):
        """A built job streams its pipeline stages in start order."""
        spec = dict(SPEC, max_codewords=77)  # distinct key: never cached
        status, _, submitted = _request(
            address, "POST", "/v1/jobs", body=spec, tenant="alpha"
        )
        assert status == 202
        events = stream_events(address, submitted["job_id"], "alpha")
        names = [
            e["data"]["name"] for e in events if e["kind"] == "stage"
        ]
        assert names[0] == "job"  # the root span opens the stream
        # Pipeline stages appear in execution order under the root.
        for earlier, later in zip(EXPECTED_ORDER, EXPECTED_ORDER[1:]):
            assert names.index(earlier) < names.index(later), names

    def test_sse_reconnect_resumes_after_cursor(self, address):
        _, _, submitted = _request(
            address, "POST", "/v1/jobs", body=SPEC, tenant="alpha"
        )
        job_id = submitted["job_id"]
        full = stream_events(address, job_id, "alpha")
        # A reconnect pointing past the final event id would block, so
        # resume from one before the end and expect exactly the tail.
        _, _, document = _request(address, "GET", f"/v1/jobs/{job_id}")
        total = document["events"]
        tail = stream_events_after(address, job_id, total - 2)
        assert [e["kind"] for e in tail] == [full[-1]["kind"]]

    def test_failed_job_streams_failed_event(self, address):
        bad = {"source": "void main() { undefined_fn(); }",
               "encoding": "nibble", "name": "broken"}
        outcome, _, data = submit_and_wait(address, bad, "alpha")
        assert outcome == "failed"
        assert data["error"]

    def test_unknown_spec_field_is_400(self, address):
        status, _, document = _request(
            address, "POST", "/v1/jobs",
            body={"benchmark": "go", "zip": True}, tenant="alpha",
        )
        assert status == 400
        assert "unknown job fields" in document["error"]


def stream_events_after(address, job_id, after):
    """SSE reconnect with ?after= (the Last-Event-ID query twin)."""
    import http.client
    import json as json_module

    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        conn.request(
            "GET", f"/v1/jobs/{job_id}/events?after={after}",
            headers={"x-repro-tenant": "alpha"},
        )
        response = conn.getresponse()
        assert response.status == 200
        events = []
        kind, data_lines = None, []
        while True:
            line = response.readline()
            if not line:
                break
            text = line.decode().rstrip("\r\n")
            if not text:
                if kind is not None:
                    events.append({
                        "kind": kind,
                        "data": json_module.loads("\n".join(data_lines)),
                    })
                    if kind in ("completed", "failed", "cancelled"):
                        return events
                kind, data_lines = None, []
            elif text.startswith("event:"):
                kind = text[6:].strip()
            elif text.startswith("data:"):
                data_lines.append(text[5:].strip())
        return events
    finally:
        conn.close()


class TestQuota:
    def test_over_quota_tenant_gets_429_with_retry_after(self, address):
        codes = []
        retry_after = None
        reason = None
        for _ in range(5):
            status, headers, document = _request(
                address, "POST", "/v1/jobs", body=SPEC, tenant="hog"
            )
            codes.append(status)
            if status == 429:
                retry_after = headers.get("Retry-After")
                reason = document["reason"]
        assert codes.count(202) == 2  # the burst allowance
        assert codes.count(429) == 3
        assert reason == "quota"
        assert retry_after is not None and int(retry_after) >= 1

    def test_other_tenants_unaffected_by_the_hog(self, address):
        status, _, _ = _request(
            address, "POST", "/v1/jobs", body=SPEC, tenant="beta"
        )
        assert status == 202


class TestArtifact:
    def test_artifact_roundtrips_as_a_loadable_image(self, address):
        outcome, _, _ = submit_and_wait(address, SPEC, "alpha")
        assert outcome == "completed"
        _, _, jobs = _request(address, "GET", "/v1/jobs?tenant=alpha")
        done = [j for j in jobs["jobs"] if j["status"] == "completed"]
        job = done[-1]

        import http.client

        conn = http.client.HTTPConnection(*address, timeout=30)
        try:
            conn.request("GET", f"/v1/jobs/{job['job_id']}/artifact")
            response = conn.getresponse()
            blob = response.read()
            assert response.status == 200
            assert response.getheader("X-Repro-Content-Key") == job["key"]
            assert response.getheader("Content-Type") == (
                "application/octet-stream"
            )
        finally:
            conn.close()
        image = CompressedImage.from_bytes(blob)
        assert image.to_bytes() == blob

    def test_artifact_of_failed_job_is_409(self, address):
        bad = {"source": "void main() { undefined_fn(); }",
               "encoding": "nibble", "name": "broken409"}
        _, _, submitted = _request(
            address, "POST", "/v1/jobs", body=bad, tenant="alpha"
        )
        stream_events(address, submitted["job_id"], "alpha")  # wait: failed
        status, _, document = _request(
            address, "GET", f"/v1/jobs/{submitted['job_id']}/artifact"
        )
        assert status == 409
        assert "artifact not ready" in document["error"]

    def test_unknown_job_is_404(self, address):
        status, _, _ = _request(address, "GET", "/v1/jobs/job-nope")
        assert status == 404


class TestIntrospection:
    def test_healthz(self, address):
        status, _, document = _request(address, "GET", "/healthz")
        assert status == 200
        assert document["status"] == "ok"

    def test_stats_document_shape(self, address):
        status, _, stats = _request(address, "GET", "/v1/stats")
        assert status == 200
        assert stats["jobs"].get("completed", 0) >= 1
        assert "p99" in stats["job_wall"]
        assert stats["cache"]["shards"] == 2
        assert len(stats["cache"]["shard_sizes"]) == 2
        assert stats["counters"]["quota.rejected"] >= 3

    def test_prometheus_exposition(self, address):
        import http.client

        conn = http.client.HTTPConnection(*address, timeout=30)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            text = response.read().decode()
            assert response.status == 200
            assert "text/plain" in response.getheader("Content-Type")
        finally:
            conn.close()
        assert "jobs_completed" in text.replace(".", "_")


class TestResumeAfterRestart:
    def test_interrupted_ledger_jobs_are_requeued_and_finished(self, tmp_path):
        state_dir = tmp_path / "state"
        # A previous server accepted this job but never finished it
        # (SIGKILL before "completed" landed in the state store).
        ledger = JobLedger(state_dir, shards=2)
        ledger.record(
            "job-interrupted", "submitted",
            tenant="alpha", key="", spec=dict(SPEC),
        )
        ledger.record("job-interrupted", "started")
        ledger.close()

        config = ServerConfig(
            host="127.0.0.1", port=0,
            cache_dir=tmp_path / "cache", state_dir=state_dir,
            shards=2, concurrency=1,
        )
        with HostedServer(config) as hosted:
            assert hosted.server.resumed_jobs == 1
            events = stream_events(
                hosted.address, "job-interrupted", "alpha"
            )
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "queued"
        assert events[0]["data"]["resumed"] is True
        assert kinds[-1] == "completed"
        # The drain compacted the ledger; replay shows the job done.
        reopened = JobLedger(state_dir)
        record = reopened.replay()["job-interrupted"]
        assert record.status == "completed"
        reopened.close()
