"""HTTP layer tests: strict parser, responses, SSE framing, router."""

import asyncio
import json

import pytest

from repro.server.http import (
    HttpError,
    error_response,
    read_request,
    response,
    response_head,
    sse_head,
)
from repro.server.routes import Router, build_router, handle_events
from repro.server.sse import format_event, parse_stream, span_events


def parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestRequestParser:
    def test_get_with_query(self):
        request = parse(
            b"GET /v1/jobs?tenant=alpha&after=3 HTTP/1.1\r\n"
            b"Host: localhost\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/v1/jobs"
        assert request.query == {"tenant": "alpha", "after": "3"}

    def test_post_with_json_body(self):
        body = json.dumps({"benchmark": "go"}).encode()
        request = parse(
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.json() == {"benchmark": "go"}

    def test_headers_are_case_insensitive(self):
        request = parse(
            b"GET / HTTP/1.1\r\nX-Repro-Tenant: alpha\r\n\r\n"
        )
        assert request.header("x-repro-tenant") == "alpha"
        assert request.header("X-REPRO-TENANT") == "alpha"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_request_line_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET /hea")
        assert excinfo.value.status == 400

    def test_malformed_request_line_rejected(self):
        with pytest.raises(HttpError, match="malformed request line"):
            parse(b"GET\r\n\r\n")

    def test_unsupported_protocol_rejected(self):
        with pytest.raises(HttpError, match="unsupported protocol"):
            parse(b"GET / HTTP/2\r\n\r\n")

    def test_bad_content_length_rejected(self):
        with pytest.raises(HttpError, match="bad Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: soon\r\n\r\n")

    def test_oversized_body_rejected_with_413(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body=10,
            )
        assert excinfo.value.status == 413

    def test_short_body_rejected(self):
        with pytest.raises(HttpError, match="shorter than Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_chunked_bodies_rejected(self):
        with pytest.raises(HttpError, match="chunked"):
            parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )

    def test_non_object_json_body_rejected(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n[1,2]"
        )
        with pytest.raises(HttpError, match="JSON object"):
            request.json()

    def test_invalid_json_body_rejected(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n{nope"
        )
        with pytest.raises(HttpError, match="not valid JSON"):
            request.json()


class TestResponses:
    def test_json_response_shape(self):
        raw = response(200, {"status": "ok"})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert b"Connection: close" in head
        assert json.loads(body) == {"status": "ok"}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_extra_headers_carried(self):
        raw = response(
            429, {"error": "x"}, extra_headers={"Retry-After": "3"}
        )
        assert b"HTTP/1.1 429 Too Many Requests" in raw
        assert b"Retry-After: 3" in raw

    def test_error_response_body_names_status(self):
        raw = error_response(404, "no such job")
        body = json.loads(raw.partition(b"\r\n\r\n")[2])
        assert body == {"error": "no such job", "status": 404}

    def test_sse_head_opens_event_stream(self):
        head = sse_head()
        assert b"Content-Type: text/event-stream" in head
        assert b"Cache-Control: no-store" in head
        assert b"Content-Length" not in head  # stream, not fixed body

    def test_unknown_status_still_renders(self):
        assert response_head(599).startswith(b"HTTP/1.1 599 Unknown")


class TestSse:
    def test_format_parse_roundtrip(self):
        frames = (
            format_event("queued", {"job_id": "j", "position": 0}, 0)
            + format_event("completed", {"job_id": "j"}, 1)
        )
        events = parse_stream(frames)
        assert [e["kind"] for e in events] == ["queued", "completed"]
        assert [e["id"] for e in events] == [0, 1]
        assert events[0]["data"]["position"] == 0

    def test_span_events_are_depth_first_preorder(self):
        tree = {
            "name": "job",
            "duration_us": 90,
            "attrs": {"cache_hit": False},
            "children": [
                {"name": "compile", "duration_us": 40, "attrs": {},
                 "children": [
                     {"name": "link", "duration_us": 10, "attrs": {},
                      "children": []},
                 ]},
                {"name": "compress", "duration_us": 50, "attrs": {},
                 "children": []},
            ],
        }
        events = span_events("job-1", [tree])
        names = [e["data"]["name"] for e in events]
        assert names == ["job", "compile", "link", "compress"]
        assert [e["data"]["seq"] for e in events] == [0, 1, 2, 3]
        assert all(e["data"]["job_id"] == "job-1" for e in events)
        assert events[0]["data"]["attrs"] == {"cache_hit": False}


class TestRouter:
    def test_resolves_params(self):
        router = Router()

        async def handler(server, request, params):
            return b""

        router.add("GET", "/v1/jobs/{job_id}/events", handler)
        resolved, params = router.resolve("GET", "/v1/jobs/job-abc/events")
        assert resolved is handler
        assert params == {"job_id": "job-abc"}

    def test_unknown_path_is_404(self):
        with pytest.raises(HttpError) as excinfo:
            build_router().resolve("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405_naming_allowed(self):
        with pytest.raises(HttpError) as excinfo:
            build_router().resolve("DELETE", "/v1/jobs")
        assert excinfo.value.status == 405
        assert "GET" in str(excinfo.value)
        assert "POST" in str(excinfo.value)

    def test_full_router_covers_the_documented_surface(self):
        router = build_router()
        handler, _ = router.resolve("GET", "/v1/jobs/j-1/events")
        assert handler is handle_events
        for method, path in [
            ("GET", "/healthz"),
            ("GET", "/v1/stats"),
            ("GET", "/metrics"),
            ("POST", "/v1/jobs"),
            ("GET", "/v1/jobs"),
            ("GET", "/v1/jobs/x"),
            ("GET", "/v1/jobs/x/artifact"),
        ]:
            router.resolve(method, path)  # must not raise
