"""Job-ledger tests: manifest/state split, replay, resume, compaction."""

import json

import pytest

from repro.errors import ServiceError
from repro.server.ledger import JobLedger, make_job_id
from repro.service.jobs import PIPELINE_VERSION


@pytest.fixture()
def ledger(tmp_path):
    ledger = JobLedger(tmp_path / "state", shards=4)
    yield ledger
    ledger.close()


class TestManifest:
    def test_written_once_on_creation(self, ledger):
        manifest = json.loads(ledger.manifest_path.read_text())
        assert manifest["schema"] == 1
        assert manifest["pipeline_version"] == PIPELINE_VERSION
        assert manifest["shards"] == 4

    def test_reopen_accepts_matching_manifest(self, ledger, tmp_path):
        ledger.record("job-1", "submitted", tenant="t", key="k", spec={})
        ledger.close()
        reopened = JobLedger(tmp_path / "state")
        assert reopened.manifest["shards"] == 4  # original value kept
        reopened.close()

    def test_wrong_schema_refused(self, tmp_path):
        directory = tmp_path / "state"
        directory.mkdir()
        (directory / "manifest.json").write_text(
            json.dumps({"schema": 99, "pipeline_version": PIPELINE_VERSION})
        )
        with pytest.raises(ServiceError, match="unsupported ledger schema"):
            JobLedger(directory)

    def test_wrong_pipeline_version_refused(self, tmp_path):
        directory = tmp_path / "state"
        directory.mkdir()
        (directory / "manifest.json").write_text(
            json.dumps({"schema": 1, "pipeline_version": -1})
        )
        with pytest.raises(ServiceError, match="pipeline"):
            JobLedger(directory)


class TestReplay:
    def test_folds_lifecycle_into_one_record(self, ledger):
        ledger.record(
            "job-a", "submitted",
            tenant="alpha", key="aa" * 32, spec={"benchmark": "go"},
        )
        ledger.record("job-a", "started")
        ledger.record(
            "job-a", "completed", cache_hit=True, meta={"bytes": 9},
        )
        records = ledger.replay()
        record = records["job-a"]
        assert record.status == "completed"
        assert record.terminal
        assert record.tenant == "alpha"
        assert record.spec == {"benchmark": "go"}
        assert record.cache_hit is True
        assert record.meta == {"bytes": 9}
        assert record.attempts == 1

    def test_failed_record_keeps_error(self, ledger):
        ledger.record("job-b", "submitted", tenant="t", key="k", spec={})
        ledger.record("job-b", "started")
        ledger.record("job-b", "failed", error="CompileError: nope")
        record = ledger.replay()["job-b"]
        assert record.status == "failed"
        assert record.error == "CompileError: nope"

    def test_attempts_count_restarts(self, ledger):
        ledger.record("job-c", "submitted", spec={})
        ledger.record("job-c", "started")
        ledger.record("job-c", "started")
        assert ledger.replay()["job-c"].attempts == 2

    def test_torn_final_line_tolerated(self, ledger):
        ledger.record("job-d", "submitted", tenant="t", key="k", spec={})
        ledger.close()
        with ledger.state_path.open("a") as handle:
            handle.write('{"job_id": "job-e", "event": "subm')  # SIGKILL
        records = ledger.replay()
        assert set(records) == {"job-d"}

    def test_unknown_event_rejected(self, ledger):
        with pytest.raises(ServiceError, match="unknown ledger event"):
            ledger.record("job-x", "exploded")


class TestResume:
    def test_non_terminal_jobs_are_resumable_oldest_first(self, ledger):
        ledger.record("job-old", "submitted", spec={"benchmark": "go"})
        ledger.record("job-done", "submitted", spec={})
        ledger.record("job-done", "started")
        ledger.record("job-done", "completed")
        ledger.record("job-young", "submitted", spec={"benchmark": "li"})
        ledger.record("job-young", "started")  # interrupted mid-run
        resumable = ledger.resumable()
        assert [r.job_id for r in resumable] == ["job-old", "job-young"]
        assert all(not r.terminal for r in resumable)

    def test_cancelled_jobs_are_not_resumed(self, ledger):
        ledger.record("job-z", "submitted", spec={})
        ledger.record("job-z", "cancelled", reason="drain")
        assert ledger.resumable() == []


class TestCompaction:
    def test_compact_preserves_replay_and_shrinks_log(self, ledger):
        for index in range(5):
            job_id = f"job-{index}"
            ledger.record(job_id, "submitted", tenant="t", key="k",
                          spec={"benchmark": "go"})
            ledger.record(job_id, "started")
            ledger.record(job_id, "completed", cache_hit=False, meta={})
        before = ledger.replay()
        kept = ledger.compact()
        assert kept == 5
        lines = ledger.state_path.read_text().splitlines()
        assert len(lines) == 5  # one snapshot per job, 15 lines before
        assert all(json.loads(line)["event"] == "snapshot" for line in lines)
        after = ledger.replay()
        assert {k: v.as_dict() for k, v in after.items()} == {
            k: v.as_dict() for k, v in before.items()
        }

    def test_appends_work_after_compaction(self, ledger):
        ledger.record("job-1", "submitted", spec={})
        ledger.compact()
        ledger.record("job-2", "submitted", spec={"benchmark": "li"})
        records = ledger.replay()
        assert set(records) == {"job-1", "job-2"}

    def test_interrupted_jobs_survive_compaction(self, ledger):
        ledger.record("job-run", "submitted", spec={"benchmark": "go"})
        ledger.record("job-run", "started")
        ledger.compact()
        resumable = ledger.resumable()
        assert [r.job_id for r in resumable] == ["job-run"]
        assert resumable[0].spec == {"benchmark": "go"}


def test_make_job_id_is_unique_and_prefixed():
    ids = {make_job_id() for _ in range(100)}
    assert len(ids) == 100
    assert all(job_id.startswith("job-") for job_id in ids)


class TestTornTailRecovery:
    def tear(self, ledger, fragment='{"job_id": "job-torn", "event": "subm'):
        """Append a torn, newline-less fragment — a kill -9 mid-append."""
        ledger.close()
        with ledger.state_path.open("a") as handle:
            handle.write(fragment)

    def test_recover_moves_the_tail_into_quarantine(self, ledger):
        ledger.record("job-ok", "submitted", tenant="t", key="k", spec={})
        self.tear(ledger)
        moved = ledger.recover()
        assert moved == len('{"job_id": "job-torn", "event": "subm')
        assert ledger.recovered_bytes == moved
        assert ledger.quarantine_path.read_text() == (
            '{"job_id": "job-torn", "event": "subm'
        )
        # The state store is back to a clean newline-terminated prefix.
        raw = ledger.state_path.read_bytes()
        assert raw.endswith(b"\n")
        assert set(ledger.replay()) == {"job-ok"}

    def test_recover_is_idempotent(self, ledger):
        ledger.record("job-ok", "submitted", spec={})
        self.tear(ledger)
        assert ledger.recover() > 0
        assert ledger.recover() == 0

    def test_append_after_tear_does_not_concatenate(self, ledger):
        """The historical failure mode: a naive append lands on the torn
        fragment and corrupts TWO records.  record() must recover first."""
        ledger.record("job-a", "submitted", tenant="t", key="k", spec={})
        self.tear(ledger)
        # record() on the reopened handle runs recovery before appending.
        ledger._handle = None
        ledger.record("job-b", "submitted", tenant="t", key="k2", spec={})
        records = ledger.replay()
        assert set(records) == {"job-a", "job-b"}
        assert ledger.quarantine_path.exists()

    def test_mid_file_corruption_quarantines_the_suffix(self, ledger):
        ledger.record("job-keep", "submitted", spec={})
        ledger.close()
        with ledger.state_path.open("a") as handle:
            handle.write("NOT JSON AT ALL\n")
            handle.write('{"job_id": "job-after", "event": "submitted"}\n')
        moved = ledger.recover()
        # Everything from the first bad line onward is evidence, not
        # state — replaying records past a corrupt line risks replaying
        # records the corruption may have damaged.
        assert moved == len("NOT JSON AT ALL\n") + len(
            '{"job_id": "job-after", "event": "submitted"}\n'
        )
        assert set(ledger.replay()) == {"job-keep"}

    def test_clean_store_recovers_zero(self, ledger):
        ledger.record("job-a", "submitted", spec={})
        assert ledger.recover() == 0
        assert not ledger.quarantine_path.exists()
