"""Token-bucket quota and admission-control tests (injected clock)."""

import pytest

from repro.server.quotas import (
    AdmissionController,
    Decision,
    QuotaSpec,
    TokenBucket,
    parse_quota,
    parse_tenant_quota,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaSpec(rate=2.0, burst=3), clock=clock)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True] * 3
        acquired, retry_after = bucket.try_acquire()
        assert not acquired
        # One whole token at 2 tokens/sec is half a second away.
        assert retry_after == pytest.approx(0.5)

    def test_refill_is_continuous(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaSpec(rate=2.0, burst=2), clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        clock.advance(0.25)  # half a token: still not enough
        assert bucket.try_acquire() == (False, pytest.approx(0.25))
        clock.advance(0.25)  # now a full token has accrued
        assert bucket.try_acquire()[0]

    def test_tokens_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaSpec(rate=100.0, burst=5), clock=clock)
        clock.advance(3600)
        assert bucket.tokens == 5.0

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            QuotaSpec(rate=0.0, burst=1)
        with pytest.raises(ValueError, match="burst"):
            QuotaSpec(rate=1.0, burst=0)


class TestAdmissionController:
    def controller(self, clock, **kwargs) -> AdmissionController:
        defaults = dict(
            default_quota=QuotaSpec(rate=1.0, burst=2),
            max_queue_depth=4,
            clock=clock,
        )
        defaults.update(kwargs)
        return AdmissionController(**defaults)

    def test_quota_refusal_names_the_tenant(self):
        clock = FakeClock()
        admission = self.controller(clock)
        assert admission.admit("alpha", 0).admitted
        assert admission.admit("alpha", 0).admitted
        decision = admission.admit("alpha", 0)
        assert not decision.admitted
        assert decision.reason == "quota"
        assert decision.tenant == "alpha"
        assert decision.retry_after == pytest.approx(1.0)

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        admission = self.controller(clock)
        for _ in range(2):
            admission.admit("noisy", 0)
        assert not admission.admit("noisy", 0).admitted
        assert admission.admit("quiet", 0).admitted

    def test_tenant_quota_override(self):
        clock = FakeClock()
        admission = self.controller(
            clock, tenant_quotas={"hog": QuotaSpec(rate=1.0, burst=1)}
        )
        assert admission.admit("hog", 0).admitted
        assert not admission.admit("hog", 0).admitted
        # Default-quota tenants still have their full burst of 2.
        assert admission.admit("other", 0).admitted
        assert admission.admit("other", 0).admitted

    def test_queue_gate_trumps_quota(self):
        clock = FakeClock()
        admission = self.controller(clock)
        decision = admission.admit("alpha", queue_depth=4)
        assert not decision.admitted
        assert decision.reason == "queue_full"
        # No token was spent on the refused submission.
        assert admission.bucket("alpha").tokens == 2.0

    def test_queue_retry_after_tracks_service_rate(self):
        clock = FakeClock()
        admission = self.controller(clock)
        decision = admission.admit("alpha", queue_depth=8, service_rate=2.0)
        assert decision.retry_after == pytest.approx(4.0)
        capped = admission.admit("alpha", queue_depth=1000, service_rate=0.5)
        assert capped.retry_after == 60.0  # honest but bounded

    def test_retry_after_header_rounds_up_to_at_least_one(self):
        assert Decision(False, retry_after=0.2).retry_after_header == "1"
        assert Decision(False, retry_after=1.2).retry_after_header == "2"


class TestParsers:
    def test_parse_quota_rate_only_defaults_burst(self):
        spec = parse_quota("20")
        assert (spec.rate, spec.burst) == (20.0, 20)

    def test_parse_quota_rate_and_burst(self):
        spec = parse_quota("2.5:7")
        assert (spec.rate, spec.burst) == (2.5, 7)

    def test_parse_quota_malformed(self):
        with pytest.raises(ValueError, match="malformed quota"):
            parse_quota("fast")

    def test_parse_tenant_quota(self):
        tenant, spec = parse_tenant_quota("hog=1:2")
        assert tenant == "hog"
        assert (spec.rate, spec.burst) == (1.0, 2)

    def test_parse_tenant_quota_requires_equals(self):
        with pytest.raises(ValueError, match="malformed tenant quota"):
            parse_tenant_quota("hog:1:2")


class TestRefillOverSimulatedTime:
    """Satellite: refill behavior at the drain/refill boundary and with
    fractional rates, all over an injected clock."""

    def test_burst_drain_refill_boundary(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaSpec(rate=4.0, burst=3), clock=clock)
        for _ in range(3):
            assert bucket.try_acquire()[0]
        acquired, retry_after = bucket.try_acquire()
        assert not acquired
        # Advance to a hair *before* the boundary: still refused.
        clock.advance(retry_after - 1e-9)
        assert not bucket.try_acquire()[0]
        # At the boundary exactly one token has accrued.
        clock.advance(1e-9)
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]  # and only one

    def test_fractional_rate_refills_slowly(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaSpec(rate=0.5, burst=1), clock=clock)
        assert bucket.try_acquire()[0]
        acquired, retry_after = bucket.try_acquire()
        assert not acquired
        assert retry_after == pytest.approx(2.0)  # one token at 0.5/s
        clock.advance(1.0)
        assert not bucket.try_acquire()[0]
        clock.advance(1.0)
        assert bucket.try_acquire()[0]

    def test_repeated_drain_refill_cycles_do_not_drift(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaSpec(rate=2.0, burst=2), clock=clock)
        for _ in range(5):
            assert bucket.try_acquire()[0]
            assert bucket.try_acquire()[0]
            assert not bucket.try_acquire()[0]
            clock.advance(1.0)  # exactly a full burst (2 tokens at 2/s)

    def test_fractional_cost_accrual(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaSpec(rate=1.0, burst=2), clock=clock)
        assert bucket.try_acquire(cost=1.5)[0]
        acquired, retry_after = bucket.try_acquire(cost=1.5)
        assert not acquired
        assert retry_after == pytest.approx(1.0)  # 0.5 left, need 1.5
        clock.advance(1.0)
        assert bucket.try_acquire(cost=1.5)[0]

    def test_refill_never_overshoots_burst_after_long_idle(self):
        clock = FakeClock()
        bucket = TokenBucket(QuotaSpec(rate=0.25, burst=4), clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()[0]
        clock.advance(10_000.0)
        assert bucket.tokens == 4.0
        for _ in range(4):
            assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
