"""Server resilience tests: read deadline, job retry, rederivation.

These drive a real :class:`HostedServer` with targeted faults — a
stub worker-plane schedule, a raw dribbling socket, a deleted cache
file — and assert the defence mechanisms fire: 408 on slow requests,
transparent retry of crashed attempts, honest terminal failure when
the attempt budget is spent, and artifact recomputation after cache
loss.
"""

import socket

import pytest

from repro.perf.loadgen import HostedServer, _request, submit_and_wait
from repro.server.app import ServerConfig
from repro.server.quotas import QuotaSpec

SPEC = {"benchmark": "compress", "encoding": "nibble", "scale": 0.2,
        "verify": "stream"}


class WorkerFaultStub:
    """A schedule-shaped stub that kills the first ``kills`` attempts
    on the worker plane and injects nothing anywhere else."""

    hang_seconds = 0.1
    stall_seconds = 0.0
    slow_start_seconds = 0.0

    def __init__(self, kills: int) -> None:
        self.kills = kills

    def decide(self, plane: str, site: str, op: str) -> str | None:
        if plane == "worker" and self.kills > 0:
            self.kills -= 1
            return "kill"
        return None


def hosted_config(tmp_path, **overrides) -> ServerConfig:
    defaults = dict(
        host="127.0.0.1", port=0, cache_dir=tmp_path / "cache",
        shards=2, concurrency=1, quota=QuotaSpec(rate=500.0, burst=1000),
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestReadDeadline:
    def test_dribbling_request_gets_408(self, tmp_path):
        config = hosted_config(tmp_path, read_timeout=0.3)
        with HostedServer(config) as hosted:
            with socket.create_connection(hosted.address, timeout=10) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\n")  # never finishes
                sock.settimeout(10)
                data = sock.recv(4096)
            assert data.startswith(b"HTTP/1.1 408")
            status, _, _ = _request(hosted.address, "GET", "/v1/stats")
            assert status == 200  # the server itself is unharmed

    def test_prompt_requests_are_unaffected(self, tmp_path):
        config = hosted_config(tmp_path, read_timeout=0.3)
        with HostedServer(config) as hosted:
            status, _, document = _request(hosted.address, "GET", "/healthz")
            assert status == 200
            assert document["status"] == "ok"


class TestWorkerRetry:
    def test_crashed_attempt_is_retried_to_completion(self, tmp_path):
        config = hosted_config(
            tmp_path, chaos=WorkerFaultStub(kills=1), job_attempts=3,
        )
        with HostedServer(config) as hosted:
            outcome, _, data = submit_and_wait(hosted.address, SPEC, "alpha")
            assert outcome == "completed"
            status, _, submitted = _request(
                hosted.address, "POST", "/v1/jobs", body=SPEC, tenant="alpha"
            )
            assert status == 202
            stats = _request(hosted.address, "GET", "/v1/stats")[2]
            assert stats["counters"]["jobs.retried"] == 1

    def test_retrying_event_is_streamed(self, tmp_path):
        from repro.perf.loadgen import stream_events

        config = hosted_config(
            tmp_path, chaos=WorkerFaultStub(kills=1), job_attempts=3,
        )
        with HostedServer(config) as hosted:
            status, _, submitted = _request(
                hosted.address, "POST", "/v1/jobs", body=SPEC, tenant="alpha"
            )
            assert status == 202
            events = stream_events(
                hosted.address, submitted["job_id"], "alpha"
            )
            kinds = [e["kind"] for e in events]
            assert "retrying" in kinds
            assert kinds[-1] == "completed"
            assert kinds.count("started") == 2  # attempt 1 died, 2 won

    def test_exhausted_attempts_fail_honestly(self, tmp_path):
        config = hosted_config(
            tmp_path, chaos=WorkerFaultStub(kills=99), job_attempts=2,
        )
        with HostedServer(config) as hosted:
            outcome, _, data = submit_and_wait(hosted.address, SPEC, "alpha")
            assert outcome == "failed"
            assert "chaos" in data["error"]
            stats = _request(hosted.address, "GET", "/v1/stats")[2]
            assert stats["jobs"]["failed"] == 1


def fetch_artifact(address, job_id: str) -> tuple[int, bytes]:
    import http.client

    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        conn.request("GET", f"/v1/jobs/{job_id}/artifact")
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestArtifactRederivation:
    def test_evicted_artifact_is_recomputed_not_404(self, tmp_path):
        from repro.perf.loadgen import stream_events

        config = hosted_config(tmp_path)
        with HostedServer(config) as hosted:
            status, _, submitted = _request(
                hosted.address, "POST", "/v1/jobs", body=SPEC, tenant="alpha"
            )
            assert status == 202
            job_id = submitted["job_id"]
            stream_events(hosted.address, job_id, "alpha")
            first_status, first_blob = fetch_artifact(hosted.address, job_id)
            assert first_status == 200
            # Vaporise the artifact behind the server's back: memory
            # fronts and disk files both.
            hosted.server.cache.clear()
            second_status, second_blob = fetch_artifact(hosted.address, job_id)
            assert second_status == 200
            assert second_blob == first_blob  # byte-identical recomputation
            stats = _request(hosted.address, "GET", "/v1/stats")[2]
            assert stats["counters"]["cache.rederived"] == 1
