"""Shard routing, balance over real content keys, and layout migration."""

import json

import pytest

from repro.errors import ServiceError
from repro.server.sharding import (
    LAYOUT_FILENAME,
    ShardedArtifactCache,
    migrate_layout,
    read_layout,
    shard_index,
    shard_name,
)
from repro.service.cache import ArtifactCache
from repro.service.jobs import CompressionJob
from repro.workloads import BENCHMARK_NAMES


def corpus_keys(count: int = 512) -> list[str]:
    """Real content keys: the golden corpus swept over job parameters.

    ``content_key`` hashes the job configuration, so varying
    ``max_codewords`` yields distinct genuine keys without compiling.
    """
    keys = []
    index = 0
    while len(keys) < count:
        for name in BENCHMARK_NAMES:
            for encoding in ("baseline", "onebyte", "nibble"):
                keys.append(CompressionJob(
                    benchmark=name,
                    encoding=encoding,
                    max_codewords=64 + index,
                ).content_key())
                if len(keys) == count:
                    return keys
        index += 1
    return keys


class TestShardIndex:
    def test_deterministic_and_in_range(self):
        for key in corpus_keys(32):
            index = shard_index(key, 4)
            assert 0 <= index < 4
            assert shard_index(key, 4) == index

    def test_single_shard_routes_everything_to_zero(self):
        assert {shard_index(key, 1) for key in corpus_keys(16)} == {0}

    def test_malformed_key_rejected(self):
        with pytest.raises(ServiceError, match="malformed content key"):
            shard_index("not-hex!", 4)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ServiceError, match="shard count"):
            shard_index("ab" * 32, 0)

    def test_balance_over_golden_corpus(self):
        """Chi-squared balance: SHA-256 prefixes spread evenly.

        With 512 keys over 4 shards the expected count is 128 per
        shard; the chi-squared statistic (df=3) stays far below the
        p=0.001 critical value 16.27 for a uniform route.  The corpus
        is deterministic, so this is a fixed property, not a flake.
        """
        keys = corpus_keys(512)
        shards = 4
        counts = [0] * shards
        for key in keys:
            counts[shard_index(key, shards)] += 1
        expected = len(keys) / shards
        chi_squared = sum(
            (count - expected) ** 2 / expected for count in counts
        )
        assert sum(counts) == len(keys)
        assert chi_squared < 16.27, f"unbalanced shards {counts}"


def seed_unsharded(root, count: int = 12) -> list[str]:
    """Write ``count`` entries in the legacy single-store layout."""
    cache = ArtifactCache(root)
    keys = corpus_keys(count)
    for position, key in enumerate(keys):
        cache.put(key, b"blob-%d" % position, {"position": position})
    return keys


class TestMigration:
    def test_unsharded_to_sharded_moves_every_artifact(self, tmp_path):
        keys = seed_unsharded(tmp_path)
        report = migrate_layout(tmp_path, 4)
        assert report.from_shards is None
        assert report.to_shards == 4
        assert report.moved == len(keys)
        layout = read_layout(tmp_path)
        assert layout == {"version": 1, "shards": 4}
        for key in keys:
            expected = (
                tmp_path / shard_name(shard_index(key, 4))
                / key[:2] / f"{key}.rcc"
            )
            assert expected.is_file()

    def test_legacy_buckets_pruned(self, tmp_path):
        seed_unsharded(tmp_path)
        migrate_layout(tmp_path, 4)
        leftovers = [d for d in tmp_path.glob("[0-9a-f][0-9a-f]") if d.is_dir()]
        assert leftovers == []

    def test_idempotent(self, tmp_path):
        seed_unsharded(tmp_path)
        migrate_layout(tmp_path, 4)
        again = migrate_layout(tmp_path, 4)
        assert again.moved == 0
        assert not again.migrated

    def test_reshard_to_different_count(self, tmp_path):
        keys = seed_unsharded(tmp_path)
        migrate_layout(tmp_path, 4)
        report = migrate_layout(tmp_path, 2)
        assert report.from_shards == 4
        assert report.to_shards == 2
        assert read_layout(tmp_path)["shards"] == 2
        cache = ShardedArtifactCache(tmp_path, 2)
        for key in keys:
            assert cache.get(key) is not None

    def test_unsupported_layout_version_refused(self, tmp_path):
        (tmp_path / LAYOUT_FILENAME).write_text(
            json.dumps({"version": 99, "shards": 4})
        )
        with pytest.raises(ServiceError, match="unsupported layout version"):
            migrate_layout(tmp_path, 4)


class TestShardedArtifactCache:
    def test_open_migrates_and_entries_stay_warm(self, tmp_path):
        keys = seed_unsharded(tmp_path)
        cache = ShardedArtifactCache(tmp_path, 4)
        assert cache.migration.moved == len(keys)
        for position, key in enumerate(keys):
            entry = cache.get(key)
            assert entry is not None
            assert entry.blob == b"blob-%d" % position
            assert entry.meta["position"] == position

    def test_put_get_roundtrip_and_routing(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, 3)
        keys = corpus_keys(9)
        for key in keys:
            cache.put(key, b"payload", {"key": key})
        assert len(cache) == len(keys)
        for key in keys:
            shard_dir = tmp_path / shard_name(cache.shard_of(key))
            assert (shard_dir / key[:2] / f"{key}.rcc").is_file()
            assert key in cache

    def test_stats_aggregate_across_shards(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, 2)
        keys = corpus_keys(6)
        for key in keys:
            cache.put(key, b"x")
        for key in keys:
            cache.get(key)
        cache.get("ff" * 32)  # guaranteed miss
        assert cache.stats.stores == len(keys)
        assert cache.stats.hits == len(keys)
        assert cache.stats.misses == 1

    def test_shard_sizes_sum_to_len(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, 4)
        for key in corpus_keys(10):
            cache.put(key, b"x")
        assert sum(cache.shard_sizes()) == len(cache) == 10

    def test_clear(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, 2)
        for key in corpus_keys(4):
            cache.put(key, b"x")
        cache.clear()
        assert len(cache) == 0
