"""Graceful SIGTERM/SIGINT shutdown, tested via real subprocesses.

Both CLIs must drain on SIGTERM — in-flight work finishes, queued work
is cancelled or compacted into the ledger — and exit 0.
"""

import http.client
import json
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def spawn(args: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


class LineReader:
    """Background reader so waiting for output can time out cleanly."""

    def __init__(self, proc: subprocess.Popen) -> None:
        self.lines: "queue.Queue[str | None]" = queue.Queue()
        self.seen: list[str] = []
        self._thread = threading.Thread(target=self._pump, args=(proc,),
                                        daemon=True)
        self._thread.start()

    def _pump(self, proc) -> None:
        for line in proc.stdout:
            self.lines.put(line)
        self.lines.put(None)

    def wait_for(self, needle: str, timeout: float = 60.0) -> str:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise AssertionError(
                    f"{needle!r} not seen within {timeout}s; "
                    f"output so far: {''.join(self.seen)!r}"
                )
            try:
                line = self.lines.get(timeout=remaining)
            except queue.Empty:
                continue
            if line is None:
                raise AssertionError(
                    f"process exited before {needle!r}; "
                    f"output: {''.join(self.seen)!r}"
                )
            self.seen.append(line)
            if needle in line:
                return line

    def drain(self) -> str:
        while True:
            try:
                line = self.lines.get(timeout=0.1)
            except queue.Empty:
                return "".join(self.seen)
            if line is None:
                return "".join(self.seen)
            self.seen.append(line)


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_repro_server_drains_and_exits_zero(tmp_path, signum):
    proc = spawn([
        "repro.tools.server_cli",
        "--port", "0",
        "--cache-dir", str(tmp_path / "cache"),
        "--concurrency", "1",
    ])
    reader = LineReader(proc)
    try:
        line = reader.wait_for("repro-server listening on http://")
        url = line.split("listening on ", 1)[1].split()[0]
        host, port = url.removeprefix("http://").split(":")

        # One accepted job, so the drain has something to finish.
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        body = json.dumps({
            "benchmark": "compress", "encoding": "nibble",
            "scale": 0.2, "verify": "none",
        })
        conn.request("POST", "/v1/jobs", body, {
            "Content-Type": "application/json",
            "X-Repro-Tenant": "alpha",
        })
        response = conn.getresponse()
        submitted = json.loads(response.read())
        conn.close()
        assert response.status == 202

        proc.send_signal(signum)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    output = reader.drain()
    assert "drained:" in output
    assert "1 completed" in output

    # The drain compacted the state store: snapshot lines only, and the
    # accepted job reached a terminal state before the process exited.
    state = (tmp_path / "cache" / "state" / "state.jsonl").read_text()
    lines = [json.loads(raw) for raw in state.splitlines() if raw.strip()]
    assert lines, "state store is empty after drain"
    assert all(line["event"] == "snapshot" for line in lines)
    by_id = {line["job_id"]: line["record"] for line in lines}
    assert by_id[submitted["job_id"]]["status"] == "completed"


def test_repro_serve_drains_and_exits_zero(tmp_path):
    proc = spawn([
        "repro.tools.serve_cli",
        "--suite", "--scale", "0.4", "--processes", "1", "--repeat", "2",
        "--cache-dir", str(tmp_path / "cache"),
    ])
    reader = LineReader(proc)
    try:
        # Let the first jobs start, then ask for the drain mid-batch.
        reader.wait_for("=== pass 1/2 ===")
        time.sleep(1.0)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=120) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    output = reader.drain()
    assert "draining in-flight jobs" in output
    assert "drained gracefully" in output
