"""Distributed-tracing tests over real HTTP.

One W3C trace id must survive the whole journey: client submit →
server admission → worker execution → SSE events → the server's
observe ledger — including across throttle retries and an SSE
reconnect mid-job.
"""

import http.client
import json

import pytest

from repro import observe
from repro.perf.loadgen import HostedServer, _request, submit_and_wait
from repro.server.app import ServerConfig
from repro.server.quotas import QuotaSpec
from repro.server.routes import TRACEPARENT_HEADER

SPEC = {"benchmark": "compress", "encoding": "nibble", "scale": 0.2,
        "verify": "stream"}


@pytest.fixture(scope="module")
def observe_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("observe")


@pytest.fixture(scope="module")
def hosted(tmp_path_factory, observe_dir):
    root = tmp_path_factory.mktemp("server")
    config = ServerConfig(
        host="127.0.0.1",
        port=0,
        cache_dir=root / "cache",
        shards=2,
        concurrency=2,
        quota=QuotaSpec(rate=500.0, burst=1000),
        observe_dir=observe_dir,
    )
    with HostedServer(config) as server:
        yield server


@pytest.fixture(scope="module")
def address(hosted):
    return hosted.address


def stream_raw_events(address, job_id, *, last_event_id=None, stop_after=None):
    """SSE client that keeps frame ids; optionally resumes/stops early."""
    headers = {"x-repro-tenant": "alpha"}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    conn = http.client.HTTPConnection(*address, timeout=30)
    events = []
    try:
        conn.request(
            "GET", f"/v1/jobs/{job_id}/events", headers=headers
        )
        response = conn.getresponse()
        assert response.status == 200
        kind, event_id, data_lines = None, None, []
        while True:
            line = response.readline()
            if not line:
                break
            text = line.decode().rstrip("\r\n")
            if not text:
                if kind is not None:
                    events.append({
                        "kind": kind,
                        "id": int(event_id),
                        "data": json.loads("\n".join(data_lines) or "{}"),
                    })
                    if kind in ("completed", "failed", "cancelled"):
                        return events
                    if stop_after is not None and len(events) >= stop_after:
                        return events  # simulate a dropped connection
                kind, event_id, data_lines = None, None, []
            elif text.startswith("event:"):
                kind = text[6:].strip()
            elif text.startswith("id:"):
                event_id = text[3:].strip()
            elif text.startswith("data:"):
                data_lines.append(text[5:].strip())
        return events
    finally:
        conn.close()


class TestTraceparentAdmission:
    def test_client_traceparent_wins(self, address):
        trace_id = observe.make_trace_id()
        traceparent = observe.format_traceparent(
            trace_id, observe.make_span_id()
        )
        status, _, document = _request(
            address, "POST", "/v1/jobs", body=SPEC, tenant="alpha",
            extra_headers={TRACEPARENT_HEADER: traceparent},
        )
        assert status == 202
        assert document["trace_id"] == trace_id
        _, _, job = _request(address, "GET", f"/v1/jobs/{document['job_id']}")
        assert job["trace_id"] == trace_id

    def test_server_mints_without_header(self, address):
        status, _, document = _request(
            address, "POST", "/v1/jobs", body=SPEC, tenant="alpha"
        )
        assert status == 202
        parsed = observe.parse_traceparent(observe.format_traceparent(
            document["trace_id"], observe.make_span_id()
        ))
        assert parsed is not None and parsed[0] == document["trace_id"]

    def test_garbage_traceparent_is_replaced_not_propagated(self, address):
        status, _, document = _request(
            address, "POST", "/v1/jobs", body=SPEC, tenant="alpha",
            extra_headers={TRACEPARENT_HEADER: "zz-not-a-traceparent"},
        )
        assert status == 202
        assert len(document["trace_id"]) == 32
        int(document["trace_id"], 16)  # valid hex, freshly minted

    def test_resubmission_with_same_traceparent_same_trace(self, address):
        traceparent = observe.format_traceparent(
            observe.make_trace_id(), observe.make_span_id()
        )
        ids = set()
        for _ in range(2):  # the client retry loop reuses its header
            status, _, document = _request(
                address, "POST", "/v1/jobs", body=SPEC, tenant="alpha",
                extra_headers={TRACEPARENT_HEADER: traceparent},
            )
            assert status == 202
            ids.add(document["trace_id"])
        assert len(ids) == 1


class TestTraceThroughExecution:
    def test_one_trace_id_from_submit_to_ledger(self, address, observe_dir):
        trace_id = observe.make_trace_id()
        traceparent = observe.format_traceparent(
            trace_id, observe.make_span_id()
        )
        status, _, document = _request(
            address, "POST", "/v1/jobs", body=SPEC, tenant="alpha",
            extra_headers={TRACEPARENT_HEADER: traceparent},
        )
        assert status == 202
        events = stream_raw_events(address, document["job_id"])
        assert events[-1]["kind"] == "completed"
        # Both lifecycle events carry the submitted trace id.
        assert events[0]["data"]["trace_id"] == trace_id
        assert events[-1]["data"]["trace_id"] == trace_id

        records = [
            record
            for record in observe.read_ledger(
                observe.RunLedger(observe_dir).path
            )
            if record["trace_id"] == trace_id
        ]
        assert records, "server.job ledger record missing for the trace"
        record = records[-1]
        assert record["kind"] == "server.job"
        assert record["meta"]["process"] == "server"
        # The recorded spans are parented under the client trace too.
        roots = [span for span in record["spans"]]
        assert roots and all(
            span.get("trace_id") == trace_id for span in roots
        )

    def test_loadgen_submit_and_wait_reports_trace_id(self, address):
        outcome, _, detail = submit_and_wait(address, SPEC, "alpha")
        assert outcome == "completed"
        assert len(detail["trace_id"]) == 32


class TestSseResumeUnderTracing:
    def test_resume_mid_job_no_duplicates_same_trace(self, address):
        """Satellite: Last-Event-ID resume mid-job under tracing.

        Disconnect after the first frame while the job is (potentially)
        still running, reconnect with ``Last-Event-ID``, and require
        the stitched stream to be duplicate-free, in-order, and on one
        trace id throughout.
        """
        trace_id = observe.make_trace_id()
        traceparent = observe.format_traceparent(
            trace_id, observe.make_span_id()
        )
        # A fresh spec variant defeats both the artifact cache and
        # dedup, so the stream has start/stage frames to resume across.
        spec = dict(SPEC, scale=0.21)
        status, _, document = _request(
            address, "POST", "/v1/jobs", body=spec, tenant="alpha",
            extra_headers={TRACEPARENT_HEADER: traceparent},
        )
        assert status == 202
        job_id = document["job_id"]

        head = stream_raw_events(address, job_id, stop_after=1)
        assert head and head[0]["kind"] == "queued"
        tail = stream_raw_events(
            address, job_id, last_event_id=head[-1]["id"]
        )
        assert tail and tail[-1]["kind"] == "completed"

        stitched = head + tail
        ids = [event["id"] for event in stitched]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids)), "resume replayed a frame"
        assert ids == list(range(len(ids))), "resume skipped a frame"
        kinds = [event["kind"] for event in stitched]
        assert kinds[0] == "queued" and kinds[-1] == "completed"
        traced = [
            event["data"]["trace_id"]
            for event in stitched
            if "trace_id" in event["data"]
        ]
        assert traced and set(traced) == {trace_id}
