"""Artifact cache tests: envelope integrity, LRU, eviction."""

import os

import pytest

from repro.service import ArtifactCache, CacheCorruptionError
from repro.service.cache import WriteHealth, decode_entry, encode_entry
from repro.service.fsio import Filesystem


def entry_blob(tag: bytes, size: int = 64) -> bytes:
    return tag * size


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("ab" * 32, entry_blob(b"x"), {"original_bytes": 99})
        entry = cache.get("ab" * 32)
        assert entry is not None
        assert entry.blob == entry_blob(b"x")
        assert entry.meta == {"original_bytes": 99}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("00" * 32) is None
        assert cache.stats.misses == 1

    def test_survives_process_boundary(self, tmp_path):
        # A second cache instance over the same root sees the entry.
        ArtifactCache(tmp_path).put("cd" * 32, entry_blob(b"y"), {})
        fresh = ArtifactCache(tmp_path)
        entry = fresh.get("cd" * 32)
        assert entry is not None and entry.blob == entry_blob(b"y")

    def test_contains_and_len(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("ef" * 32, entry_blob(b"z"), {})
        assert "ef" * 32 in cache
        assert "00" * 32 not in cache
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestIntegrity:
    def test_envelope_roundtrip(self):
        raw = encode_entry(b"blob", {"k": 1})
        entry = decode_entry("k1", raw)
        assert entry.blob == b"blob" and entry.meta == {"k": 1}

    @pytest.mark.parametrize("position", [0, 10, 40, 60])
    def test_bit_flip_detected(self, position):
        raw = bytearray(encode_entry(b"blob-data-blob", {"k": 1}))
        raw[position % len(raw)] ^= 0x40
        with pytest.raises(CacheCorruptionError):
            decode_entry("k1", bytes(raw))

    def test_truncation_detected(self):
        raw = encode_entry(b"blob-data-blob", {})
        with pytest.raises(CacheCorruptionError):
            decode_entry("k1", raw[: len(raw) - 3])

    def test_corrupt_file_quarantined_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path, memory_entries=0)
        key = "aa" * 32
        cache.put(key, entry_blob(b"q"), {})
        path = cache._path(key)
        path.write_bytes(b"RCC1" + b"\x00" * 50)
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1
        assert not path.exists()  # bad file removed so a rebuild can land


class TestLruFront:
    def test_memory_front_serves_without_disk(self, tmp_path):
        cache = ArtifactCache(tmp_path, memory_entries=4)
        key = "bb" * 32
        cache.put(key, entry_blob(b"m"), {})
        cache._path(key).unlink()  # disk copy gone; memory front answers
        assert cache.get(key) is not None

    def test_memory_front_is_bounded(self, tmp_path):
        cache = ArtifactCache(tmp_path, memory_entries=2)
        for index in range(4):
            cache.put(f"{index:02d}" * 32, entry_blob(b"n"), {})
        assert len(cache._memory) == 2


class TestEviction:
    def test_size_budget_evicts_least_recently_used(self, tmp_path):
        blob = entry_blob(b"e", 256)
        entry_size = len(encode_entry(blob, {}))
        cache = ArtifactCache(
            tmp_path, max_disk_bytes=entry_size * 2, memory_entries=0
        )
        keys = [f"{index:02d}" * 32 for index in range(3)]
        for position, key in enumerate(keys):
            cache.put(key, blob, {})
            # Widen mtime spacing so LRU ordering is unambiguous.
            os.utime(cache._path(key), (position, position))
        cache.put("ff" * 32, blob, {})
        assert cache.stats.evictions >= 1
        assert cache.get(keys[0]) is None  # oldest went first
        assert cache.get("ff" * 32) is not None  # newest kept

    def test_no_budget_never_evicts(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for index in range(5):
            cache.put(f"{index:02d}" * 32, entry_blob(b"w"), {})
        assert cache.stats.evictions == 0
        assert len(cache) == 5


class TestConcurrentWriters:
    """Regression: concurrent writers + eviction must never crash.

    Before the lock-free last-writer-wins audit, a process could crash
    in ``get`` (``os.utime`` on a file another process just evicted) or
    in ``_evict_to_budget`` (``stat`` on a vanished path).  Eight
    processes hammering a single key with a budget tight enough to
    force constant eviction exercises every such window.
    """

    N_PROCESSES = 8
    ROUNDS = 40

    @staticmethod
    def _hammer(root: str, worker: int) -> None:
        import sys

        from repro.service.cache import ArtifactCache

        blob = bytes([worker]) * 512
        cache = ArtifactCache(root, max_disk_bytes=600, memory_entries=0)
        key = "aa" * 32
        spoiler = f"{worker:02d}" * 32
        for round_number in range(TestConcurrentWriters.ROUNDS):
            cache.put(key, blob, {"worker": worker, "round": round_number})
            entry = cache.get(key)
            # Last writer wins: the entry may be any worker's, but it
            # must always be a complete, integrity-checked envelope.
            if entry is not None and len(entry.blob) != 512:
                sys.exit(3)
            # Churn a second key so the budget forces evictions.
            cache.put(spoiler, blob, {})
            cache.get(spoiler)
        sys.exit(0)

    def test_eight_processes_one_key(self, tmp_path):
        import multiprocessing

        context = multiprocessing.get_context()
        workers = [
            context.Process(
                target=self._hammer, args=(str(tmp_path), worker), daemon=True
            )
            for worker in range(self.N_PROCESSES)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=120)
            assert not process.is_alive(), "hammer worker hung"
            assert process.exitcode == 0, (
                f"worker crashed with exit code {process.exitcode}"
            )
        # The surviving entry is whole and decodes cleanly.
        survivor = ArtifactCache(tmp_path).get("aa" * 32)
        if survivor is not None:
            assert len(survivor.blob) == 512


class TestDegradedReadOnly:
    """Consecutive store failures flip the cache read-only; a cooldown
    half-opens it with one probe store."""

    class Clock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    class BrokenDiskFs(Filesystem):
        """Every atomic write fails like a full disk."""

        def __init__(self):
            self.attempts = 0
            self.broken = True

        def write_atomic(self, path, data):
            self.attempts += 1
            if self.broken:
                raise OSError(28, "chaos: injected enospc", str(path))
            super().write_atomic(path, data)

    def degraded_cache(self, tmp_path):
        clock = self.Clock()
        fs = self.BrokenDiskFs()
        cache = ArtifactCache(
            tmp_path, fs=fs,
            write_health=WriteHealth(threshold=3, cooldown=30.0, clock=clock),
        )
        return cache, fs, clock

    def test_store_failures_trip_read_only_mode(self, tmp_path):
        cache, fs, _ = self.degraded_cache(tmp_path)
        for i in range(3):
            assert not cache.read_only
            cache.put(f"{i:02d}" * 32, b"blob", {})
        assert cache.read_only
        assert cache.stats.write_errors == 3

    def test_degraded_puts_skip_disk_but_serve_from_memory(self, tmp_path):
        cache, fs, _ = self.degraded_cache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" * 32, b"blob", {})
        attempts_when_tripped = fs.attempts
        key = "aa" * 32
        entry = cache.put(key, b"payload", {"kept": True})
        assert entry.blob == b"payload"
        assert fs.attempts == attempts_when_tripped  # disk untouched
        assert cache.stats.skipped_stores == 1
        assert cache.get(key).blob == b"payload"  # memory front serves it

    def test_cooldown_probe_recovers_the_disk(self, tmp_path):
        cache, fs, clock = self.degraded_cache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" * 32, b"blob", {})
        assert cache.read_only
        clock.now += 31.0  # past the cooldown: half-open
        fs.broken = False  # the disk came back
        assert not cache.read_only  # the probe window
        cache.put("bb" * 32, b"recovered", {})
        assert cache.stats.stores == 1
        assert not cache.read_only
        # The entry actually landed on disk this time.
        cache._memory.clear()
        assert cache.get("bb" * 32).blob == b"recovered"

    def test_failed_probe_retrips_immediately(self, tmp_path):
        cache, fs, clock = self.degraded_cache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" * 32, b"blob", {})
        clock.now += 31.0
        cache.put("cc" * 32, b"probe", {})  # probe fails: disk still broken
        assert cache.read_only
        assert cache.stats.write_errors == 4
