"""CompressionJob spec and content-key derivation tests."""

import pytest

from repro.errors import ServiceError
from repro.service import CompressionJob

SOURCE_A = """
void main() { print_int(7); print_nl(); }
"""
SOURCE_B = """
void main() { print_int(8); print_nl(); }
"""


class TestValidation:
    def test_exactly_one_input_required(self):
        with pytest.raises(ServiceError, match="exactly one"):
            CompressionJob()
        with pytest.raises(ServiceError, match="exactly one"):
            CompressionJob(benchmark="ijpeg", source=SOURCE_A)

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ServiceError, match="encoding"):
            CompressionJob(benchmark="ijpeg", encoding="zstd")

    def test_bad_entry_len_rejected(self):
        with pytest.raises(ServiceError, match="max_entry_len"):
            CompressionJob(benchmark="ijpeg", max_entry_len=0)


class TestContentKey:
    def test_deterministic(self):
        a = CompressionJob(benchmark="ijpeg", scale=0.3)
        b = CompressionJob(benchmark="ijpeg", scale=0.3)
        assert a.content_key() == b.content_key()

    def test_varies_with_every_encoding_parameter(self):
        base = CompressionJob(source=SOURCE_A)
        keys = {
            base.content_key(),
            CompressionJob(source=SOURCE_A, encoding="baseline").content_key(),
            CompressionJob(source=SOURCE_A, max_codewords=64).content_key(),
            CompressionJob(source=SOURCE_A, max_entry_len=2).content_key(),
            CompressionJob(source=SOURCE_B).content_key(),
        }
        assert len(keys) == 5

    def test_varies_with_benchmark_and_scale(self):
        keys = {
            CompressionJob(benchmark="ijpeg", scale=0.3).content_key(),
            CompressionJob(benchmark="ijpeg", scale=0.4).content_key(),
            CompressionJob(benchmark="li", scale=0.3).content_key(),
        }
        assert len(keys) == 3

    def test_verify_flag_shares_artifacts(self):
        verified = CompressionJob(source=SOURCE_A, verify=True)
        unverified = CompressionJob(source=SOURCE_A, verify=False)
        assert verified.content_key() == unverified.content_key()

    def test_program_jobs_key_on_content(self, tiny_program):
        a = CompressionJob(program=tiny_program)
        b = CompressionJob(program=tiny_program, name="renamed")
        assert a.content_key() == b.content_key()
        assert a.content_key() != CompressionJob(source=SOURCE_A).content_key()


class TestExecution:
    def test_run_produces_verified_image(self, tiny_program):
        job = CompressionJob(program=tiny_program, encoding="nibble")
        compressed, image = job.run()
        assert image.total_bytes == compressed.compressed_bytes
        assert image.encoding_name == "nibble"

    def test_label(self, tiny_program):
        assert CompressionJob(benchmark="go").label == "go"
        assert CompressionJob(source=SOURCE_A, name="fw").label == "fw"
        assert CompressionJob(program=tiny_program).label == "tiny"
