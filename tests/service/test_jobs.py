"""CompressionJob spec and content-key derivation tests."""

import pytest

from repro.errors import ServiceError
from repro.service import CompressionJob

SOURCE_A = """
void main() { print_int(7); print_nl(); }
"""
SOURCE_B = """
void main() { print_int(8); print_nl(); }
"""


class TestValidation:
    def test_exactly_one_input_required(self):
        with pytest.raises(ServiceError, match="exactly one"):
            CompressionJob()
        with pytest.raises(ServiceError, match="exactly one"):
            CompressionJob(benchmark="ijpeg", source=SOURCE_A)

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ServiceError, match="encoding"):
            CompressionJob(benchmark="ijpeg", encoding="zstd")

    def test_bad_entry_len_rejected(self):
        with pytest.raises(ServiceError, match="max_entry_len"):
            CompressionJob(benchmark="ijpeg", max_entry_len=0)

    def test_unknown_verify_level_rejected(self):
        with pytest.raises(ServiceError, match="verify level"):
            CompressionJob(benchmark="ijpeg", verify="paranoid")

    def test_verify_level_normalization(self):
        assert CompressionJob(benchmark="ijpeg").verify_level == "stream"
        assert CompressionJob(benchmark="ijpeg",
                              verify=False).verify_level == "none"
        assert CompressionJob(benchmark="ijpeg",
                              verify="full").verify_level == "full"


class TestContentKey:
    def test_deterministic(self):
        a = CompressionJob(benchmark="ijpeg", scale=0.3)
        b = CompressionJob(benchmark="ijpeg", scale=0.3)
        assert a.content_key() == b.content_key()

    def test_varies_with_every_encoding_parameter(self):
        base = CompressionJob(source=SOURCE_A)
        keys = {
            base.content_key(),
            CompressionJob(source=SOURCE_A, encoding="baseline").content_key(),
            CompressionJob(source=SOURCE_A, max_codewords=64).content_key(),
            CompressionJob(source=SOURCE_A, max_entry_len=2).content_key(),
            CompressionJob(source=SOURCE_B).content_key(),
        }
        assert len(keys) == 5

    def test_varies_with_benchmark_and_scale(self):
        keys = {
            CompressionJob(benchmark="ijpeg", scale=0.3).content_key(),
            CompressionJob(benchmark="ijpeg", scale=0.4).content_key(),
            CompressionJob(benchmark="li", scale=0.3).content_key(),
        }
        assert len(keys) == 3

    def test_verify_flag_shares_artifacts(self):
        verified = CompressionJob(source=SOURCE_A, verify=True)
        unverified = CompressionJob(source=SOURCE_A, verify=False)
        full = CompressionJob(source=SOURCE_A, verify="full")
        assert verified.content_key() == unverified.content_key()
        assert verified.content_key() == full.content_key()

    def test_program_jobs_key_on_content(self, tiny_program):
        a = CompressionJob(program=tiny_program)
        b = CompressionJob(program=tiny_program, name="renamed")
        assert a.content_key() == b.content_key()
        assert a.content_key() != CompressionJob(source=SOURCE_A).content_key()


class TestExecution:
    def test_run_produces_verified_image(self, tiny_program):
        job = CompressionJob(program=tiny_program, encoding="nibble")
        compressed, image = job.run()
        assert image.total_bytes == compressed.compressed_bytes
        assert image.encoding_name == "nibble"

    def test_full_verification_passes_for_clean_program(self, tiny_program):
        job = CompressionJob(program=tiny_program, encoding="nibble",
                             verify="full")
        compressed, image = job.run()
        assert image.encoding_name == "nibble"

    def test_full_verification_catches_a_broken_pipeline(self, tiny_program,
                                                         monkeypatch):
        from repro.core.dictionary import DictionaryEntry
        from repro.errors import VerificationError
        from repro.service import jobs as jobs_module

        real_compress = jobs_module.compress

        def sabotaged(*args, **kwargs):
            compressed = real_compress(*args, **kwargs)
            # Corrupt a dictionary entry after the stream check would
            # have passed: only the deep verifiers can see this.
            entries = compressed.dictionary.entries
            first = entries[0]
            words = (first.words[0] ^ 1,) + first.words[1:]
            entries[0] = DictionaryEntry(words, first.uses)
            return compressed

        monkeypatch.setattr(jobs_module, "compress", sabotaged)
        job = CompressionJob(program=tiny_program, encoding="nibble",
                             verify="full")
        with pytest.raises(VerificationError):
            job.run()

    def test_label(self, tiny_program):
        assert CompressionJob(benchmark="go").label == "go"
        assert CompressionJob(source=SOURCE_A, name="fw").label == "fw"
        assert CompressionJob(program=tiny_program).label == "tiny"
