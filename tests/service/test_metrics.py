"""Metrics registry tests: instruments, merge, stage hook."""

import pytest

from repro import observe
from repro.service import MetricsRegistry


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(4)
        assert registry.counter("jobs").value == 5
        with pytest.raises(ValueError):
            registry.counter("jobs").inc(-1)

    def test_timer(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        timer.observe(0.25)
        timer.observe(0.75)
        assert timer.count == 2
        assert timer.total_seconds == pytest.approx(1.0)
        assert timer.mean_seconds == pytest.approx(0.5)

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        with registry.timer("cm").time():
            pass
        assert registry.timer("cm").count == 1

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert histogram.total == 4
        assert histogram.sum == pytest.approx(106.4)


class TestSerialization:
    def test_as_dict_merge_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("jobs.completed").inc(3)
        worker.timer("stage.compile").observe(1.5)
        worker.histogram("job.seconds", bounds=(1.0,)).observe(0.5)

        parent = MetricsRegistry()
        parent.counter("jobs.completed").inc(1)
        parent.merge(worker.as_dict())
        parent.merge(worker.as_dict())
        assert parent.counter("jobs.completed").value == 7
        assert parent.timer("stage.compile").count == 2
        assert parent.timer("stage.compile").total_seconds == pytest.approx(3.0)
        assert parent.histogram("job.seconds", bounds=(1.0,)).total == 2

    def test_report_names_everything(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(2)
        registry.timer("job.wall").observe(0.1)
        registry.histogram("job.seconds").observe(0.01)
        report = registry.report()
        for text in ("cache.hits", "job.wall", "job.seconds"):
            assert text in report

    def test_empty_report(self):
        assert "no metrics" in MetricsRegistry().report()


class TestStageHook:
    def test_install_routes_observe_stages(self):
        registry = MetricsRegistry()
        with registry.installed():
            with observe.stage("compile"):
                pass
        assert registry.timer("stage.compile").count == 1
        # Uninstalled: subsequent stages are not recorded.
        with observe.stage("compile"):
            pass
        assert registry.timer("stage.compile").count == 1

    def test_install_restores_previous_callback(self):
        seen = []
        previous = observe.set_stage_callback(
            lambda name, seconds: seen.append(name)
        )
        try:
            registry = MetricsRegistry()
            with registry.installed():
                pass
            with observe.stage("after"):
                pass
            assert seen == ["after"]
        finally:
            observe.set_stage_callback(previous)

    def test_library_default_is_noop(self):
        assert observe.get_stage_callback() is None
        with observe.stage("anything"):
            pass  # must not raise, must not record
