"""Metrics registry tests: instruments, merge, stage hook."""

import threading

import pytest

from repro import observe
from repro.service import MetricsRegistry
from repro.service.metrics import TIMER_SAMPLE_CAP


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(4)
        assert registry.counter("jobs").value == 5
        with pytest.raises(ValueError):
            registry.counter("jobs").inc(-1)

    def test_timer(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        timer.observe(0.25)
        timer.observe(0.75)
        assert timer.count == 2
        assert timer.total_seconds == pytest.approx(1.0)
        assert timer.mean_seconds == pytest.approx(0.5)

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        with registry.timer("cm").time():
            pass
        assert registry.timer("cm").count == 1

    def test_timer_percentiles(self):
        timer = MetricsRegistry().timer("t")
        for index in range(1, 101):
            timer.observe(index / 1000.0)
        p = timer.percentiles()
        assert p["p50"] == pytest.approx(0.050, abs=0.002)
        assert p["p90"] == pytest.approx(0.090, abs=0.002)
        assert p["p99"] == pytest.approx(0.099, abs=0.002)
        assert p["count"] == 100
        assert MetricsRegistry().timer("empty").percentiles() == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "count": 0,
        }

    def test_timer_percentiles_clamp_to_observed_on_small_reservoirs(self):
        timer = MetricsRegistry().timer("t")
        timer.observe(0.1)
        timer.observe(0.9)
        p = timer.percentiles()
        # Nearest-rank never extrapolates past the max observed value,
        # and p50 of two samples is the *first*, not a midpoint.
        assert p["p50"] == pytest.approx(0.1)
        assert p["p90"] == pytest.approx(0.9)
        assert p["p99"] == pytest.approx(0.9)
        assert p["count"] == 2
        single = MetricsRegistry().timer("one")
        single.observe(0.25)
        quantiles = single.percentiles()
        assert quantiles["p50"] == quantiles["p99"] == pytest.approx(0.25)
        assert quantiles["count"] == 1

    def test_timer_reservoir_stays_bounded(self):
        timer = MetricsRegistry().timer("t")
        for index in range(10 * TIMER_SAMPLE_CAP):
            timer.observe(index / 1000.0)
        assert timer.count == 10 * TIMER_SAMPLE_CAP
        assert len(timer.samples) <= TIMER_SAMPLE_CAP
        # Decimation keeps covering the whole history, so the median
        # still lands mid-range instead of in the most recent window.
        assert timer.percentile(50) == pytest.approx(
            timer.count / 2 / 1000.0, rel=0.1
        )

    def test_merge_carries_samples(self):
        worker = MetricsRegistry()
        for value in (0.01, 0.02, 0.03):
            worker.timer("stage.compile").observe(value)
        parent = MetricsRegistry()
        parent.merge(worker.as_dict())
        assert parent.timer("stage.compile").percentile(50) == pytest.approx(
            0.02
        )

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert histogram.total == 4
        assert histogram.sum == pytest.approx(106.4)


class TestSerialization:
    def test_as_dict_merge_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("jobs.completed").inc(3)
        worker.timer("stage.compile").observe(1.5)
        worker.histogram("job.seconds", bounds=(1.0,)).observe(0.5)

        parent = MetricsRegistry()
        parent.counter("jobs.completed").inc(1)
        parent.merge(worker.as_dict())
        parent.merge(worker.as_dict())
        assert parent.counter("jobs.completed").value == 7
        assert parent.timer("stage.compile").count == 2
        assert parent.timer("stage.compile").total_seconds == pytest.approx(3.0)
        assert parent.histogram("job.seconds", bounds=(1.0,)).total == 2

    def test_report_names_everything(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(2)
        registry.timer("job.wall").observe(0.1)
        registry.histogram("job.seconds").observe(0.01)
        report = registry.report()
        for text in ("cache.hits", "job.wall", "job.seconds"):
            assert text in report

    def test_empty_report(self):
        assert "no metrics" in MetricsRegistry().report()


class TestStageHook:
    def test_install_routes_observe_stages(self):
        registry = MetricsRegistry()
        with registry.installed():
            with observe.stage("compile"):
                pass
        assert registry.timer("stage.compile").count == 1
        # Uninstalled: subsequent stages are not recorded.
        with observe.stage("compile"):
            pass
        assert registry.timer("stage.compile").count == 1

    def test_install_restores_previous_callback(self):
        seen = []
        previous = observe.set_stage_callback(
            lambda name, seconds: seen.append(name)
        )
        try:
            registry = MetricsRegistry()
            with registry.installed():
                pass
            with observe.stage("after"):
                pass
            assert seen == ["after"]
        finally:
            observe.set_stage_callback(previous)

    def test_library_default_is_noop(self):
        assert observe.get_stage_callback() is None
        with observe.stage("anything"):
            pass  # must not raise, must not record

    def test_report_shows_percentiles(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            registry.timer("stage.compile").observe(value)
        report = registry.report()
        assert "p50/p90/p99" in report
        assert "200.00/300.00/300.00ms" in report


class TestConcurrentInstall:
    """Regression: concurrent installs used to steal the stage callback.

    The registry that installed last hijacked every observation and the
    first registry silently dropped the rest of its run.  Recorders
    compose, so each installed registry now sees every run started in
    its own scope, completely.
    """

    def test_two_installs_same_context_both_complete(self):
        first = MetricsRegistry()
        second = MetricsRegistry()
        with first.installed():
            with observe.stage("compile"):
                pass
            with second.installed():
                with observe.stage("compile"):
                    pass
                observe.metric("cache.hits", 2)
            # Second uninstalled: only the first keeps observing.
            with observe.stage("compile"):
                pass
        assert first.timer("stage.compile").count == 3
        assert second.timer("stage.compile").count == 1
        assert first.counter("cache.hits").value == 2
        assert second.counter("cache.hits").value == 2

    def test_threaded_installs_disjoint_and_lossless(self):
        registries = {}
        barrier = threading.Barrier(2)
        errors = []

        def work(key, stage_count):
            try:
                registry = MetricsRegistry()
                registries[key] = registry
                with registry.installed():
                    barrier.wait(timeout=30)
                    for _ in range(stage_count):
                        with observe.stage(f"work-{key}"):
                            pass
                        observe.metric(f"count-{key}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=("a", 40)),
            threading.Thread(target=work, args=("b", 60)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Lossless: every observation landed in its own registry...
        assert registries["a"].timer("stage.work-a").count == 40
        assert registries["b"].timer("stage.work-b").count == 60
        assert registries["a"].counter("count-a").value == 40
        assert registries["b"].counter("count-b").value == 60
        # ...and nothing leaked across scopes.
        assert registries["a"].timer("stage.work-b").count == 0
        assert registries["b"].timer("stage.work-a").count == 0
        assert registries["a"].counter("count-b").value == 0
        assert registries["b"].counter("count-a").value == 0
