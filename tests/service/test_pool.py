"""Worker-pool tests: parity, caching, failure, crash retry, timeout.

The crash/timeout tests monkeypatch :func:`repro.service.pool.execute_job`
in the parent; the fork start method propagates the patch into workers.
They are skipped on platforms whose default start method is not fork.
"""

import multiprocessing
import os
import time

import pytest

from repro.service import ArtifactCache, CompressionJob, MetricsRegistry
from repro.service import pool as pool_module
from repro.service.pool import run_batch

SOURCE = """
int table[16];
void main() {
    int i;
    for (i = 0; i < 16; i = i + 1) { table[i] = i * 7; }
    print_int(sum_i(table, 16));
    print_nl();
}
"""

BAD_SOURCE = "void main() { this is not minic; }"

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash-injection tests need the fork start method",
)


def jobs_for(encodings=("baseline", "nibble")):
    return [
        CompressionJob(source=SOURCE, encoding=encoding, name="t")
        for encoding in encodings
    ]


class TestInline:
    def test_results_in_input_order(self):
        results = run_batch(jobs_for(("nibble", "baseline", "onebyte")))
        assert [r.job.encoding for r in results] == [
            "nibble", "baseline", "onebyte",
        ]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_job_failure_reported_not_raised(self):
        registry = MetricsRegistry()
        results = run_batch(
            [CompressionJob(source=BAD_SOURCE)], metrics=registry
        )
        assert not results[0].ok
        assert "CompileError" in results[0].error
        assert registry.counter("jobs.failed").value == 1

    def test_metrics_aggregated(self):
        registry = MetricsRegistry()
        run_batch(jobs_for(), metrics=registry)
        assert registry.counter("jobs.completed").value == 2
        assert registry.timer("stage.dict_build").count == 2
        assert registry.counter("bytes.saved").value > 0


class TestCaching:
    def test_second_pass_hits_and_is_bit_identical(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = run_batch(jobs_for(), cache=cache)
        warm = run_batch(jobs_for(), cache=cache)
        assert all(not r.cache_hit for r in cold)
        assert all(r.cache_hit for r in warm)
        for before, after in zip(cold, warm):
            assert before.blob == after.blob
            assert before.meta == after.meta
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_cached_image_round_trips(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_batch(jobs_for(("nibble",)), cache=cache)
        (warm,) = run_batch(jobs_for(("nibble",)), cache=cache)
        image = warm.image()
        assert image.encoding_name == "nibble"
        assert image.total_bytes == warm.meta["compressed_bytes"]


class TestParallel:
    def test_pool_matches_inline_bit_for_bit(self, tmp_path):
        inline = run_batch(jobs_for(("baseline", "onebyte", "nibble")))
        cache = ArtifactCache(tmp_path)
        pooled = run_batch(
            jobs_for(("baseline", "onebyte", "nibble")),
            cache=cache, processes=2,
        )
        for a, b in zip(inline, pooled):
            assert a.ok and b.ok
            assert a.blob == b.blob
        # Warm pass over the pool-populated cache is also identical.
        warm = run_batch(
            jobs_for(("baseline", "onebyte", "nibble")),
            cache=cache, processes=2,
        )
        assert all(r.cache_hit for r in warm)
        assert [r.blob for r in warm] == [r.blob for r in pooled]

    def test_pool_reports_job_failures(self):
        results = run_batch(
            [CompressionJob(source=BAD_SOURCE), *jobs_for(("nibble",))],
            processes=2,
        )
        assert not results[0].ok and "CompileError" in results[0].error
        assert results[0].attempts == 1  # deterministic failure: no retry
        assert results[1].ok

    def test_pool_merges_worker_metrics(self):
        registry = MetricsRegistry()
        run_batch(jobs_for(), processes=2, metrics=registry)
        assert registry.counter("jobs.completed").value == 2
        assert registry.timer("stage.dict_build").count == 2


@fork_only
class TestCrashAndTimeout:
    def test_worker_crash_is_retried(self, tmp_path, monkeypatch):
        marker = tmp_path / "crashed-once"
        real = pool_module.execute_job

        def crash_once(job):
            if not marker.exists():
                marker.write_text("x")
                os._exit(17)
            return real(job)

        monkeypatch.setattr(pool_module, "execute_job", crash_once)
        registry = MetricsRegistry()
        results = run_batch(
            jobs_for(("nibble",)), processes=1, retries=1, metrics=registry,
        )
        assert results[0].ok
        assert results[0].attempts == 2
        assert registry.counter("jobs.retries").value == 1

    def test_crash_beyond_retry_budget_fails(self, monkeypatch):
        monkeypatch.setattr(
            pool_module, "execute_job", lambda job: os._exit(9)
        )
        results = run_batch(jobs_for(("nibble",)), processes=1, retries=1)
        assert not results[0].ok
        assert "crash" in results[0].error
        assert results[0].attempts == 2

    def test_timeout_terminates_and_fails(self, monkeypatch):
        def hang(job):
            time.sleep(60)

        monkeypatch.setattr(pool_module, "execute_job", hang)
        start = time.monotonic()
        results = run_batch(
            jobs_for(("nibble",)), processes=1, timeout=0.3, retries=0,
        )
        assert time.monotonic() - start < 10
        assert not results[0].ok
        assert "timed out" in results[0].error
