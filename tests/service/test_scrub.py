"""Cache-scrubber tests: incremental CRC scan, quarantine, resilience."""

import hashlib

from repro.server.sharding import ShardedArtifactCache
from repro.service.cache import ArtifactCache, QUARANTINE_DIR
from repro.service.scrub import CacheScrubber


def fill(cache, count=4) -> dict[str, bytes]:
    blobs = {}
    for i in range(count):
        blob = f"artifact-{i}".encode() * 8
        key = hashlib.sha256(blob).hexdigest()
        cache.put(key, blob, {"i": i})
        blobs[key] = blob
    return blobs


def corrupt(path) -> None:
    raw = bytearray(path.read_bytes())
    raw[10] ^= 0xFF  # flip a byte inside the checksummed body
    path.write_bytes(bytes(raw))


class TestScrubPlainCache:
    def test_clean_store_scrubs_green(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        fill(cache)
        report = CacheScrubber(cache).full_pass()
        assert report.scanned == 4
        assert report.ok == 4
        assert report.quarantined == 0

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        blobs = fill(cache)
        victim_path = sorted(cache._files())[0]
        victim_key = victim_path.stem
        corrupt(victim_path)
        report = CacheScrubber(cache).full_pass()
        assert report.quarantined == 1
        assert report.ok == 3
        assert report.quarantined_keys == [victim_key]
        assert not victim_path.exists()
        quarantine = tmp_path / QUARANTINE_DIR
        assert list(quarantine.glob("*.quar"))
        assert cache.stats.quarantined == 1
        # The scrubbed-out entry is a plain miss now (re-derivable),
        # including from the memory front.
        assert cache.get(victim_key) is None
        # The untouched entries still read back fine.
        survivors = set(blobs) - {victim_key}
        assert all(cache.get(key).blob == blobs[key] for key in survivors)

    def test_step_is_bounded_and_resumes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        fill(cache, count=5)
        scrubber = CacheScrubber(cache)
        assert scrubber.step(batch=2) == 2
        assert scrubber.step(batch=2) == 2
        assert scrubber.step(batch=2) == 1  # tail of the pass
        assert scrubber.report.scanned == 5
        assert scrubber.report.passes == 1
        # The next step starts a fresh pass over a fresh listing.
        assert scrubber.step(batch=5) == 5
        assert scrubber.report.passes == 2

    def test_vanished_file_is_an_error_not_corruption(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        fill(cache, count=2)
        scrubber = CacheScrubber(cache)
        scrubber._refill()
        # Concurrent eviction between listing and read.
        gone_cache, gone_path = scrubber._pending[0]
        gone_path.unlink()
        scrubber.step(batch=2)
        assert scrubber.report.errors == 1
        assert scrubber.report.quarantined == 0
        assert scrubber.report.ok == 1


class TestScrubShardedCache:
    def test_scrubs_every_shard(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=3)
        blobs = fill(cache, count=6)
        victim = next(
            path
            for shard in cache.iter_shards()
            for path in shard._files()
        )
        corrupt(victim)
        report = CacheScrubber(cache).full_pass()
        assert report.scanned == 6
        assert report.quarantined == 1
        assert report.ok == 5
        assert cache.stats.quarantined == 1
        survivors = set(blobs) - {victim.stem}
        assert all(cache.get(key).blob == blobs[key] for key in survivors)
