"""repro-serve CLI tests."""

import json

import pytest

from repro.tools.serve_cli import load_manifest, main
from repro.errors import ServiceError

SOURCE = """
int data[8];
void main() {
    int i;
    for (i = 0; i < 8; i = i + 1) { data[i] = i + 1; }
    print_int(sum_i(data, 8));
    print_nl();
}
"""


@pytest.fixture()
def manifest(tmp_path):
    (tmp_path / "fw.mc").write_text(SOURCE)
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps({
        "defaults": {"encoding": "nibble"},
        "jobs": [
            {"source": "fw.mc"},
            {"source": "fw.mc", "encoding": "onebyte", "name": "fw8"},
        ],
    }))
    return path


class TestManifest:
    def test_loads_jobs_with_defaults(self, manifest):
        jobs = load_manifest(manifest)
        assert [job.encoding for job in jobs] == ["nibble", "onebyte"]
        assert jobs[0].name == "fw"  # stem of the source file
        assert jobs[1].name == "fw8"
        assert "sum_i" in jobs[0].source

    def test_unknown_field_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"jobs": [{"benchmark": "go", "zip": 9}]}))
        with pytest.raises(ServiceError, match="unknown fields"):
            load_manifest(path)

    def test_missing_source_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"jobs": [{"source": "absent.mc"}]}))
        with pytest.raises(ServiceError, match="cannot read"):
            load_manifest(path)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ServiceError, match="cannot read manifest"):
            load_manifest(path)


class TestCli:
    def run(self, manifest, tmp_path, *extra):
        return main([
            str(manifest), "--processes", "0",
            "--cache-dir", str(tmp_path / "cache"), *extra,
        ])

    def test_batch_summary_and_metrics(self, manifest, tmp_path, capsys):
        assert self.run(manifest, tmp_path) == 0
        printed = capsys.readouterr().out
        assert "2/2 jobs ok" in printed
        assert "cache:" in printed
        assert "per-stage wall time" in printed
        assert "compile" in printed and "dict_build" in printed

    def test_second_run_hits_cache(self, manifest, tmp_path, capsys):
        self.run(manifest, tmp_path)
        capsys.readouterr()
        assert self.run(manifest, tmp_path) == 0
        printed = capsys.readouterr().out
        assert "2 cache hits" in printed
        assert "(100%)" in printed

    def test_repeat_reports_warm_pass(self, manifest, tmp_path, capsys):
        assert self.run(manifest, tmp_path, "--repeat", "2") == 0
        printed = capsys.readouterr().out
        assert "=== pass 1/2 ===" in printed
        assert "=== pass 2/2 ===" in printed
        assert "2 cache hits" in printed

    def test_full_metrics_report(self, manifest, tmp_path, capsys):
        assert self.run(manifest, tmp_path, "--metrics") == 0
        printed = capsys.readouterr().out
        assert "counters:" in printed
        assert "jobs.completed" in printed

    def test_failing_job_sets_exit_code(self, tmp_path, capsys):
        (tmp_path / "bad.mc").write_text("void main() { syntax error }")
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"jobs": [{"source": "bad.mc"}]}))
        assert self.run(path, tmp_path) == 1
        printed = capsys.readouterr().out
        assert "FAILED" in printed

    def test_bad_manifest_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        assert main([str(path)]) == 2
        captured = capsys.readouterr()
        assert "repro-serve: error:" in captured.err

    def test_suite_subset(self, tmp_path, capsys):
        code = main([
            "--suite", "--benchmarks", "compress", "--encodings", "nibble",
            "--scale", "0.3", "--processes", "0",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "compress" in printed
        assert "1/1 jobs ok" in printed
