"""Unit and property tests for repro.bitutils."""

import pytest
from hypothesis import given, strategies as st

from repro import bitutils


class TestMask:
    def test_zero_width(self):
        assert bitutils.mask(0) == 0

    def test_small_widths(self):
        assert bitutils.mask(1) == 1
        assert bitutils.mask(8) == 0xFF
        assert bitutils.mask(32) == 0xFFFFFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bitutils.mask(-1)


class TestExtractDeposit:
    def test_primary_opcode_field(self):
        # addi r3,r1,8 == 0x38610008; primary opcode is 14.
        assert bitutils.extract(0x38610008, 0, 6) == 14

    def test_deposit_then_extract(self):
        word = bitutils.deposit(0, 6, 5, 21)
        assert bitutils.extract(word, 6, 5) == 21

    def test_deposit_overwrites_only_field(self):
        word = bitutils.deposit(0xFFFFFFFF, 8, 8, 0)
        assert word == 0xFF00FFFF

    def test_out_of_range_field_rejected(self):
        with pytest.raises(ValueError):
            bitutils.extract(0, 30, 4)
        with pytest.raises(ValueError):
            bitutils.deposit(0, 0, 6, 64)

    @given(
        start=st.integers(0, 31),
        word=st.integers(0, 0xFFFFFFFF),
        value=st.integers(0, 0xFFFFFFFF),
    )
    def test_roundtrip_property(self, start, word, value):
        width = 32 - start
        value &= bitutils.mask(width)
        deposited = bitutils.deposit(word, start, width, value)
        assert bitutils.extract(deposited, start, width) == value


class TestSignedness:
    def test_sign_extend_negative(self):
        assert bitutils.sign_extend(0xFFFF, 16) == -1
        assert bitutils.sign_extend(0x8000, 16) == -32768

    def test_sign_extend_positive(self):
        assert bitutils.sign_extend(0x7FFF, 16) == 32767

    def test_to_twos_complement_range_check(self):
        assert bitutils.to_twos_complement(-1, 16) == 0xFFFF
        with pytest.raises(ValueError):
            bitutils.to_twos_complement(32768, 16)
        with pytest.raises(ValueError):
            bitutils.to_twos_complement(-32769, 16)

    @given(st.integers(-(1 << 15), (1 << 15) - 1))
    def test_twos_complement_roundtrip(self, value):
        assert bitutils.sign_extend(bitutils.to_twos_complement(value, 16), 16) == value

    def test_fits_signed_boundaries(self):
        assert bitutils.fits_signed(-8192, 14)
        assert bitutils.fits_signed(8191, 14)
        assert not bitutils.fits_signed(8192, 14)
        assert not bitutils.fits_signed(-8193, 14)


class TestCArithmetic:
    @pytest.mark.parametrize(
        "a,b,q,r",
        [
            (7, 2, 3, 1),
            (-7, 2, -3, -1),
            (7, -2, -3, 1),
            (-7, -2, 3, -1),
            (100, 7, 14, 2),
            (-100, 7, -14, -2),
        ],
    )
    def test_truncating_division(self, a, b, q, r):
        assert bitutils.cdiv(a, b) == q
        assert bitutils.cmod(a, b) == r

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            bitutils.cdiv(1, 0)

    @given(st.integers(-(1 << 31), (1 << 31) - 1), st.integers(-(1 << 31), (1 << 31) - 1))
    def test_division_identity(self, a, b):
        if b == 0:
            return
        assert bitutils.cdiv(a, b) * b + bitutils.cmod(a, b) == a


class TestRotate:
    def test_rotl_identity(self):
        assert bitutils.rotl32(0x12345678, 0) == 0x12345678
        assert bitutils.rotl32(0x12345678, 32) == 0x12345678

    def test_rotl_known(self):
        assert bitutils.rotl32(0x80000000, 1) == 1
        assert bitutils.rotl32(1, 4) == 16


class TestWordsBytes:
    def test_big_endian_serialization(self):
        assert bitutils.words_to_bytes([0x38610008]) == b"\x38\x61\x00\x08"

    def test_roundtrip(self):
        words = [0, 1, 0xFFFFFFFF, 0x12345678]
        assert bitutils.bytes_to_words(bitutils.words_to_bytes(words)) == words

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            bitutils.bytes_to_words(b"\x00\x01\x02")


class TestBitStreams:
    def test_writer_pads_to_byte(self):
        writer = bitutils.BitWriter()
        writer.write(0b101, 3)
        assert writer.getvalue() == bytes([0b10100000])

    def test_writer_rejects_oversized_value(self):
        writer = bitutils.BitWriter()
        with pytest.raises(ValueError):
            writer.write(4, 2)

    def test_reader_eof(self):
        reader = bitutils.BitReader(b"\xff")
        reader.read(8)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_peek_does_not_advance(self):
        reader = bitutils.BitReader(b"\xa5")
        assert reader.peek(4) == 0xA
        assert reader.read(4) == 0xA
        assert reader.read(4) == 0x5

    def test_seek(self):
        reader = bitutils.BitReader(b"\xa5\x5a")
        reader.seek_bit(8)
        assert reader.read(8) == 0x5A

    @given(st.lists(st.tuples(st.integers(1, 24), st.integers(0, (1 << 24) - 1)),
                    min_size=0, max_size=64))
    def test_writer_reader_roundtrip(self, fields):
        writer = bitutils.BitWriter()
        expected = []
        for width, value in fields:
            value &= bitutils.mask(width)
            writer.write(value, width)
            expected.append((width, value))
        reader = bitutils.BitReader(writer.getvalue())
        for width, value in expected:
            assert reader.read(width) == value

    def test_iter_nibbles(self):
        assert list(bitutils.iter_nibbles(b"\xa5\x3c")) == [0xA, 0x5, 0x3, 0xC]
