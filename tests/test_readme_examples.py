"""The README's code examples must actually run.

Extracts every fenced python block from README.md and executes it —
documentation that drifts from the API fails CI.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.DOTALL)


class TestReadme:
    def test_readme_has_python_examples(self):
        assert len(python_blocks()) >= 1

    @pytest.mark.parametrize("index", range(len(python_blocks())))
    def test_block_executes(self, index):
        block = python_blocks()[index]
        exec(compile(block, f"README.md[block {index}]", "exec"), {})

    def test_cli_commands_documented_exist(self):
        text = README.read_text()
        # Every repro-compress subcommand shown in the README is real.
        from repro.tools.compress_cli import main

        for command in ("build", "info", "run", "disasm"):
            assert f"repro-compress {command}" in text
            with pytest.raises(SystemExit):
                main([command, "--help"])
