"""Repository-level consistency checks.

Keeps the three-way mapping DESIGN.md promises — experiment id ↔
experiment module ↔ benchmark target — from drifting as the repo grows.
"""

import importlib

from pathlib import Path

from repro.experiments import REGISTRY

ROOT = Path(__file__).resolve().parent.parent

# Experiments whose bench target lives under a differently named file.
_BENCH_FILE_OF = {
    "ext_fetch": "test_ext_fetch_traffic.py",
}
# Covered by spec tests / examples instead of a bench (Figure 10 is an
# encoding definition; Figure 2 is the quickstart's worked example).
_NO_BENCH = set()


class TestExperimentBenchMapping:
    def test_every_experiment_has_a_bench_target(self):
        bench_files = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        for experiment_id in REGISTRY:
            if experiment_id in _NO_BENCH:
                continue
            if experiment_id in _BENCH_FILE_OF:
                assert _BENCH_FILE_OF[experiment_id] in bench_files
                continue
            exact = f"test_{experiment_id}.py"
            prefix = f"test_{experiment_id}_"
            assert exact in bench_files or any(
                name.startswith(prefix) for name in bench_files
            ), experiment_id

    def test_every_experiment_renders(self):
        # TITLE and render() exist and are wired for every module.
        for experiment_id, experiment in REGISTRY.items():
            assert experiment.title, experiment_id
            assert callable(experiment.module.run), experiment_id
            assert callable(experiment.module.render), experiment_id

    def test_experiment_ids_match_module_names(self):
        for experiment_id, experiment in REGISTRY.items():
            module_name = experiment.module.__name__.rsplit(".", 1)[-1]
            assert module_name.startswith(experiment_id.split("_")[0]) or (
                experiment_id.startswith("ext") and module_name.startswith("ext")
            ), (experiment_id, module_name)


class TestPublicApi:
    """``__all__`` stays truthful for every package with a public API."""

    PACKAGES = ("repro", "repro.core", "repro.service", "repro.workloads")

    def test_all_names_resolve(self):
        for package_name in self.PACKAGES:
            module = importlib.import_module(package_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{package_name}.{name}"

    def test_all_has_no_duplicates(self):
        for package_name in self.PACKAGES:
            module = importlib.import_module(package_name)
            assert len(set(module.__all__)) == len(module.__all__), package_name

    def test_service_api_reexported_at_top_level(self):
        import repro

        for name in ("CompressionJob", "ArtifactCache", "run_batch",
                     "MetricsRegistry", "JobResult"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_service_modules_exist(self):
        for module_name in ("jobs", "cache", "pool", "metrics"):
            importlib.import_module(f"repro.service.{module_name}")

    def test_cli_entry_points_registered(self):
        pyproject = (ROOT / "pyproject.toml").read_text()
        for script in ("repro-experiments", "repro-compress", "repro-serve"):
            assert script in pyproject, script


class TestDocumentation:
    def test_design_md_mentions_every_extension(self):
        text = (ROOT / "DESIGN.md").read_text()
        for experiment_id in REGISTRY:
            if experiment_id.startswith("ext_"):
                assert experiment_id in text, experiment_id

    def test_experiments_md_covers_paper_artifacts(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artifact in ("Figure 1", "Table 1", "Figure 4", "Figure 5",
                         "Table 2", "Figure 6", "Figure 7", "Figure 8",
                         "Figure 9", "Figure 10", "Figure 11", "Table 3"):
            assert artifact in text, artifact

    def test_examples_listed_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme, example.name

    def test_service_doc_covers_subsystem(self):
        text = (ROOT / "docs" / "service.md").read_text()
        for topic in ("CompressionJob", "content key", "ArtifactCache",
                      "run_batch", "repro-serve", "MetricsRegistry",
                      "timeout", "eviction"):
            assert topic in text, topic

    def test_readme_documents_batch_service(self):
        readme = (ROOT / "README.md").read_text()
        assert "repro-serve" in readme
        assert "repro.service" in readme
