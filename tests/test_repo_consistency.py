"""Repository-level consistency checks.

Keeps the three-way mapping DESIGN.md promises — experiment id ↔
experiment module ↔ benchmark target — from drifting as the repo grows.
"""

from pathlib import Path

from repro.experiments import REGISTRY

ROOT = Path(__file__).resolve().parent.parent

# Experiments whose bench target lives under a differently named file.
_BENCH_FILE_OF = {
    "ext_fetch": "test_ext_fetch_traffic.py",
}
# Covered by spec tests / examples instead of a bench (Figure 10 is an
# encoding definition; Figure 2 is the quickstart's worked example).
_NO_BENCH = set()


class TestExperimentBenchMapping:
    def test_every_experiment_has_a_bench_target(self):
        bench_files = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        for experiment_id in REGISTRY:
            if experiment_id in _NO_BENCH:
                continue
            if experiment_id in _BENCH_FILE_OF:
                assert _BENCH_FILE_OF[experiment_id] in bench_files
                continue
            exact = f"test_{experiment_id}.py"
            prefix = f"test_{experiment_id}_"
            assert exact in bench_files or any(
                name.startswith(prefix) for name in bench_files
            ), experiment_id

    def test_every_experiment_renders(self):
        # TITLE and render() exist and are wired for every module.
        for experiment_id, experiment in REGISTRY.items():
            assert experiment.title, experiment_id
            assert callable(experiment.module.run), experiment_id
            assert callable(experiment.module.render), experiment_id

    def test_experiment_ids_match_module_names(self):
        for experiment_id, experiment in REGISTRY.items():
            module_name = experiment.module.__name__.rsplit(".", 1)[-1]
            assert module_name.startswith(experiment_id.split("_")[0]) or (
                experiment_id.startswith("ext") and module_name.startswith("ext")
            ), (experiment_id, module_name)


class TestDocumentation:
    def test_design_md_mentions_every_extension(self):
        text = (ROOT / "DESIGN.md").read_text()
        for experiment_id in REGISTRY:
            if experiment_id.startswith("ext_"):
                assert experiment_id in text, experiment_id

    def test_experiments_md_covers_paper_artifacts(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artifact in ("Figure 1", "Table 1", "Figure 4", "Figure 5",
                         "Table 2", "Figure 6", "Figure 7", "Figure 8",
                         "Figure 9", "Figure 10", "Figure 11", "Table 3"):
            assert artifact in text, artifact

    def test_examples_listed_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme, example.name
