"""repro-compress CLI tests."""

import pytest

from repro.tools.compress_cli import main

SOURCE = """
int values[12];
void main() {
    int i;
    for (i = 0; i < 12; i = i + 1) { values[i] = i * 3; }
    print_int(sum_i(values, 12));
    print_nl();
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return path


class TestBuildRunInfo:
    def test_build_writes_image(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        assert main(["build", str(source_file), "-o", str(out)]) == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert "wrote" in printed

    def test_run_produces_program_output(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        main(["build", str(source_file), "-o", str(out)])
        capsys.readouterr()
        main(["run", str(out)])
        printed = capsys.readouterr().out
        assert printed.strip() == "198"  # sum of 0,3,...,33

    def test_info_reports_sections(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        main(["build", str(source_file), "-o", str(out), "--encoding",
              "baseline"])
        capsys.readouterr()
        main(["info", str(out)])
        printed = capsys.readouterr().out
        assert "encoding:    baseline" in printed
        assert "dictionary:" in printed

    def test_info_dictionary_dump(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        main(["build", str(source_file), "-o", str(out)])
        capsys.readouterr()
        main(["info", str(out), "--dictionary"])
        printed = capsys.readouterr().out
        assert "#   0:" in printed

    def test_ratio_benchmark_mode(self, capsys):
        assert main(["ratio", "--benchmark", "compress", "--scale", "0.3"]) == 0
        printed = capsys.readouterr().out
        assert "compress:" in printed and "codewords" in printed

    def test_disasm_source_listing(self, source_file, capsys):
        assert main(["disasm", str(source_file)]) == 0
        printed = capsys.readouterr().out
        assert "main:" in printed
        assert "_start:" in printed
        assert "blr" in printed

    def test_disasm_image_listing(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        main(["build", str(source_file), "-o", str(out)])
        capsys.readouterr()
        assert main(["disasm", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "CW#" in printed
        assert "unit" in printed

    def test_missing_input_rejected(self):
        with pytest.raises(SystemExit):
            main(["build"])

    def test_encoding_choices_enforced(self, source_file):
        with pytest.raises(SystemExit):
            main(["build", str(source_file), "--encoding", "zip"])


class TestErrorHandling:
    """Corrupt or missing inputs become one-line errors, not tracebacks."""

    @pytest.fixture()
    def image_file(self, source_file, tmp_path):
        out = tmp_path / "prog.rcim"
        main(["build", str(source_file), "-o", str(out)])
        return out

    @pytest.mark.parametrize("command", ["info", "run", "disasm"])
    def test_truncated_image_is_one_line_error(
        self, image_file, command, capsys
    ):
        blob = image_file.read_bytes()
        image_file.write_bytes(blob[: len(blob) // 3])
        assert main([command, str(image_file)]) == 2
        captured = capsys.readouterr()
        assert "repro-compress: error:" in captured.err
        assert "truncated" in captured.err
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("command", ["info", "run", "disasm"])
    def test_bit_flipped_image_is_one_line_error(
        self, image_file, command, capsys
    ):
        blob = bytearray(image_file.read_bytes())
        blob[len(blob) // 2] ^= 0x20
        image_file.write_bytes(bytes(blob))
        assert main([command, str(image_file)]) == 2
        captured = capsys.readouterr()
        assert "repro-compress: error:" in captured.err

    def test_not_an_image_is_one_line_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.rcim"
        bogus.write_bytes(b"definitely not an image")
        assert main(["info", str(bogus)]) == 2
        captured = capsys.readouterr()
        assert "repro-compress: error:" in captured.err
        assert "magic" in captured.err

    def test_missing_image_is_one_line_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.rcim")]) == 2
        captured = capsys.readouterr()
        assert "repro-compress: error:" in captured.err

    def test_compile_error_is_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.mc"
        bad.write_text("void main() { not valid }")
        assert main(["build", str(bad)]) == 2
        captured = capsys.readouterr()
        assert "repro-compress: error:" in captured.err
