"""repro-compress CLI tests."""

import pytest

from repro.tools.compress_cli import main

SOURCE = """
int values[12];
void main() {
    int i;
    for (i = 0; i < 12; i = i + 1) { values[i] = i * 3; }
    print_int(sum_i(values, 12));
    print_nl();
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return path


class TestBuildRunInfo:
    def test_build_writes_image(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        assert main(["build", str(source_file), "-o", str(out)]) == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert "wrote" in printed

    def test_run_produces_program_output(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        main(["build", str(source_file), "-o", str(out)])
        capsys.readouterr()
        main(["run", str(out)])
        printed = capsys.readouterr().out
        assert printed.strip() == "198"  # sum of 0,3,...,33

    def test_info_reports_sections(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        main(["build", str(source_file), "-o", str(out), "--encoding",
              "baseline"])
        capsys.readouterr()
        main(["info", str(out)])
        printed = capsys.readouterr().out
        assert "encoding:    baseline" in printed
        assert "dictionary:" in printed

    def test_info_dictionary_dump(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        main(["build", str(source_file), "-o", str(out)])
        capsys.readouterr()
        main(["info", str(out), "--dictionary"])
        printed = capsys.readouterr().out
        assert "#   0:" in printed

    def test_ratio_benchmark_mode(self, capsys):
        assert main(["ratio", "--benchmark", "compress", "--scale", "0.3"]) == 0
        printed = capsys.readouterr().out
        assert "compress:" in printed and "codewords" in printed

    def test_disasm_source_listing(self, source_file, capsys):
        assert main(["disasm", str(source_file)]) == 0
        printed = capsys.readouterr().out
        assert "main:" in printed
        assert "_start:" in printed
        assert "blr" in printed

    def test_disasm_image_listing(self, source_file, tmp_path, capsys):
        out = tmp_path / "prog.rcim"
        main(["build", str(source_file), "-o", str(out)])
        capsys.readouterr()
        assert main(["disasm", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "CW#" in printed
        assert "unit" in printed

    def test_missing_input_rejected(self):
        with pytest.raises(SystemExit):
            main(["build"])

    def test_encoding_choices_enforced(self, source_file):
        with pytest.raises(SystemExit):
            main(["build", str(source_file), "--encoding", "zip"])
