"""repro-observe CLI: trace, report, diff end-to-end."""

import json

import pytest

from repro import workloads
from repro.observe import RunLedger, make_record, validate_chrome_trace
from repro.tools.observe_cli import main


@pytest.fixture()
def traced(tmp_path, capsys):
    """One compress trace written under tmp_path; returns the paths."""
    # Memoized programs keep their analysis caches, which would swallow
    # the enumerate_candidates stage on a re-compress.
    workloads.clear_cache()
    trace = tmp_path / "trace.json"
    ledger_dir = tmp_path / "ledger"
    code = main([
        "trace", "--step", "compress", "-b", "compress", "--scale", "0.2",
        "-o", str(trace), "--ledger-dir", str(ledger_dir),
    ])
    assert code == 0
    capsys.readouterr()
    return trace, ledger_dir


class TestTrace:
    def test_compress_writes_valid_trace_and_ledger(self, traced, capsys):
        trace, ledger_dir = traced
        document = json.loads(trace.read_text())
        assert validate_chrome_trace(document) == []
        names = {event["name"] for event in document["traceEvents"]}
        assert {"compress", "dict_build", "tokenize"} <= names
        assert document["otherData"]["metrics"]["candidates.count"] > 0

        records = RunLedger(ledger_dir).read()
        assert len(records) == 1
        assert records[0]["kind"] == "compress"
        assert records[0]["program"] == "compress"
        assert records[0]["outcome"] == "ok"
        assert records[0]["meta"]["scale"] == 0.2

    def test_trace_prints_tree_and_paths(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main([
            "trace", "-b", "li", "--scale", "0.2", "-o", str(trace),
            "--no-ledger",
        ]) == 0
        out = capsys.readouterr().out
        assert f"trace: {trace}" in out
        assert "ledger:" not in out
        assert "compress" in out and "dict_build" in out

    def test_simulate_step(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main([
            "trace", "--step", "simulate", "-b", "li", "--scale", "0.2",
            "--simulate-steps", "500", "-o", str(trace),
            "--ledger-dir", str(tmp_path / "obs"),
        ]) == 0
        document = json.loads(trace.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "simulate" in names

    def test_verify_step(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main([
            "trace", "--step", "verify", "-b", "li", "--scale", "0.2",
            "-o", str(trace), "--ledger-dir", str(tmp_path / "obs"),
        ]) == 0
        document = json.loads(trace.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "verify.differential" in names


class TestReport:
    def test_report_renders_run(self, traced, capsys):
        _, ledger_dir = traced
        assert main(["report", "--ledger", str(ledger_dir)]) == 0
        out = capsys.readouterr().out
        assert "kind=compress" in out
        assert "dict_build" in out
        assert "candidates.count" in out

    def test_report_filters(self, traced, capsys):
        _, ledger_dir = traced
        assert main([
            "report", "--ledger", str(ledger_dir), "--program", "nothere",
        ]) == 1
        assert "no matching records" in capsys.readouterr().out

    def test_report_missing_ledger(self, tmp_path, capsys):
        assert main([
            "report", "--ledger", str(tmp_path / "absent.jsonl"),
        ]) == 1


class TestDiff:
    @staticmethod
    def _write_ledger(directory, stage_seconds, kind="compress"):
        ledger = RunLedger(directory)
        cursor = 0
        children = []
        for name, seconds in stage_seconds.items():
            duration = int(seconds * 1e6)
            children.append(
                {"name": name, "start_us": cursor, "duration_us": duration}
            )
            cursor += duration
        ledger.append(make_record(
            kind, program="gcc", encoding="nibble",
            spans=[{"name": "compress", "start_us": 0,
                    "duration_us": cursor, "children": children}],
        ))
        return ledger.path

    def test_identical_ledgers_pass(self, tmp_path, capsys):
        base = self._write_ledger(tmp_path / "a", {"dict_build": 0.05})
        assert main(["diff", str(base), str(base)]) == 0
        assert "no stage regressions" in capsys.readouterr().out

    def test_regression_exits_3(self, tmp_path, capsys):
        base = self._write_ledger(tmp_path / "a", {"dict_build": 0.05})
        slow = self._write_ledger(tmp_path / "b", {"dict_build": 0.25})
        assert main(["diff", str(base), str(slow)]) == 3
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "dict_build" in captured.err

    def test_diff_against_bench_json(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_compression.json"
        bench.write_text(json.dumps({
            "runs": {"k": {"programs": {"gcc": {"encodings": {"nibble": {
                "stage_seconds": {"dict_build": 0.05},
                "compress_seconds": 0.05,
            }}}}}},
        }))
        # Bench ledger records carry the same kind as converted bench
        # JSON entries, so the two sides match up run-by-run.
        current = self._write_ledger(
            tmp_path / "cur", {"dict_build": 0.05}, kind="bench.compress"
        )
        assert main(["diff", str(bench), str(current)]) == 0
        assert "dict_build" in capsys.readouterr().out

    def test_unreadable_side_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{nope\n")
        good = self._write_ledger(tmp_path / "a", {"dict_build": 0.05})
        assert main(["diff", str(bad), str(good)]) == 2
        assert "error" in capsys.readouterr().err
