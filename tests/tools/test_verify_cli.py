"""repro-verify CLI tests."""

import pytest

from repro.tools.verify_cli import main

SOURCE = """
int values[12];
void main() {
    int i;
    for (i = 0; i < 12; i = i + 1) { values[i] = i * 3; }
    print_int(sum_i(values, 12));
    print_nl();
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(SOURCE)
    return path


class TestDiff:
    def test_source_file_verifies_clean(self, source_file, capsys):
        assert main(["diff", str(source_file)]) == 0
        printed = capsys.readouterr().out
        assert "OK" in printed
        assert "baseline" in printed and "nibble" in printed

    def test_benchmark_selection(self, capsys):
        code = main([
            "diff", "--benchmark", "compress", "--scale", "0.3",
            "--encodings", "nibble",
        ])
        assert code == 0
        assert "compress/nibble: OK" in capsys.readouterr().out

    def test_missing_input_exits(self):
        with pytest.raises(SystemExit):
            main(["diff"])


class TestInvariants:
    def test_clean_program(self, source_file, capsys):
        assert main(["invariants", str(source_file),
                     "--encodings", "nibble"]) == 0
        assert "OK" in capsys.readouterr().out


class TestCampaign:
    def test_crc_intact_campaign_is_clean(self, source_file, capsys):
        code = main([
            "campaign", str(source_file), "--seed", "1997",
            "--injections", "12", "--sections", "dictionary,stream",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "detection rate" in printed
        assert "0 silent divergence" in printed

    def test_unknown_section_is_an_error(self, source_file, capsys):
        code = main([
            "campaign", str(source_file), "--sections", "nonsense",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err
