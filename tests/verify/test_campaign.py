"""Fault-campaign tests: classification, determinism, coverage."""

import pytest

from repro.core.encodings import make_encoding
from repro.verify import OUTCOMES, run_campaign
from repro.verify.faults import JUMP_TABLE_SECTION


@pytest.fixture(scope="module")
def tiny_campaign(tiny_program):
    return run_campaign(
        tiny_program,
        make_encoding("nibble", None),
        seed=1997,
        injections=24,
    )


def test_every_injection_is_classified(tiny_campaign):
    assert tiny_campaign.injections == 24
    for outcome in tiny_campaign.outcomes:
        assert outcome.outcome in OUTCOMES
    assert sum(
        tiny_campaign.count(outcome) for outcome in OUTCOMES
    ) == tiny_campaign.injections


def test_crc_intact_campaign_has_no_silent_divergence(tiny_campaign):
    """With the container CRC intact, flash-style corruption must be
    caught at load: the acceptance criterion of the subsystem."""
    assert tiny_campaign.ok
    assert tiny_campaign.count("silent-divergence") == 0
    assert tiny_campaign.detection_rate() == 1.0


def test_campaign_is_reproducible(tiny_program):
    encoding = make_encoding("nibble", None)
    a = run_campaign(tiny_program, encoding, seed=5, injections=12)
    b = run_campaign(tiny_program, encoding, seed=5, injections=12)
    assert [o.outcome for o in a.outcomes] == [o.outcome for o in b.outcomes]
    assert [o.spec for o in a.outcomes] == [o.spec for o in b.outcomes]


def test_resealed_campaign_exercises_deeper_layers(tiny_program):
    report = run_campaign(
        tiny_program,
        make_encoding("nibble", None),
        seed=1997,
        injections=32,
        reseal_crc=True,
    )
    # Resealing defeats the load-time CRC for payload damage, so some
    # faults must now be caught by decode/run (or be inert).
    deeper = (
        report.count("detected-at-decode")
        + report.count("detected-at-run")
        + report.count("silent-identical")
    )
    assert deeper > 0
    # Raw data-image bytes carry no structural redundancy — only the
    # CRC guards them — so with the CRC resealed, silent divergence is
    # possible there and ONLY there.  Code-carrying sections must still
    # never diverge silently.
    for outcome in report.silent_divergences:
        assert outcome.spec.section == "data", report.render()


def test_dictionary_and_jump_table_injections(small_suite):
    """Acceptance criterion: 0 silent divergences for dictionary- and
    jump-table-section injections, reproducible from a fixed seed."""
    program = small_suite["li"]
    report = run_campaign(
        program,
        make_encoding("nibble", None),
        seed=1997,
        injections=20,
        sections=("dictionary", JUMP_TABLE_SECTION),
        reseal_crc=True,
    )
    sections = {o.spec.section for o in report.outcomes}
    assert sections == {"dictionary", JUMP_TABLE_SECTION}
    assert report.count("silent-divergence") == 0, report.render()


def test_report_renders_coverage_table(tiny_campaign):
    rendered = tiny_campaign.render()
    assert "section" in rendered
    assert "detected-at-load" in rendered
    assert "detection rate" in rendered
    assert "seed 1997" in rendered
