"""Lockstep differential verification tests."""

import dataclasses

import pytest

from repro.core import compress
from repro.core.dictionary import Dictionary, DictionaryEntry
from repro.core.encodings import make_encoding
from repro.isa.instruction import decode
from repro.machine.executor import CONTROL_MNEMONICS
from repro.verify import run_differential


@pytest.mark.parametrize("encoding_name", ["baseline", "onebyte", "nibble"])
def test_tiny_program_verifies_clean(tiny_program, encoding_name):
    result = run_differential(
        tiny_program, encoding=make_encoding(encoding_name, None)
    )
    assert result.ok, result.render()
    assert result.instructions_compared > 100
    assert "OK" in result.render()


@pytest.mark.parametrize("encoding_name", ["baseline", "nibble"])
def test_suite_verifies_clean(small_suite, encoding_name):
    """The acceptance criterion: zero divergences across the suite."""
    for name, program in small_suite.items():
        result = run_differential(
            program, encoding=make_encoding(encoding_name, None)
        )
        assert result.ok, f"{name}: {result.render()}"


def test_address_mapped_values_are_forgiven(small_suite):
    """Programs with jump tables put code addresses in registers; the
    comparison must forgive exactly the address-map differences."""
    program = small_suite["li"]
    result = run_differential(program, encoding=make_encoding("nibble", None))
    assert result.ok, result.render()
    assert result.mapped_address_compares > 0


def _tamper_first_data_entry(compressed):
    """Flip an immediate bit in the first dictionary entry that both
    stays decodable and stays a data instruction."""
    for rank, entry in enumerate(compressed.dictionary.entries):
        for position, word in enumerate(entry.words):
            mutated = word ^ 1
            try:
                ins = decode(mutated)
            except Exception:
                continue
            if ins.mnemonic in CONTROL_MNEMONICS:
                continue
            words = list(entry.words)
            words[position] = mutated
            entries = list(compressed.dictionary.entries)
            entries[rank] = DictionaryEntry(tuple(words), entry.uses)
            return dataclasses.replace(
                compressed, dictionary=Dictionary(entries)
            ), rank
    pytest.skip("no tamperable dictionary entry found")


def test_tampered_dictionary_entry_is_caught(tiny_program):
    compressed = compress(tiny_program, make_encoding("nibble", None))
    tampered, rank = _tamper_first_data_entry(compressed)
    result = run_differential(tiny_program, tampered)
    assert not result.ok
    report = result.divergence
    # The report localizes the failure: kind, step count, both tails.
    assert report.kind in ("instruction", "register", "cr", "memory",
                           "output", "exception", "halt", "exit")
    assert report.orig_location is not None
    assert report.unit_address is not None
    rendered = result.render()
    assert "DIVERGENCE" in rendered
    if report.rank is not None:
        # When the divergence fires inside the expansion, the report
        # names the dictionary entry.
        assert report.entry is not None
        assert f"#{report.rank}" in rendered


def test_tampered_report_maps_back_to_original_pc(tiny_program):
    compressed = compress(tiny_program, make_encoding("baseline", None))
    tampered, _ = _tamper_first_data_entry(compressed)
    result = run_differential(tiny_program, tampered)
    assert not result.ok
    # Divergence positions inside provenance-carrying items map back.
    report = result.divergence
    assert report.orig_tail or report.comp_tail
