"""The fast-path lockstep harness: clean programs pass, planted engine
bugs are caught, and the differential runner works on the fast engine.

Two granularities are covered: the instruction-level lockstep (fused
bodies never execute — every thunk steps singly) and the trace-level
lockstep, which runs whole traces including superinstructions and is
the harness that actually validates fusion."""

import pytest

from repro.isa.instruction import make
from repro.linker.objfile import InsnRole
from repro.linker.program import Program, TextInstruction
from repro.machine import fastpath, fusion
from repro.verify import (
    lockstep_compressed,
    lockstep_compressed_traces,
    lockstep_program,
    lockstep_program_traces,
    run_differential,
    verify_fastpath,
)
from repro.core import NibbleEncoding, compress


@pytest.fixture(autouse=True)
def _fresh_caches():
    fusion.configure(enabled=True, pairs=fusion.DEFAULT_PAIRS)
    fastpath.clear_translation_caches()
    yield
    fusion.configure(enabled=True, pairs=fusion.DEFAULT_PAIRS)
    fastpath.clear_translation_caches()


def _straightline_program():
    instructions = [
        make("addi", 4, 0, 7),
        make("addi", 5, 4, 3),
        make("add", 6, 4, 5),
        make("addi", 0, 0, 0),
        make("addi", 3, 0, 0),
        make("sc"),
    ]
    text = [
        TextInstruction(ins, InsnRole.BODY, "f", False) for ins in instructions
    ]
    return Program(name="straight", text=text, data_image=bytearray(), symbols={})


class TestCleanPrograms:
    def test_verify_fastpath_suite_program(self, tiny_program):
        results = verify_fastpath(tiny_program)
        # (simulator + three encodings) x (instruction + trace lanes)
        assert len(results) == 8
        for result in results:
            assert result.ok, result.render()
            assert result.instructions_compared > 0
        engines = {result.engine for result in results}
        assert "simulator" in engines
        assert "compressed/nibble" in engines

    def test_lockstep_compressed_checks_stats(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        result = lockstep_compressed(compressed)
        assert result.ok, result.render()

    def test_differential_on_fast_engine(self, tiny_program):
        result = run_differential(
            tiny_program, encoding=NibbleEncoding(), implementation="fast"
        )
        assert result.ok, result.render()

    def test_differential_default_still_reference(self, tiny_program):
        # The compression proof keeps stepping the reference engine
        # unless explicitly pointed at the fast one.
        reference = run_differential(tiny_program, encoding=NibbleEncoding())
        assert reference.ok


class TestTraceLockstep:
    def test_clean_program_passes(self, tiny_program):
        result = lockstep_program_traces(tiny_program)
        assert result.ok, result.render()
        assert result.engine == "simulator-traces"
        assert result.instructions_compared > 0

    def test_clean_compressed_passes(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        result = lockstep_compressed_traces(compressed)
        assert result.ok, result.render()
        assert result.engine == "compressed-traces/nibble"

    def test_verify_fastpath_includes_trace_engines(self, tiny_program):
        engines = {r.engine for r in verify_fastpath(tiny_program)}
        assert "simulator-traces" in engines
        assert "compressed-traces/nibble" in engines
        # Instruction-level lanes stay present alongside.
        assert "simulator" in engines

    def test_passes_with_fusion_disabled(self, tiny_program):
        fusion.configure(enabled=False)
        fastpath.clear_translation_caches()
        result = lockstep_program_traces(tiny_program)
        assert result.ok, result.render()


class TestPlantedFusionBugs:
    """The trace lockstep is the harness that validates fused thunks —
    prove it actually catches a miscompiled superinstruction."""

    def _corrupting(self, monkeypatch, mutate):
        real = fusion.fused_thunk

        def corrupt(ins_a, ins_b):
            thunk = real(ins_a, ins_b)
            if thunk is None:
                return None

            def bad(state, mem):
                thunk(state, mem)
                mutate(state)

            return bad

        monkeypatch.setattr(fusion, "fused_thunk", corrupt)
        fastpath.clear_translation_caches()

    def test_corrupted_fused_register_is_detected(self, monkeypatch):
        program = _straightline_program()  # (addi r5 / add r6) fuses
        self._corrupting(monkeypatch, lambda state: state.gpr.__setitem__(
            6, state.gpr[6] ^ 1
        ))
        result = lockstep_program_traces(program)
        assert not result.ok
        assert result.divergence.kind == "register"

    def test_corrupted_step_count_is_detected(self, monkeypatch):
        program = _straightline_program()
        self._corrupting(
            monkeypatch,
            lambda state: setattr(state, "steps", state.steps + 1),
        )
        result = lockstep_program_traces(program)
        assert not result.ok

    def test_corrupted_fused_thunk_in_stream_is_detected(
        self, monkeypatch, tiny_program
    ):
        self._corrupting(monkeypatch, lambda state: state.gpr.__setitem__(
            4, state.gpr[4] ^ 0x80
        ))
        compressed = compress(tiny_program, NibbleEncoding())
        result = lockstep_compressed_traces(compressed)
        assert not result.ok

    def test_instruction_lockstep_is_blind_to_fusion_bugs(self, monkeypatch):
        # The instruction-level lane replays unfused ops — a fusion bug
        # is invisible to it.  This asymmetry is why the trace lane
        # exists; if this test ever fails, the lanes have converged and
        # one of them is redundant.
        program = _straightline_program()
        self._corrupting(monkeypatch, lambda state: state.gpr.__setitem__(
            6, state.gpr[6] ^ 1
        ))
        assert lockstep_program(program).ok
        assert not lockstep_program_traces(program).ok


class TestPlantedEngineBugs:
    def test_corrupted_thunk_is_detected(self):
        program = _straightline_program()
        cache = fastpath.program_cache(program)

        def bad_thunk(state, mem):
            state.gpr[4] = 99  # wrong result for addi r4,0,7
            state.steps += 1

        cache.ops[0] = bad_thunk
        cache.traces.clear()
        result = lockstep_program(program)
        assert not result.ok
        assert result.divergence.kind == "register"
        assert "r4" in result.divergence.detail

    def test_skipped_step_is_detected(self):
        program = _straightline_program()
        cache = fastpath.program_cache(program)

        def lazy_thunk(state, mem):
            pass  # neither executes nor counts the instruction

        cache.ops[1] = lazy_thunk
        cache.traces.clear()
        result = lockstep_program(program)
        assert not result.ok
        assert result.divergence.kind in ("register", "steps")

    def test_divergence_render_mentions_step(self):
        program = _straightline_program()
        cache = fastpath.program_cache(program)
        cache.ops[2] = lambda state, mem: None
        cache.traces.clear()
        result = lockstep_program(program)
        assert not result.ok
        assert "FASTPATH-DIVERGENCE" in result.render()
