"""The fast-path lockstep harness: clean programs pass, planted engine
bugs are caught, and the differential runner works on the fast engine."""

import pytest

from repro.isa.instruction import make
from repro.linker.objfile import InsnRole
from repro.linker.program import Program, TextInstruction
from repro.machine import fastpath
from repro.verify import (
    lockstep_compressed,
    lockstep_program,
    run_differential,
    verify_fastpath,
)
from repro.core import NibbleEncoding, compress


@pytest.fixture(autouse=True)
def _fresh_caches():
    fastpath.clear_translation_caches()
    yield
    fastpath.clear_translation_caches()


def _straightline_program():
    instructions = [
        make("addi", 4, 0, 7),
        make("addi", 5, 4, 3),
        make("add", 6, 4, 5),
        make("addi", 0, 0, 0),
        make("addi", 3, 0, 0),
        make("sc"),
    ]
    text = [
        TextInstruction(ins, InsnRole.BODY, "f", False) for ins in instructions
    ]
    return Program(name="straight", text=text, data_image=bytearray(), symbols={})


class TestCleanPrograms:
    def test_verify_fastpath_suite_program(self, tiny_program):
        results = verify_fastpath(tiny_program)
        assert len(results) == 4  # simulator + three encodings
        for result in results:
            assert result.ok, result.render()
            assert result.instructions_compared > 0
        engines = {result.engine for result in results}
        assert "simulator" in engines
        assert "compressed/nibble" in engines

    def test_lockstep_compressed_checks_stats(self, tiny_program):
        compressed = compress(tiny_program, NibbleEncoding())
        result = lockstep_compressed(compressed)
        assert result.ok, result.render()

    def test_differential_on_fast_engine(self, tiny_program):
        result = run_differential(
            tiny_program, encoding=NibbleEncoding(), implementation="fast"
        )
        assert result.ok, result.render()

    def test_differential_default_still_reference(self, tiny_program):
        # The compression proof keeps stepping the reference engine
        # unless explicitly pointed at the fast one.
        reference = run_differential(tiny_program, encoding=NibbleEncoding())
        assert reference.ok


class TestPlantedEngineBugs:
    def test_corrupted_thunk_is_detected(self):
        program = _straightline_program()
        cache = fastpath.program_cache(program)

        def bad_thunk(state, mem):
            state.gpr[4] = 99  # wrong result for addi r4,0,7
            state.steps += 1

        cache.ops[0] = bad_thunk
        cache.traces.clear()
        result = lockstep_program(program)
        assert not result.ok
        assert result.divergence.kind == "register"
        assert "r4" in result.divergence.detail

    def test_skipped_step_is_detected(self):
        program = _straightline_program()
        cache = fastpath.program_cache(program)

        def lazy_thunk(state, mem):
            pass  # neither executes nor counts the instruction

        cache.ops[1] = lazy_thunk
        cache.traces.clear()
        result = lockstep_program(program)
        assert not result.ok
        assert result.divergence.kind in ("register", "steps")

    def test_divergence_render_mentions_step(self):
        program = _straightline_program()
        cache = fastpath.program_cache(program)
        cache.ops[2] = lambda state, mem: None
        cache.traces.clear()
        result = lockstep_program(program)
        assert not result.ok
        assert "FASTPATH-DIVERGENCE" in result.render()
