"""Fault injector tests: section layout, determinism, corruption."""

import pytest

from repro.core import compress
from repro.core.encodings import make_encoding
from repro.core.image import (
    CompressedImage,
    ImageChecksumError,
    ImageError,
    ImageFormatError,
)
from repro.verify.faults import (
    FaultSpec,
    apply_fault,
    generate_faults,
    jump_table_ranges,
    reseal_crc,
    section_ranges,
)


@pytest.fixture()
def image(tiny_program):
    compressed = compress(tiny_program, make_encoding("nibble", None))
    return CompressedImage.from_compressed(compressed)


class TestSectionRanges:
    def test_ranges_tile_the_blob_exactly(self, image):
        """The computed layout must mirror to_bytes byte-for-byte."""
        blob = image.to_bytes()
        ranges = section_ranges(image)
        cursor = 0
        for section in ("header", "dictionary", "stream", "data"):
            start, end = ranges[section]
            assert start == cursor
            assert end > start
            cursor = end
        assert cursor == len(blob)

    def test_stream_range_holds_the_stream_bytes(self, image):
        blob = image.to_bytes()
        start, end = section_ranges(image)["stream"]
        assert blob[start + 4 : end] == image.stream

    def test_jump_table_ranges(self, small_suite):
        program = small_suite["li"]
        compressed = compress(program, make_encoding("nibble", None))
        image = CompressedImage.from_compressed(compressed)
        blob = image.to_bytes()
        ranges = jump_table_ranges(image, program.jump_table_slots)
        assert len(ranges) == len(program.jump_table_slots)
        for (start, end), slot in zip(ranges, program.jump_table_slots):
            assert end - start == 4
            patched = compressed.data_image[
                slot.data_offset : slot.data_offset + 4
            ]
            assert blob[start:end] == bytes(patched)


class TestGeneration:
    def test_deterministic_from_seed(self, image):
        a = generate_faults(image, seed=1997, count=40)
        b = generate_faults(image, seed=1997, count=40)
        assert a == b
        c = generate_faults(image, seed=1998, count=40)
        assert a != c

    def test_sections_cycle_round_robin(self, image):
        specs = generate_faults(image, seed=7, count=8)
        assert [s.section for s in specs[:4]] == [
            "header", "dictionary", "stream", "data"
        ]

    def test_offsets_land_inside_their_section(self, image):
        ranges = section_ranges(image)
        for spec in generate_faults(image, seed=3, count=64):
            start, end = ranges[spec.section]
            assert start <= spec.offset < end


class TestApply:
    def test_bitflip_trips_the_crc(self, image):
        blob = image.to_bytes()
        start, _ = section_ranges(image)["stream"]
        corrupted = apply_fault(
            blob, FaultSpec("bitflip", "stream", start + 5, bit=3)
        )
        assert corrupted != blob
        with pytest.raises(ImageChecksumError):
            CompressedImage.from_bytes(corrupted)

    def test_truncation_is_rejected_at_load(self, image):
        blob = image.to_bytes()
        corrupted = apply_fault(
            blob, FaultSpec("truncate", "data", len(blob) - 8)
        )
        with pytest.raises(ImageError):
            CompressedImage.from_bytes(corrupted)

    def test_duplicate_grows_the_blob(self, image):
        blob = image.to_bytes()
        corrupted = apply_fault(
            blob, FaultSpec("duplicate", "stream", 40, length=3)
        )
        assert len(corrupted) == len(blob) + 3
        with pytest.raises(ImageError):
            CompressedImage.from_bytes(corrupted)

    def test_original_blob_is_untouched(self, image):
        blob = image.to_bytes()
        before = bytes(blob)
        apply_fault(blob, FaultSpec("zero", "header", 0, length=4))
        assert blob == before


class TestReseal:
    def test_resealed_corruption_passes_the_crc(self, image):
        blob = image.to_bytes()
        start, _ = section_ranges(image)["stream"]
        corrupted = reseal_crc(
            apply_fault(blob, FaultSpec("bitflip", "stream", start + 5, bit=3))
        )
        # No longer caught by the checksum; deeper layers must catch it.
        try:
            CompressedImage.from_bytes(corrupted)
        except ImageChecksumError:  # pragma: no cover - the point
            pytest.fail("resealed blob should pass the CRC check")
        except ImageFormatError:
            pass  # structural damage is still fair game

    def test_reseal_of_clean_blob_is_identity(self, image):
        blob = image.to_bytes()
        assert reseal_crc(blob) == blob
