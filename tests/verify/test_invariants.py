"""Static invariant checker tests."""

import dataclasses

import pytest

from repro.core import compress
from repro.core.dictionary import Dictionary
from repro.core.encodings import make_encoding
from repro.core.image import CompressedImage
from repro.verify import check_compressed, check_image


@pytest.mark.parametrize("encoding_name", ["baseline", "onebyte", "nibble"])
def test_clean_program_has_no_findings(tiny_program, encoding_name):
    compressed = compress(tiny_program, make_encoding(encoding_name, None))
    report = check_compressed(compressed)
    assert report.ok, report.render()
    assert report.checks > len(compressed.tokens)
    assert report.by_rule() == {}


def test_clean_suite_program_with_jump_tables(small_suite):
    program = small_suite["li"]
    assert program.jump_table_slots  # the fixture exercises the rule
    compressed = compress(program, make_encoding("nibble", None))
    report = check_compressed(compressed)
    assert report.ok, report.render()


def test_corrupt_jump_table_slot_is_found(small_suite):
    program = small_suite["li"]
    compressed = compress(program, make_encoding("nibble", None))
    slot = program.jump_table_slots[0]
    data = bytearray(compressed.data_image)
    # Point the slot one unit past its patched target: mid-item.
    raw = int.from_bytes(data[slot.data_offset : slot.data_offset + 4], "big")
    data[slot.data_offset : slot.data_offset + 4] = (raw + 1).to_bytes(4, "big")
    broken = dataclasses.replace(compressed, data_image=data)
    report = check_compressed(broken)
    assert not report.ok
    assert report.by_rule().get("jump-table", 0) >= 1


def test_over_capacity_dictionary_is_found(tiny_program):
    compressed = compress(tiny_program, make_encoding("nibble", None))
    entries = list(compressed.dictionary.entries)
    capacity = compressed.encoding.capacity
    while len(entries) <= capacity:
        entries.append(entries[0])
    broken = dataclasses.replace(compressed, dictionary=Dictionary(entries))
    report = check_compressed(broken)
    assert not report.ok
    assert "dict-capacity" in report.by_rule()


def test_truncated_dictionary_dangles_ranks(tiny_program):
    compressed = compress(tiny_program, make_encoding("baseline", None))
    if len(compressed.dictionary) < 2:
        pytest.skip("dictionary too small to truncate meaningfully")
    broken = dataclasses.replace(
        compressed, dictionary=Dictionary(compressed.dictionary.entries[:1])
    )
    report = check_compressed(broken)
    assert not report.ok
    rules = report.by_rule()
    # Either the decode pass or the rank check flags it, depending on
    # whether the stream still parses with the shorter dictionary.
    assert "stream-decode" in rules or "dict-rank" in rules


def test_image_level_checks_clean(tiny_program):
    compressed = compress(tiny_program, make_encoding("nibble", None))
    image = CompressedImage.from_compressed(compressed)
    report = check_image(image)
    assert report.ok, report.render()


def test_image_bad_entry_unit_is_found(tiny_program):
    compressed = compress(tiny_program, make_encoding("nibble", None))
    image = CompressedImage.from_compressed(compressed)
    broken = dataclasses.replace(image, entry_unit=image.entry_unit + 1)
    report = check_image(broken)
    assert not report.ok
    assert "entry-boundary" in report.by_rule()


def test_findings_render_with_rule_and_unit(small_suite):
    program = small_suite["li"]
    compressed = compress(program, make_encoding("nibble", None))
    slot = program.jump_table_slots[0]
    data = bytearray(compressed.data_image)
    raw = int.from_bytes(data[slot.data_offset : slot.data_offset + 4], "big")
    data[slot.data_offset : slot.data_offset + 4] = (raw + 1).to_bytes(4, "big")
    broken = dataclasses.replace(compressed, data_image=data)
    rendered = check_compressed(broken).render()
    assert "[jump-table]" in rendered
    assert "finding" in rendered
