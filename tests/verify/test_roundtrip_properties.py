"""Property test: random programs round-trip through every encoding.

compress → serialize image → load → stream-decode must reproduce the
original instruction sequence exactly, instruction for instruction, for
arbitrary (data-only) programs under all three codeword encodings.
"""

from hypothesis import given, settings, strategies as st

from repro.core import compress
from repro.core.encodings import make_encoding
from repro.core.image import CompressedImage
from repro.isa.instruction import make
from repro.linker.objfile import InsnRole
from repro.linker.program import Program, TextInstruction
from repro.machine.decompressor import StreamDecoder

_ENCODING_NAMES = st.sampled_from(["baseline", "onebyte", "nibble"])

# Data-only instruction makers (no control flow, so compression cannot
# insert relaxation instructions and the flattened decode must equal
# the input exactly).
_gpr = st.integers(0, 31)
_imm = st.integers(-0x8000, 0x7FFF)
_uimm = st.integers(0, 0xFFFF)

_INSTRUCTIONS = st.one_of(
    st.builds(lambda d, a, i: make("addi", d, a, i), _gpr, _gpr, _imm),
    st.builds(lambda d, a, i: make("addis", d, a, i), _gpr, _gpr, _imm),
    st.builds(lambda s, a, i: make("ori", a, s, i), _gpr, _gpr, _uimm),
    st.builds(lambda d, a, b: make("add", d, a, b), _gpr, _gpr, _gpr),
    st.builds(lambda d, a, b: make("subf", d, a, b), _gpr, _gpr, _gpr),
    st.builds(lambda s, a, i: make("andi.", a, s, i), _gpr, _gpr, _uimm),
)


@st.composite
def _programs(draw):
    # Duplicated runs make dictionary hits likely; lone instructions
    # keep the escape path exercised.
    chunks = draw(st.lists(
        st.tuples(st.lists(_INSTRUCTIONS, min_size=1, max_size=4),
                  st.integers(1, 3)),
        min_size=1, max_size=8,
    ))
    instructions = []
    for chunk, repeats in chunks:
        instructions.extend(chunk * repeats)
    text = [
        TextInstruction(ins, InsnRole.BODY, "f", False)
        for ins in instructions
    ]
    return Program(
        name="prop", text=text, data_image=bytearray(), symbols={}
    )


@settings(max_examples=40, deadline=None)
@given(_programs(), _ENCODING_NAMES)
def test_image_roundtrip_reproduces_every_instruction(program, encoding_name):
    compressed = compress(program, make_encoding(encoding_name, None))
    blob = CompressedImage.from_compressed(compressed).to_bytes()
    image = CompressedImage.from_bytes(blob)
    decoder = StreamDecoder(
        image.stream, image.dictionary, image.encoding(), image.total_units
    )
    decoded = [
        ins.encode()
        for item in decoder.decode_all()
        for ins in item.instructions
    ]
    assert decoded == program.words()


@settings(max_examples=20, deadline=None)
@given(_programs(), _ENCODING_NAMES)
def test_roundtripped_image_passes_invariants(program, encoding_name):
    from repro.verify import check_image

    compressed = compress(program, make_encoding(encoding_name, None))
    blob = CompressedImage.from_compressed(compressed).to_bytes()
    report = check_image(CompressedImage.from_bytes(blob))
    assert report.ok, report.render()
