"""Reference-model validation of the benchmark cores.

Each hand-written MiniC core is re-implemented here in plain Python;
the simulated PowerPC execution must produce the same checksum.  This
is differential testing of the whole stack (compiler, linker,
simulator) against an independent implementation of eight real
algorithms — and it pins the cores' outputs against accidental
workload drift.
"""

import pytest

from repro.bitutils import cdiv, s32
from repro.machine.simulator import run_program
from repro.workloads import BENCHMARK_NAMES, build_benchmark

SCALE = 0.3


def core_checksum(name):
    program = build_benchmark(name, SCALE)
    output = run_program(program).output_text.strip().split("\n")
    return int(output[0])


# ---------------------------------------------------------------------------
# Python reference models (ported line by line from workloads/cores.py)
# ---------------------------------------------------------------------------
def ref_compress():
    cmp_input = [97 + ((i * 7 + (i >> 3)) % 13) for i in range(256)]
    dict_prefix = [0] * 288
    dict_char = [0] * 288
    out_codes = []
    next_code = 256
    prefix = cmp_input[0]
    for i in range(1, 256):
        c = cmp_input[i]
        code = -1
        for probe in range(256, next_code):
            if dict_prefix[probe] == prefix and dict_char[probe] == c:
                code = probe
                break
        if code >= 0:
            prefix = code
        else:
            out_codes.append(prefix)
            if next_code < 288:
                dict_prefix[next_code] = prefix
                dict_char[next_code] = c
                next_code += 1
            prefix = c
    out_codes.append(prefix)
    checksum = len(out_codes) * 1000
    for i, code in enumerate(out_codes):
        checksum += code * (i + 1)
    return checksum


def ref_gcc():
    src = "a+b*(c-d)/e+f*g-(h+a)*b"
    prec = {42: 2, 47: 2, 43: 1, 45: 1}

    rpn = []  # (op, val): op 0 = operand
    stack = []
    for ch in src:
        c = ord(ch)
        if 97 <= c <= 122:
            rpn.append((0, c))
        elif c == 40:
            stack.append(c)
        elif c == 41:
            while stack and stack[-1] != 40:
                rpn.append((stack.pop(), 0))
            if stack:
                stack.pop()
        else:
            while stack and prec.get(stack[-1], 0) >= prec.get(c, 0):
                rpn.append((stack.pop(), 0))
            stack.append(c)
    while stack:
        rpn.append((stack.pop(), 0))

    emit = []
    eval_stack = []
    for op, val in rpn:
        if op == 0:
            emit.append(1 * 256 + (val & 255))
            eval_stack.append((val - 97) * 3 + 5)
        else:
            emit.append(2 * 256 + (op & 255))
            b = eval_stack.pop()
            a = eval_stack.pop()
            if op == 42:
                r = s32(a * b)
            elif op == 43:
                r = s32(a + b)
            elif op == 45:
                r = s32(a - b)
            elif op == 47:
                r = cdiv(a, b) if b != 0 else 0  # C: truncate toward zero
            else:
                r = 0
            eval_stack.append(r)
    checksum = eval_stack[0] * 100 + len(emit)
    for i, code in enumerate(emit):
        checksum ^= code * (i + 3)
    return checksum


def ref_go():
    board = [0] * 81
    influence = [0] * 81
    for i in range(0, 81, 7):
        board[i] = 1
    for i in range(3, 81, 11):
        board[i] = 2

    def liberties(position):
        row, col = divmod(position, 9)
        count = 0
        if row > 0 and board[position - 9] == 0:
            count += 1
        if row < 8 and board[position + 9] == 0:
            count += 1
        if col > 0 and board[position - 1] == 0:
            count += 1
        if col < 8 and board[position + 1] == 0:
            count += 1
        return count

    for _ in range(4):
        for position in range(81):
            stone = board[position]
            if stone:
                weight = 8 if stone == 1 else -8
                row, col = divmod(position, 9)
                influence[position] += weight * 2
                if row > 0:
                    influence[position - 9] += weight
                if row < 8:
                    influence[position + 9] += weight
                if col > 0:
                    influence[position - 1] += weight
                if col < 8:
                    influence[position + 1] += weight
    score = 0
    for position in range(81):
        if board[position] == 1:
            score += liberties(position)
        if board[position] == 2:
            score -= liberties(position)
        if influence[position] > 0:
            score += 1
    return score * 17 + 4000


def _sra(value, amount):
    """Arithmetic shift right on a 32-bit signed value (like sraw)."""
    return value >> amount  # Python ints are already arithmetic


def ref_ijpeg():
    block = [0] * 64
    quant = [0] * 64
    for row in range(8):
        for col in range(8):
            block[row * 8 + col] = (row * 13 + col * 7) % 64 - 32
            quant[row * 8 + col] = 1 + ((row + col) >> 1)
    for row in range(8):
        base = row * 8
        for i in range(4):
            a = block[base + i]
            b = block[base + 7 - i]
            block[base + i] = a + b
            block[base + 7 - i] = (a - b) * (i + 1)
    for col in range(8):
        for i in range(4):
            a = block[i * 8 + col]
            b = block[(7 - i) * 8 + col]
            block[i * 8 + col] = _sra(a + b, 1)
            block[(7 - i) * 8 + col] = _sra(a - b, 1)
    for i in range(64):
        q = quant[i]
        v = block[i]
        # C division truncates toward zero.
        block[i] = abs(v) // q * (1 if v >= 0 else -1)
    zero_run = 0
    zigzag = 0
    checksum = 0
    for i in range(64):
        v = block[i]
        if v == 0:
            zero_run += 1
        else:
            checksum += v * (zero_run + 1) + i
            zigzag += 1
            zero_run = 0
    return checksum * 3 + zigzag


def ref_li():
    op = [0] * 128
    left = [0] * 128
    right = [0] * 128
    val = [0] * 128
    state = {"next": 0}

    def leaf(value):
        node = state["next"]
        state["next"] += 1
        op[node] = 0
        val[node] = value
        return node

    def make(o, l, r):
        node = state["next"]
        state["next"] += 1
        op[node] = o
        left[node] = l
        right[node] = r
        return node

    def build(depth, seed):
        if depth <= 0:
            return leaf((seed % 19) - 9)
        o = 1 + (seed % 5)
        l = build(depth - 1, seed * 3 + 1)
        r = build(depth - 1, seed * 5 + 2)
        return make(o, l, r)

    def evaluate(node):
        if op[node] == 0:
            return val[node]
        a = evaluate(left[node])
        b = evaluate(right[node])
        # MiniC arithmetic wraps at 32 bits on every operation.
        if op[node] == 1:
            return s32(a + b)
        if op[node] == 2:
            return s32(a - b)
        if op[node] == 3:
            return s32(a * b)
        if op[node] == 4:
            return a if a < b else b
        if op[node] == 5:
            return a if a > b else b
        return 0

    def count_leaves(node):
        if op[node] == 0:
            return 1
        return count_leaves(left[node]) + count_leaves(right[node])

    state["next"] = 0
    tree = build(5, 7)
    value = evaluate(tree)
    leaves = count_leaves(tree)
    state["next"] = 0
    tree2 = build(4, 23)
    value2 = evaluate(tree2)
    return value * 31 + value2 * 7 + leaves


def ref_m88ksim():
    mem = [((i % 12) << 8) | ((i * 5 + 3) & 255) for i in range(128)]
    regs = [i * 3 + 1 for i in range(16)]
    pc = 0
    for _ in range(500):
        insn = mem[pc & 127]
        op = (insn >> 8) & 15
        rd = insn & 15
        rs = (insn >> 4) & 15
        imm = (insn >> 2) & 31
        if op == 0:
            regs[rd] = regs[rs] + imm
        elif op == 1:
            regs[rd] = regs[rs] - imm
        elif op == 2:
            regs[rd] = regs[rs] ^ regs[rd]
        elif op == 3:
            regs[rd] = (regs[rs] << 1) & 0xFFFFFF
        elif op == 4:
            if regs[rd] > 0:
                pc = pc + (imm & 7)
        elif op == 5:
            regs[rd] = regs[rs] & imm
        elif op == 6:
            regs[rd] = regs[rs] | imm
        elif op == 7:
            regs[rd] = imm
        elif op == 8:
            regs[rd] = (regs[rs] * 3) & 0xFFFFFF
        elif op == 9:
            if regs[rd] == regs[rs]:
                pc = pc + 2
        elif op == 10:
            regs[rd] = regs[(rs + 1) & 15] >> 1
        elif op == 11:
            regs[rd] = mem[regs[rs] & 127] & 255
        pc += 1
    checksum = 0
    for i in range(16):
        checksum = checksum * 3 + (regs[i] & 1023)
    return checksum & 0xFFFFFF


def ref_perl():
    text = "the quick brown fox jumps over the lazy dog"
    pattern = "*qu?ck*f?x*"

    def char(s, i):
        return ord(s[i]) if i < len(s) else 0

    def match(pi, ti):
        p = char(pattern, pi)
        if p == 0:
            return 1 if char(text, ti) == 0 else 0
        if p == 42:
            if match(pi + 1, ti):
                return 1
            if char(text, ti) == 0:
                return 0
            return match(pi, ti + 1)
        if char(text, ti) == 0:
            return 0
        if p == 63 or p == char(text, ti):
            return match(pi + 1, ti + 1)
        return 0

    keys = []
    vals = []

    def set_var(key, value):
        for i, k in enumerate(keys):
            if k == key:
                vals[i] = value
                return
        if len(keys) < 32:
            keys.append(key)
            vals.append(value)

    def get_var(key):
        for i, k in enumerate(keys):
            if k == key:
                return vals[i]
        return 0

    matched = match(0, 0)
    for i in range(40):
        key = ((char(text, i % 44) * 31 + i) & 0x7FFFFFFF) % 97
        set_var(key, get_var(key) + i)
    checksum = matched * 10000
    for i in range(len(keys)):
        # MiniC precedence: '+' binds tighter than '^', like C.
        checksum = (checksum + keys[i]) ^ vals[i]
    return checksum + len(keys)


def ref_vortex():
    ids, balance, flags = [], [], []

    def find(target):
        lo, hi = 0, len(ids) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if ids[mid] == target:
                return mid
            if ids[mid] < target:
                lo = mid + 1
            else:
                hi = mid - 1
        return -1

    def insert(record_id, amount):
        position = len(ids)
        ids.append(0)
        balance.append(0)
        flags.append(0)
        while position > 0 and ids[position - 1] > record_id:
            ids[position] = ids[position - 1]
            balance[position] = balance[position - 1]
            flags[position] = flags[position - 1]
            position -= 1
        ids[position] = record_id
        balance[position] = amount
        flags[position] = 1

    def transfer(from_id, to_id, amount):
        from_index = find(from_id)
        to_index = find(to_id)
        if from_index < 0 or to_index < 0:
            return 0
        if balance[from_index] < amount:
            return 0
        balance[from_index] -= amount
        balance[to_index] += amount
        return 1

    for i in range(60):
        insert((i * 37) % 191, 100 + i * 3)
    completed = 0
    for i in range(120):
        completed += transfer((i * 37) % 191, ((i + 7) * 37) % 191, (i % 9) + 1)
    total = 0
    flagged = 0
    for i in range(len(ids)):
        total += balance[i]
        if balance[i] > 120:
            flags[i] = 2
            flagged += 1
    return total * 5 + completed * 11 + flagged


REFERENCE_MODELS = {
    "compress": ref_compress,
    "gcc": ref_gcc,
    "go": ref_go,
    "ijpeg": ref_ijpeg,
    "li": ref_li,
    "m88ksim": ref_m88ksim,
    "perl": ref_perl,
    "vortex": ref_vortex,
}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_core_matches_python_reference(name):
    assert core_checksum(name) == REFERENCE_MODELS[name]()


def test_core_checksums_scale_invariant():
    # The algorithmic core does not depend on the generated filler.
    a = build_benchmark("li", 0.3)
    b = build_benchmark("li", 0.5)
    first = run_program(a).output_text.split("\n")[0]
    second = run_program(b).output_text.split("\n")[0]
    assert first == second
