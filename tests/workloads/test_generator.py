"""Generator tests: shapes, determinism, compilability."""

from repro.compiler import compile_and_link
from repro.machine.simulator import run_program
from repro.workloads.generator import CodeWriter, FunctionFactory, Profile


def make_profile(**overrides):
    defaults = dict(name="t", seed=99, target_instructions=2000)
    defaults.update(overrides)
    return Profile(**defaults)


class TestCodeWriter:
    def test_indentation(self):
        out = CodeWriter()
        out.open("if (x)")
        out.line("y = 1;")
        out.close()
        assert out.text() == "if (x) {\n    y = 1;\n}\n"


class TestFunctionFactory:
    def test_deterministic_generation(self):
        factory_a = FunctionFactory(make_profile())
        factory_b = FunctionFactory(make_profile())
        bodies_a = [factory_a.gen_function() for _ in range(10)]
        bodies_b = [factory_b.gen_function() for _ in range(10)]
        assert bodies_a == bodies_b

    def test_seed_changes_output(self):
        factory_a = FunctionFactory(make_profile(seed=1))
        factory_b = FunctionFactory(make_profile(seed=2))
        assert [factory_a.gen_function() for _ in range(5)] != [
            factory_b.gen_function() for _ in range(5)
        ]

    def test_every_shape_compiles_and_runs(self):
        # Force each shape at least once by weighting it alone.
        for shape in (
            "scan_loop", "table_update", "state_machine", "decision_ladder",
            "math_kernel", "string_scan", "hash_mix", "dispatcher",
        ):
            profile = make_profile(weights={shape: 1.0})
            factory = FunctionFactory(profile)
            out = CodeWriter()
            factory.emit_globals(out)
            bodies = [factory.gen_function() for _ in range(4)]
            for body in bodies:
                out.line(body)
            out.open("void main()")
            for position, fn in enumerate(factory.functions):
                out.line(f"print_int({factory._call_expr(fn, '5', position)});")
            out.close()
            program = compile_and_link(out.text(), name=f"shape-{shape}")
            result = run_program(program)
            assert result.state.halted, shape

    def test_shape_table_records_all_functions(self):
        factory = FunctionFactory(make_profile())
        for _ in range(8):
            factory.gen_function()
        assert set(factory.functions) == set(factory._shape_table)

    def test_arity_matches_signature(self):
        factory = FunctionFactory(make_profile())
        for _ in range(20):
            body = factory.gen_function()
            name = factory.functions[-1]
            arity = factory._arity(name)
            header = body.split("\n")[0]
            assert header.count("int ") == arity + 1  # return type + params
