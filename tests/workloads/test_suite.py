"""Workload suite tests: determinism, sizes, execution, redundancy."""

import pytest

from repro.core.profile import encoding_redundancy
from repro.machine.simulator import run_program
from repro.workloads import (
    BENCHMARK_NAMES,
    benchmark_source,
    build_benchmark,
)
from repro.workloads.suite import _TARGETS, benchmark_profile

TEST_SCALE = 0.3  # keep in sync with tests/conftest.py


class TestGeneration:
    def test_eight_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 8
        assert BENCHMARK_NAMES[0] == "compress" and BENCHMARK_NAMES[-1] == "vortex"

    def test_source_is_deterministic(self):
        assert benchmark_source("li", 0.2) == benchmark_source("li", 0.2)

    def test_different_benchmarks_differ(self):
        assert benchmark_source("li", 0.2) != benchmark_source("go", 0.2)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark_profile("nonesuch")

    def test_relative_size_ordering(self, small_suite):
        # The paper's suite ordering: gcc largest, compress smallest.
        sizes = {name: len(program.text) for name, program in small_suite.items()}
        assert max(sizes, key=sizes.get) == "gcc"
        assert min(sizes, key=sizes.get) == "compress"

    def test_sizes_near_targets(self, small_suite):
        for name, program in small_suite.items():
            target = max(_TARGETS[name] * TEST_SCALE, 900)
            assert 0.5 * target <= len(program.text) <= 1.8 * target, name


class TestExecution:
    def test_all_benchmarks_run_to_completion(self, small_suite):
        for name, program in small_suite.items():
            result = run_program(program)
            assert result.state.halted, name
            # Two lines: core checksum and sampled checksum.
            lines = result.output_text.strip().split("\n")
            assert len(lines) == 2, name
            int(lines[0])
            int(lines[1])

    def test_execution_is_deterministic(self, small_suite):
        program = small_suite["li"]
        assert run_program(program).output_text == run_program(program).output_text


class TestRedundancy:
    def test_figure1_property_holds(self, small_suite):
        # Paper: on average, under 20% of instructions have single-use
        # encodings.  (Small scales push this up slightly; allow 30%.)
        fractions = [
            encoding_redundancy(program).unique_fraction
            for program in small_suite.values()
        ]
        average = sum(fractions) / len(fractions)
        assert average < 0.30

    def test_program_has_substantial_reuse(self, small_suite):
        for name, program in small_suite.items():
            profile = encoding_redundancy(program)
            assert profile.distinct_encodings < 0.6 * profile.total_instructions, name
